"""Quickstart: materialize a constrained view and maintain it incrementally.

This walks through the paper's Examples 4 and 5 using the public API:

1. build a constrained database (four clauses over a numeric constraint),
2. materialize the mediated view with the ``T_P`` fixpoint (every entry is a
   non-ground constrained atom carrying the support of its derivation),
3. delete ``b(X) <- X = 6`` with the Straight Delete algorithm (Algorithm 2,
   no rederivation), and
4. insert a constrained atom and watch the insertion propagate upward.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.mediator import DeletionAlgorithm, Mediator

RULES = """
a(X) <- X >= 3.
a(X) <- b(X).
b(X) <- X >= 5.
c(X) <- a(X).
"""

UNIVERSE = range(0, 12)


def show(title: str, view) -> None:
    """Print a view with its supports, then its ground instances."""
    print(f"--- {title} ---")
    for entry in view.entries():
        print(f"  {entry}")
    for predicate in ("a", "b", "c"):
        values = sorted(value for (value,) in view.query(predicate, universe=UNIVERSE))
        print(f"  [{predicate}] = {values}")
    print()


def main() -> None:
    mediator = Mediator.from_rules(RULES)

    # 1-2. Materialize the mediated view by unfolding the rules (T_P ↑ ω).
    view = mediator.materialize()
    show("initial materialized view (Example 5's table)", view)

    # 3. Delete b(X) <- X = 6 with StDel: the affected entries are narrowed
    #    in place by following supports; no rederivation happens.
    result = view.delete("b(X) <- X = 6", algorithm=DeletionAlgorithm.STDEL)
    print(f"StDel replaced {result.stats.replaced_entries} entries, "
          f"removed {result.stats.removed_entries}, "
          f"P_OUT size {len(result.p_out)}")
    show("after deleting b(X) <- X = 6 (note: a keeps 6 via the X >= 3 rule)", view)

    # 4. Insert a constrained atom: b gains the interval [0, 2] and the
    #    insertion propagates to a and c through the rules.
    insertion = view.insert("b(X) <- X >= 0 & X <= 2")
    print(f"insertion added {len(insertion.added_entries)} view entries")
    show("after inserting b(X) <- 0 <= X <= 2", view)


if __name__ == "__main__":
    main()
