"""Maintaining a view across a whole stream of updates.

The paper's algorithms handle one update at a time; this example shows the
bookkeeping a real deployment needs on top of them, provided by
:class:`repro.maintenance.ViewMaintainer`:

* a synthetic layered view is materialized once,
* a mixed stream of deletions and insertions is applied incrementally
  (Straight Delete for deletions, Algorithm 3 for insertions),
* the *effective program* -- original rules plus the rewrites accumulated by
  the stream -- is tracked so the result can be verified against its least
  model (the declarative semantics of the whole stream), and
* the per-update statistics show where the work went.

Run with::

    python examples/update_streams.py
"""

from __future__ import annotations

from repro.constraints import ConstraintSolver
from repro.maintenance import ViewMaintainer
from repro.stream import StreamScheduler
from repro.workloads import make_layered_program, mixed_stream


def main() -> None:
    solver = ConstraintSolver()
    spec = make_layered_program(
        base_facts=12, layers=3, predicates_per_layer=2, fanin=2, seed=42
    )
    print(f"Workload: {spec.description}")

    maintainer = ViewMaintainer(spec.program, solver, deletion_algorithm="stdel")
    print(f"Materialized view: {len(maintainer.view)} entries")
    top = spec.top_predicates[0]
    print(f"|{top}| = {len(maintainer.view.instances_for(top, solver))} instances\n")

    stream = mixed_stream(spec, deletions=4, insertions=4, seed=7)
    print(f"Applying {len(stream.requests)} updates "
          f"({len(stream.deletions())} deletions, {len(stream.insertions())} insertions)...")
    for request in stream.requests:
        record = maintainer.apply(request)
        print(f"  {request}  ->  view has {record.view_size_after} entries "
              f"({record.stats.solver_calls} solver calls)")

    report = maintainer.report()
    print()
    print(f"Totals: {report.deletions} deletions, {report.insertions} insertions, "
          f"{report.total_solver_calls()} solver calls, "
          f"{report.total_replaced_entries()} in-place constraint replacements")
    print(f"|{top}| = {len(maintainer.view.instances_for(top, solver))} instances")

    print("\nVerifying against the declarative semantics of the whole stream ...")
    assert maintainer.verify(), "incremental view diverged from the declarative semantics"
    print("OK: the incrementally maintained view equals the least model of the "
          "effective (rewritten) program.")

    # The same stream as ONE coalesced batch through the update-stream
    # subsystem: one StDel pass seeded with every deletion, one P_ADD
    # fixpoint seeded with every insertion, per independent stratum.
    print("\nReplaying the same stream as one coalesced batch ...")
    scheduler = StreamScheduler(spec.program, ConstraintSolver())
    result = scheduler.apply_batch(stream.requests)
    totals = result.stats.totals()
    print(f"  {result.stats.submitted} requests -> {result.stats.applied} after "
          f"coalescing, {len(result.stats.units)} stratum unit(s)")
    print(f"  batched counters: {totals.solver_calls} solver calls vs "
          f"{report.total_solver_calls()} one-at-a-time")
    batched = scheduler.view.instances_for(top, ConstraintSolver())
    sequential = maintainer.view.instances_for(top, solver)
    assert batched == sequential, "batched application diverged from sequential"
    print(f"OK: batched |{top}| matches the one-at-a-time result "
          f"({len(batched)} instances).")


if __name__ == "__main__":
    main()
