"""Maintaining views when the external sources change (paper Section 4).

Reproduces Examples 7 and 8 and the paper's headline claim about the
``W_P`` operator: when an integrated source changes, a ``T_P``-materialized
view must be fixed up (here: re-materialized), whereas the ``W_P`` view
needs **no maintenance whatsoever** -- its constraints are simply evaluated
against the current source behaviour at query time, and the answers always
coincide with what ``T_P`` would give at that moment (Corollary 1).

The external source is a time-versioned domain whose function ``g``
changes behaviour between time points, exactly like the paper's Example 7.

Run with::

    python examples/external_sources.py
"""

from __future__ import annotations

from repro.constraints import ConstraintSolver
from repro.datalog import parse_program
from repro.domains import DomainClock, DomainRegistry, VersionedDomain, function_delta
from repro.maintenance import TpExternalMaintenance, WpExternalMaintenance

RULES = """
b(X) <- in(X, ext:g('b')).
watched(X) <- b(X).
"""


def main() -> None:
    clock = DomainClock()
    domain = VersionedDomain("ext", clock)

    # Example 7/8 behaviour: at time 0 the call ext:g('b') returns {'a'},
    # at time 1 it returns {} and at time 2 it returns {'a', 'z'}.
    domain.register_versioned(
        "g",
        lambda argument: {"a"} if argument == "b" else set(),
        "the paper's example function g",
    )
    domain.set_behavior("g", 1, lambda argument: set())
    domain.set_behavior(
        "g", 2, lambda argument: {"a", "z"} if argument == "b" else set()
    )
    registry = DomainRegistry([domain])
    solver = ConstraintSolver(registry)
    program = parse_program(RULES)

    tp = TpExternalMaintenance(program, solver)
    wp = WpExternalMaintenance(program, solver)

    print("time 0:")
    print("  T_P view entries:", len(tp.view), "| W_P view entries:", len(wp.view))
    print("  T_P query b:", sorted(tp.query("b")), "| W_P query b:", sorted(wp.query("b")))
    print()

    # ------------------------------------------------------------------
    # Time 1: the value 'a' disappears from g('b') (Example 7).
    # ------------------------------------------------------------------
    clock.advance()
    registry.invalidate_cache()
    delta = function_delta(domain, "g", ("b",), 0, 1)
    print(f"time 1: g('b') changed, f+ = {delta.added}, f- = {delta.removed}")

    tp_report = tp.on_source_changed([delta])
    wp_report = wp.on_source_changed([delta])
    print(f"  T_P maintenance recomputed {tp_report.recomputed_entries} entries "
          f"(view changed: {tp_report.view_changed})")
    print(f"  W_P maintenance recomputed {wp_report.recomputed_entries} entries "
          f"(view changed: {wp_report.view_changed})")
    print("  T_P query b:", sorted(tp.query("b")), "| W_P query b:", sorted(wp.query("b")))
    assert tp.query("b") == wp.query("b")
    print()

    # ------------------------------------------------------------------
    # Time 2: g('b') returns {'a', 'z'} -- again, W_P does nothing.
    # ------------------------------------------------------------------
    clock.advance()
    registry.invalidate_cache()
    delta = function_delta(domain, "g", ("b",), 1, 2)
    print(f"time 2: g('b') changed, f+ = {delta.added}, f- = {delta.removed}")
    tp_report = tp.on_source_changed([delta])
    wp_report = wp.on_source_changed([delta])
    print(f"  T_P maintenance recomputed {tp_report.recomputed_entries} entries; "
          f"W_P recomputed {wp_report.recomputed_entries}")
    print("  T_P query watched:", sorted(tp.query("watched")),
          "| W_P query watched:", sorted(wp.query("watched")))
    assert tp.query("watched") == wp.query("watched")
    print()
    print("At every time point the W_P view answered identically to the "
          "re-materialized T_P view while doing zero maintenance work "
          "(Theorem 4 and Corollary 1).")


if __name__ == "__main__":
    main()
