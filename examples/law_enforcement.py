"""The law-enforcement mediator (paper Example 1 / Figure 1), end to end.

The mediator integrates five heterogeneous sources -- a face-extraction
package, a background face database, a PARADOX phone/address book, a spatial
data manager and a DBASE employee list -- to answer: *who has been seen with
Don Corleone, lives within 100 miles of Washington DC, and works for the
front company "ABC Corp"?*

The script then exercises all three kinds of updates the paper studies:

* **atom deletion** (Example 3): the photograph placing John with the Don is
  found to be a forgery, so ``seenwith('Don Corleone', John)`` is deleted
  from the view, and the derived ``swlndc`` / ``suspect`` facts disappear
  with it -- without recomputing the view;
* **atom insertion**: a policeman reports having seen a new pair together,
  which is inserted even though no photograph supports it;
* **external change**: new surveillance photographs arrive
  (``facextract:segmentface`` now returns more faces); under the ``W_P``
  reading the materialized view needs **no maintenance at all** -- the next
  query simply sees the new suspects.

Run with::

    python examples/law_enforcement.py
"""

from __future__ import annotations

from repro.mediator import DeletionAlgorithm
from repro.workloads import make_law_enforcement_scenario


def kingpin_suspects(view, kingpin: str):
    """The answers to the paper's query suspect(kingpin, Y)."""
    return sorted(person for witness, person in view.query("suspect") if witness == kingpin)


def main() -> None:
    scenario = make_law_enforcement_scenario(
        num_people=12, photo_count=8, people_per_photo=3, seed=7
    )
    mediator = scenario.mediator
    print("Integrated domains:", ", ".join(mediator.registry.domain_names()))
    print("Mediator rules:")
    for clause in mediator.program:
        print(f"  [{clause.number}] {clause.head} <- ...")
    print()

    # Materialize by unfolding the view definition (W_P: solvability of the
    # domain-call constraints is deferred to query time).
    view = mediator.materialize(operator="wp")
    print(f"Materialized mediated view: {len(view)} non-ground entries")

    suspects = kingpin_suspects(view, scenario.kingpin)
    print(f"suspect({scenario.kingpin!r}, Y) = {suspects}")
    assert suspects == [p for _, p in scenario.expected_kingpin_suspects()]
    print()

    # ------------------------------------------------------------------
    # Update of the first kind: deletion (Example 3 -- the forged photo).
    # ------------------------------------------------------------------
    if suspects:
        framed = suspects[0]
        print(f"External evidence: the photo of {framed!r} with the Don is a forgery.")
        result = view.delete(
            f"seenwith(X, Y) <- X = '{scenario.kingpin}' & Y = '{framed}'",
            algorithm=DeletionAlgorithm.STDEL,
        )
        print(
            f"  StDel touched {result.stats.replaced_entries} entries "
            f"(no rederivation step was needed)"
        )
        print(f"  suspects now: {kingpin_suspects(view, scenario.kingpin)}")
        print()

    # ------------------------------------------------------------------
    # Update of the first kind: insertion (the policeman's report).
    # ------------------------------------------------------------------
    witness = scenario.people[1]
    reported = scenario.people[2]
    print(f"A policeman reports seeing {reported!r} with {witness!r}.")
    insertion = view.insert(f"seenwith(X, Y) <- X = '{witness}' & Y = '{reported}'")
    print(f"  insertion added {len(insertion.added_entries)} entries")
    print(f"  seenwith now contains the reported pair: "
          f"{(witness, reported) in view.query('seenwith')}")
    print()

    # ------------------------------------------------------------------
    # Update of the second kind: the surveillance dataset grows.
    # ------------------------------------------------------------------
    before = set(view.query("suspect"))
    new_companions = [
        person
        for person in scenario.near_dc
        if person in scenario.abc_employees
    ][:2]
    if new_companions:
        print(f"New surveillance photo shows the Don with {new_companions}.")
        scenario.face_scenario.add_photo(
            "surveillancedata", [scenario.kingpin] + new_companions
        )
        # W_P: no maintenance action at all -- just query again.
        after = set(view.query("suspect"))
        gained = sorted(after - before)
        print(f"  without any view maintenance, the next query gains: {gained}")


if __name__ == "__main__":
    main()
