"""Constrained databases à la Kanellakis-Kuper-Revesz (paper Example 2 and 6).

Shows that the materialized view machinery works for classical constraint
databases, not only for mediators over external packages:

* an arithmetic constraint domain provides infinite relations intensionally
  (``arith:greater`` never enumerates its result),
* a recursive program (transitive closure over constrained edge facts) is
  materialized under duplicate semantics with supports,
* a deletion is performed with both Extended DRed and Straight Delete and
  both are checked against the declarative semantics (the rewritten
  program's least model), reproducing the paper's Example 6.

Run with::

    python examples/constrained_database.py
"""

from __future__ import annotations

from repro.constraints import ConstraintSolver
from repro.datalog import compute_tp_fixpoint, parse_constrained_atom, parse_program
from repro.domains import DomainRegistry, make_arithmetic_domain
from repro.maintenance import (
    delete_with_dred,
    delete_with_stdel,
    recompute_after_deletion,
)

RECURSIVE_RULES = """
p(X, Y) <- X = 'a' & Y = 'b'.
p(X, Y) <- X = 'a' & Y = 'c'.
p(X, Y) <- X = 'c' & Y = 'd'.
a(X, Y) <- p(X, Y).
a(X, Y) <- p(X, Z), a(Z, Y).
"""

ARITHMETIC_RULES = """
bonus(X, Y) <- in(Y, arith:plus(X, 10)) || eligible(X).
eligible(X) <- X >= 50 & X <= 60.
eligible(X) <- in(X, arith:greater(90)).
"""


def show_view(title: str, view) -> None:
    print(f"--- {title} ---")
    for entry in view:
        print(f"  {entry}")
    print()


def main() -> None:
    solver = ConstraintSolver(DomainRegistry([make_arithmetic_domain()]))

    # ------------------------------------------------------------------
    # Example 6: a recursive constrained view with supports.
    # ------------------------------------------------------------------
    program = parse_program(RECURSIVE_RULES)
    view = compute_tp_fixpoint(program, solver)
    show_view("transitive closure view (Example 6's table)", view)
    print("path instances:", sorted(view.instances_for("a")))
    print()

    request = parse_constrained_atom("p(X, Y) <- X = 'c' & Y = 'd'")
    print(f"Deleting {request} ...\n")

    declarative = recompute_after_deletion(program, view, request, solver)
    stdel = delete_with_stdel(program, view, request, solver)
    dred = delete_with_dred(program, view, request, solver)

    show_view("after StDel (entries with unsolvable constraints removed)", stdel.view)
    print("StDel   a-instances:", sorted(stdel.view.instances_for("a")))
    print("DRed    a-instances:", sorted(dred.view.instances_for("a")))
    print("decl.   a-instances:", sorted(declarative.view.instances_for("a")))
    assert stdel.view.instances(solver) == declarative.view.instances(solver)
    assert dred.view.instances(solver) == declarative.view.instances(solver)
    print("Both algorithms agree with the declarative semantics (Theorems 1 and 2).")
    print()

    # ------------------------------------------------------------------
    # Example 2 flavour: intensional arithmetic relations.
    # ------------------------------------------------------------------
    arithmetic = parse_program(ARITHMETIC_RULES)
    arithmetic_view = compute_tp_fixpoint(arithmetic, solver)
    show_view("arithmetic constrained view", arithmetic_view)
    eligible = sorted(v for (v,) in arithmetic_view.instances_for("eligible", solver, range(0, 100)))
    print("eligible salaries in [0, 100):", eligible)
    bonuses = sorted(arithmetic_view.instances_for("bonus", solver, range(0, 100)))
    print("first few bonus pairs:", bonuses[:5], "...")


if __name__ == "__main__":
    main()
