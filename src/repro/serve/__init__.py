"""The serving layer: the mediator as a long-lived concurrent service.

The paper's setting is a *mediator* answering queries over a materialized
view while the integrated sources change underneath it.  This package is
that setting made operational:

* :mod:`repro.serve.service` -- :class:`MediatorService`, the asyncio
  core: snapshot reads on a thread pool (never blocked by maintenance), a
  writer pipeline splitting each drained batch into the stream scheduler's
  prepare / apply stages (batch ``n+1`` coalesces while ``n`` applies;
  disjoint-closure-group batches apply concurrently), and watermark
  backpressure on the update log.  :class:`SnapshotLease` pins an
  atomically consistent (view, effective program) pair for multi-query
  read sessions.
* :mod:`repro.serve.routing` -- :class:`RequestRouter`, the wire-format
  dispatch (query / insert / delete / notice / flush / stats).
* :mod:`repro.serve.server` -- :class:`MediatorServer`, a stdlib-only
  JSON-lines TCP front end (``repro serve`` on the command line).
"""

from repro.serve.routing import RequestRouter
from repro.serve.server import MediatorServer
from repro.serve.service import MediatorService, ServeOptions, SnapshotLease

__all__ = [
    "MediatorServer",
    "MediatorService",
    "RequestRouter",
    "ServeOptions",
    "SnapshotLease",
]
