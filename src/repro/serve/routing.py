"""Request routing: wire-format dicts -> service operations -> reply dicts.

One request is one JSON object; one reply is one JSON object.  The router
is transport-agnostic (the TCP server feeds it JSON lines, tests feed it
dicts directly) and side-effect-free beyond the service calls it makes.

Operations::

    {"op": "query",  "predicate": "p", "universe": "0:10"}
    {"op": "insert", "atom": "b(X) <- X = 1"}
    {"op": "delete", "atom": "b(X) <- X = 6"}
    {"op": "notice", "source": "faces"}
    {"op": "flush"}          # await until the update log is fully applied
    {"op": "stats"}
    {"op": "metrics"}        # {"format": "prometheus"} for text exposition
    {"op": "trace", "limit": 5}   # recent batch traces from the live ring
    {"op": "ping"}

Every reply carries ``"ok"``; failures add ``"error"`` and never take the
connection down -- a malformed update must not interrupt the readers
sharing the service.
"""

from __future__ import annotations

from typing import Optional

from repro.cli import parse_universe
from repro.datalog.parser import parse_constrained_atom
from repro.errors import ReproError
from repro.maintenance.requests import DeletionRequest, InsertionRequest
from repro.serve.service import MediatorService
from repro.stream.log import ExternalChangeNotice


class RequestRouter:
    """Dispatch one request dict against a :class:`MediatorService`."""

    def __init__(self, service: MediatorService) -> None:
        self._service = service

    async def dispatch(self, request: object) -> dict:
        if not isinstance(request, dict):
            return {"ok": False, "error": f"request must be an object, got {type(request).__name__}"}
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op: {op!r}"}
        try:
            return await handler(request)
        except ReproError as error:
            return {"ok": False, "error": str(error)}
        except (KeyError, TypeError, ValueError) as error:
            return {"ok": False, "error": f"bad request: {error}"}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _op_query(self, request: dict) -> dict:
        predicate = request["predicate"]
        universe = parse_universe(self._optional_str(request, "universe"))
        instances = await self._service.query(predicate, universe)
        rows = sorted((list(values) for values in instances), key=repr)
        return {
            "ok": True,
            "predicate": predicate,
            "instances": rows,
            "count": len(rows),
        }

    async def _op_insert(self, request: dict) -> dict:
        atom = parse_constrained_atom(request["atom"])
        transaction = await self._service.submit(InsertionRequest(atom))
        return {"ok": True, "txn": transaction.txn_id}

    async def _op_delete(self, request: dict) -> dict:
        atom = parse_constrained_atom(request["atom"])
        transaction = await self._service.submit(DeletionRequest(atom))
        return {"ok": True, "txn": transaction.txn_id}

    async def _op_notice(self, request: dict) -> dict:
        notice = ExternalChangeNotice(source=str(request["source"]))
        transaction = await self._service.submit(notice)
        return {"ok": True, "txn": transaction.txn_id}

    async def _op_flush(self, request: dict) -> dict:
        await self._service.drained()
        return {"ok": True, **self._service.stats()}

    async def _op_stats(self, request: dict) -> dict:
        return {"ok": True, **self._service.stats()}

    async def _op_metrics(self, request: dict) -> dict:
        """The metrics registry, as JSON or Prometheus text exposition."""
        obs = self._service.obs
        # Sync the intern-table totals at scrape time so the exposition is
        # fresh even when no batch has run since the tables last moved.
        obs.metrics.record_intern()
        fmt = self._optional_str(request, "format") or "json"
        if fmt == "prometheus":
            return {
                "ok": True,
                "enabled": obs.metrics.enabled,
                "exposition": obs.metrics.render_prometheus(),
            }
        if fmt != "json":
            return {"ok": False, "error": f"unknown metrics format: {fmt!r}"}
        return {
            "ok": True,
            "enabled": obs.metrics.enabled,
            "metrics": obs.metrics.as_dict(),
        }

    async def _op_trace(self, request: dict) -> dict:
        """Recent complete batch traces from the in-memory ring."""
        obs = self._service.obs
        if obs.ring is None:
            return {
                "ok": True,
                "enabled": False,
                "traces": [],
                "note": "tracing is disabled (set REPRO_OBS=1)",
            }
        limit = request.get("limit")
        if limit is not None:
            limit = int(limit)
        return {
            "ok": True,
            "enabled": True,
            "traces": obs.ring.traces(limit=limit),
        }

    async def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": True}

    @staticmethod
    def _optional_str(request: dict, key: str) -> Optional[str]:
        value = request.get(key)
        if value is None:
            return None
        return str(value)
