"""A JSON-lines TCP front end over :class:`~repro.serve.MediatorService`.

Protocol: one JSON object per line in, one JSON object per line out, in
request order per connection.  Connections are independent asyncio tasks;
queries from one connection overlap queries from another and updates from
any of them -- the service's snapshot reads make that safe without any
per-connection locking.

The dependency-free wire format keeps the server inside the stdlib (no
HTTP framework in the container); an HTTP layer can front it later without
touching the routing or the service.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.errors import MediatorError
from repro.serve.routing import RequestRouter
from repro.serve.service import MediatorService


class MediatorServer:
    """Serve one :class:`MediatorService` over TCP (JSON lines)."""

    def __init__(
        self,
        service: MediatorService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._service = service
        self._router = RequestRouter(service)
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); port 0 resolves at :meth:`start`."""
        if self._server is None:
            return (self._host, self._port)
        sockname = self._server.sockets[0].getsockname()
        return (sockname[0], sockname[1])

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        if self._server is not None:
            raise MediatorError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "MediatorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    request = json.loads(stripped)
                except json.JSONDecodeError as error:
                    response = {"ok": False, "error": f"invalid JSON: {error}"}
                else:
                    response = await self._router.dispatch(request)
                writer.write(
                    json.dumps(response, default=str).encode("utf-8") + b"\n"
                )
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
