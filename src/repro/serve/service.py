"""The mediator as a long-lived concurrent service.

:class:`MediatorService` wraps a :class:`~repro.stream.StreamScheduler` in
an asyncio front end with the concurrency shape the paper's mediator
implies -- many readers, one logical writer:

* **Reads never block on writers.**  A query grabs the published view
  pointer (snapshot isolation: mid-batch that is still the complete
  pre-batch view) and evaluates it on a read thread pool; no query ever
  takes the scheduler's coalesce or commit lock for more than the commit
  pointer swap.  :meth:`MediatorService.lease` pins an atomically
  consistent (view, effective program) pair for multi-query sessions.
* **The writer is a pipeline, not a lock.**  A coordinator task drains the
  :class:`~repro.stream.UpdateLog` in bounded batches and splits each into
  the scheduler's two stages: :meth:`~repro.stream.StreamScheduler.prepare_batch`
  (coalesce + partition, on its own single thread) and
  :meth:`~repro.stream.StreamScheduler.apply_prepared` (maintenance +
  commit, on an apply pool).  Batch ``n+1`` coalesces while batch ``n``
  applies, and batches writing disjoint closure groups run on the apply
  pool fully concurrently -- admission is the scheduler's ticket protocol,
  so conflicting batches still commit in stream order.
* **Backpressure, not unbounded queues.**  When the update log's backlog
  crosses the high watermark, :meth:`MediatorService.submit` awaits until
  the writer drains it below the low watermark; readers are unaffected.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Deque, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.constraints.solver import ConstraintSolver
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.errors import MediatorError
from repro.stream import BatchResult, StreamScheduler
from repro.stream.log import StreamPayload, Transaction


@dataclass(frozen=True)
class ServeOptions:
    """Tunable behaviour of the serving layer."""

    #: Threads evaluating read queries (snapshot reads are lock-free, so
    #: this bounds CPU share, not correctness).
    read_workers: int = 4
    #: Concurrent batch applications (pipeline depth).  Disjoint-group
    #: batches actually overlap; conflicting ones queue at admission.
    apply_workers: int = 2
    #: Most transactions drained into one batch (None = unbounded).  Keeps
    #: a burst from becoming one giant maintenance pass.
    max_batch: Optional[int] = 64
    #: Backlog (pending transactions) at which ``submit`` starts awaiting.
    backpressure_high: int = 1024
    #: Backlog at which awaiting submitters are released again.
    backpressure_low: int = 256
    #: Write a final snapshot when :meth:`MediatorService.stop` has drained
    #: everything (durable schedulers only; a no-op otherwise).  Crash
    #: tests disable it to leave a WAL tail for the next life to replay.
    checkpoint_on_stop: bool = True
    #: Most recent batch errors kept for :attr:`MediatorService.errors`
    #: (a ring: older ones are dropped and counted, so a long-lived
    #: service's error memory stays bounded).
    error_history: int = 256

    def __post_init__(self) -> None:
        if self.backpressure_low > self.backpressure_high:
            raise MediatorError(
                "backpressure_low must not exceed backpressure_high "
                f"({self.backpressure_low} > {self.backpressure_high})"
            )
        if self.error_history < 1:
            raise MediatorError(
                f"error_history must be positive (got {self.error_history})"
            )


@dataclass(frozen=True)
class SnapshotLease:
    """A pinned, atomically consistent (view, program) read session.

    Taken under the scheduler's commit lock, so the pair is never torn;
    held only by reference, so leasing is O(1) and the writer is never
    blocked by however long the reader keeps it.  The paper's deferred
    evaluation still applies: DCA constraints are checked against the
    sources *at query time*, so a lease pins the view's syntactic state,
    not the external world.
    """

    view: MaterializedView
    program: ConstrainedDatabase
    solver: ConstraintSolver
    #: How many batches had committed when the lease was taken.
    sequence: int

    def query(
        self, predicate: str, universe: Optional[Iterable[object]] = None
    ) -> FrozenSet[Tuple[object, ...]]:
        """Ground instances of *predicate* under this lease's snapshot."""
        return self.view.instances_for(
            predicate, solver=self.solver, universe=universe
        )

    def instances(self, universe: Optional[Iterable[object]] = None):
        """All ground instances of the leased snapshot."""
        return self.view.instances(self.solver, universe)


class MediatorService:
    """Asyncio façade serving reads and writes over one stream scheduler.

    Lifecycle: ``await start()``, interact via :meth:`query` /
    :meth:`submit` / :meth:`drained`, then ``await stop()``.  All public
    coroutines must be called from the event loop that ran ``start()``.
    """

    def __init__(
        self,
        scheduler: StreamScheduler,
        options: ServeOptions = ServeOptions(),
    ) -> None:
        self._scheduler = scheduler
        self._options = options
        self._read_pool: Optional[ThreadPoolExecutor] = None
        self._prepare_pool: Optional[ThreadPoolExecutor] = None
        self._apply_pool: Optional[ThreadPoolExecutor] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._below_low = asyncio.Event()
        self._idle.set()
        self._below_low.set()
        self._stopping = False
        self._closed = False
        self._results: List[BatchResult] = []
        #: Bounded error memory: the newest ``error_history`` renderings
        #: stay, older ones are dropped and counted (a long-lived service
        #: must not grow a list forever).
        self._errors: Deque[str] = deque(maxlen=options.error_history)
        self._errors_seen = 0
        self._obs = scheduler.obs

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "MediatorService":
        """Spin up the thread pools and the writer pipeline."""
        if self._writer_task is not None:
            raise MediatorError("service already started")
        options = self._options
        self._read_pool = ThreadPoolExecutor(
            max_workers=max(1, options.read_workers),
            thread_name_prefix="serve-read",
        )
        self._prepare_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-prepare"
        )
        self._apply_pool = ThreadPoolExecutor(
            max_workers=max(1, options.apply_workers),
            thread_name_prefix="serve-apply",
        )
        self._writer_task = asyncio.ensure_future(self._writer_loop())
        return self

    async def stop(self) -> None:
        """Drain the log, wait for in-flight batches, tear down the pools."""
        if self._writer_task is None:
            return
        self._closed = True
        self._stopping = True
        self._wake.set()
        await self._writer_task
        self._writer_task = None
        # Everything is drained and committed: write a parting snapshot so
        # the next life cold-starts from disk instead of replaying the WAL
        # (durable schedulers only -- plain schedulers have no checkpoint).
        checkpoint = getattr(self._scheduler, "checkpoint", None)
        if self._options.checkpoint_on_stop and checkpoint is not None:
            try:
                await asyncio.get_running_loop().run_in_executor(
                    self._apply_pool, checkpoint
                )
            except Exception as exc:  # surface via .errors, still tear down
                self._record_error(f"{type(exc).__name__}: {exc}")
        for pool in (self._read_pool, self._prepare_pool, self._apply_pool):
            if pool is not None:
                pool.shutdown(wait=True)
        self._read_pool = self._prepare_pool = self._apply_pool = None

    async def __aenter__(self) -> "MediatorService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Reads (never blocked by the writer)
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> StreamScheduler:
        return self._scheduler

    @property
    def view(self) -> MaterializedView:
        """The currently published snapshot (read-only)."""
        return self._scheduler.view

    def lease(self) -> SnapshotLease:
        """Pin an atomically consistent (view, effective program) pair."""
        view, program = self._scheduler.snapshot_state()
        return SnapshotLease(
            view=view,
            program=program,
            solver=self._scheduler.solver,
            sequence=len(self._scheduler.batches),
        )

    async def query(
        self, predicate: str, universe: Optional[Iterable[object]] = None
    ) -> FrozenSet[Tuple[object, ...]]:
        """Evaluate one predicate against the published snapshot.

        The view pointer is captured first (one atomic read), then the
        evaluation -- including any DCA round-trips the solver makes --
        runs on the read pool, so a slow external source stalls only this
        query's thread, never the event loop or the writer.
        """
        if self._read_pool is None:
            raise MediatorError("service is not running (call start())")
        view = self._scheduler.view
        return await asyncio.get_running_loop().run_in_executor(
            self._read_pool,
            partial(
                view.instances_for,
                predicate,
                solver=self._scheduler.solver,
                universe=universe,
            ),
        )

    async def query_lease(
        self,
        lease: SnapshotLease,
        predicate: str,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[object, ...]]:
        """Like :meth:`query`, but against a pinned lease."""
        if self._read_pool is None:
            raise MediatorError("service is not running (call start())")
        return await asyncio.get_running_loop().run_in_executor(
            self._read_pool, partial(lease.query, predicate, universe)
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    async def submit(self, payload: StreamPayload) -> Transaction:
        """Log one update for the writer pipeline (awaits backpressure)."""
        if self._closed or self._writer_task is None:
            raise MediatorError("service is not accepting updates")
        await self._below_low.wait()
        transaction = self._scheduler.submit(payload)
        self._idle.clear()
        if (
            self._scheduler.log.pending_count()
            >= self._options.backpressure_high
        ):
            self._below_low.clear()
        self._wake.set()
        return transaction

    async def submit_many(
        self, payloads: Sequence[StreamPayload]
    ) -> Tuple[Transaction, ...]:
        """Log several updates in order (one backpressure gate per call)."""
        if self._closed or self._writer_task is None:
            raise MediatorError("service is not accepting updates")
        await self._below_low.wait()
        transactions = tuple(
            self._scheduler.submit(payload) for payload in payloads
        )
        if transactions:
            self._idle.clear()
            if (
                self._scheduler.log.pending_count()
                >= self._options.backpressure_high
            ):
                self._below_low.clear()
            self._wake.set()
        return transactions

    async def drained(self) -> None:
        """Await until the log is empty and no batch is in flight."""
        await self._idle.wait()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def results(self) -> Tuple[BatchResult, ...]:
        """Applied batches' results, in completion order."""
        return tuple(self._results)

    @property
    def errors(self) -> Tuple[str, ...]:
        """The newest batch errors (rendered), oldest first.

        Bounded by ``ServeOptions.error_history``; ``stats()`` reports how
        many older ones were dropped."""
        return tuple(self._errors)

    @property
    def errors_dropped(self) -> int:
        """Errors evicted from the bounded history."""
        return max(0, self._errors_seen - len(self._errors))

    def _record_error(self, message: str) -> None:
        # Runs on the event loop only (writer loop + done callbacks), so a
        # plain counter and deque append are race-free.
        self._errors_seen += 1
        self._errors.append(message)
        self._obs.metrics.inc("repro_serve_errors_total")

    def stats(self) -> dict:
        """Service-level counters for operators and the serve benchmark."""
        scheduler = self._scheduler
        failed_units = sum(
            len(result.failed_units) for result in self._results
        )
        data = {
            "batches_applied": len(self._results),
            "batch_errors": self._errors_seen,
            "errors_dropped": self.errors_dropped,
            "failed_units": failed_units,
            "pending": scheduler.log.pending_count(),
            "inflight_peak": scheduler.inflight_peak,
            "concurrent_commits": scheduler.concurrent_commits,
            "view_entries": len(scheduler.view),
        }
        durability = getattr(scheduler, "durability", None)
        if durability is not None:
            data["txn_watermark"] = durability.watermark
            data["txn_high"] = durability.txn_high
            data["journaled_batches"] = durability.stats.journaled_batches
            data["checkpoints"] = durability.stats.checkpoints
            data["wal_bytes"] = durability.wal.size_bytes()
            data["wal_segments"] = durability.wal.segment_count()
            data["snapshot_id"] = durability.store.current_name()
        return data

    @property
    def obs(self):
        """The observability bundle (the scheduler's)."""
        return self._obs

    # ------------------------------------------------------------------
    # Writer pipeline
    # ------------------------------------------------------------------
    async def _writer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        options = self._options
        while True:
            self._wake.clear()
            # Drain through the scheduler's seam (not the log directly): a
            # durable scheduler journals + fsyncs the drained batch there,
            # so it runs on the prepare thread, never on the event loop.
            payloads = await loop.run_in_executor(
                self._prepare_pool,
                partial(self._scheduler.drain, limit=options.max_batch),
            )
            # The backlog just shrank (or is empty): release awaiting
            # submitters *before* possibly parking at the pipeline-depth
            # wait below, or a full pipeline would starve them.
            self._maybe_release_backpressure()
            if payloads:
                self._idle.clear()
                # Stage 1 on the (single) prepare thread: coalescing batch
                # n+1 overlaps batch n's maintenance on the apply pool.
                prepared = await loop.run_in_executor(
                    self._prepare_pool,
                    self._scheduler.prepare_batch,
                    payloads,
                )
                # Bound the pipeline depth; admission inside the scheduler
                # decides which of the in-flight batches truly overlap.
                while len(self._inflight) >= max(1, options.apply_workers):
                    await asyncio.wait(
                        set(self._inflight),
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                future = loop.run_in_executor(
                    self._apply_pool,
                    self._scheduler.apply_prepared,
                    prepared,
                )
                self._inflight.add(future)
                future.add_done_callback(self._on_batch_done)
                continue
            if not self._inflight:
                # Idle checkpoint coordinator: with nothing to apply, give
                # the durability layer a chance to turn a grown WAL into a
                # snapshot (off the event loop; a no-op for plain
                # schedulers and for small WALs).
                checkpoint_if_due = getattr(
                    self._scheduler, "checkpoint_if_due", None
                )
                if checkpoint_if_due is not None:
                    try:
                        await loop.run_in_executor(
                            self._apply_pool, checkpoint_if_due
                        )
                    except Exception as exc:  # surface, keep serving
                        self._record_error(f"{type(exc).__name__}: {exc}")
                # The drain and checkpoint awaits above can interleave with
                # a submit: only declare idle if the backlog is still empty
                # at this (await-free) instant, else loop and drain again.
                if self._scheduler.log.pending_count() == 0:
                    self._idle.set()
                    if self._stopping:
                        return
            await self._wake.wait()

    def _on_batch_done(self, future) -> None:
        # Runs in the event loop (done callback of a run_in_executor
        # future), so no locking is needed around the bookkeeping.
        self._inflight.discard(future)
        try:
            result = future.result()
        except Exception as exc:  # keep serving; surface via .errors
            self._record_error(f"{type(exc).__name__}: {exc}")
        else:
            self._results.append(result)
        self._wake.set()

    def _maybe_release_backpressure(self) -> None:
        if (
            not self._below_low.is_set()
            and self._scheduler.log.pending_count()
            <= self._options.backpressure_low
        ):
            self._below_low.set()
