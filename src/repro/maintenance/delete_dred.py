"""Algorithm 1: the Extended DRed deletion algorithm.

Extends the DRed algorithm of Gupta, Mumick and Subrahmanian (SIGMOD 1993)
to constrained / mediated views (paper Section 3.1.1):

1. **Over-deletion** -- unfold the atoms to be deleted through the program to
   compute ``P_OUT``, the constrained atoms that are *candidates* for
   deletion (each uses the deleted atom in exactly one body position, all
   other body positions coming from the current view).
2. **Over-estimate** -- ``M'`` subtracts the ``P_OUT`` instances from every
   affected view entry by conjoining ``not(ψ & bindings)``.
3. **Rederivation** -- re-run the fixpoint of the *rewritten* program ``P'``
   seeded with ``M'``; alternative derivations put over-deleted instances
   back.  The program is pruned to the clauses that can actually contribute
   (head predicate touched by ``P_OUT``), which is the incrementality lever
   the paper describes in steps 3(a)-(c).

Theorem 1: the result has the same instances as ``T_{P'} ↑ ω(∅)``.

The algorithm is intended for *duplicate-free* views; on views with
duplicate entries it remains sound for instances but may do extra work --
exactly the weakness the Straight Delete algorithm (Algorithm 2) removes.

**Sequences of deletions.**  Because step 3 rederives from the *program*, a
later deletion must be run against the program produced by the earlier
deletion's rewrite (``DRedResult.rewritten_program``); otherwise rederivation
can resurrect instances the earlier request removed.  The Straight Delete
algorithm has no such requirement -- it never rederives -- which is one more
practical advantage the benchmarks quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datalog.clauses import Clause

from repro.constraints.solver import ConstraintSolver
from repro.datalog.atoms import ConstrainedAtom
from repro.datalog.fixpoint import (
    FixpointEngine,
    FixpointOptions,
    iter_delta_joins,
    iter_indexed_delta_joins,
    make_interval_getter,
    make_view_probes,
)
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView, ViewEntry
from repro.errors import MaintenanceError
from repro.maintenance.common import (
    apply_clause_with_premises,
    build_del_set,
    make_fresh_factory,
    subtract_instances,
)
from repro.maintenance.declarative import deletion_rewrite
from repro.maintenance.insert import EXTERNAL_CLAUSE_NUMBER
from repro.maintenance.requests import DeletionRequest, MaintenanceStats
from repro.obs.metrics import NULL_METRICS


@dataclass
class DRedResult:
    """Outcome of one Extended DRed run."""

    view: MaterializedView
    del_atoms: Tuple[ConstrainedAtom, ...]
    p_out: Tuple[ConstrainedAtom, ...]
    overestimate: MaterializedView
    rewritten_program: ConstrainedDatabase
    stats: MaintenanceStats = field(default_factory=MaintenanceStats)


@dataclass(frozen=True)
class DRedOptions:
    """Tunable behaviour of the Extended DRed implementation."""

    #: Prune the rederivation program to clauses whose head predicate was
    #: touched by P_OUT (the paper's step 3(a)/(c) incrementality).
    prune_program: bool = True
    #: Seed the rederivation fixpoint only with the entries the over-deletion
    #: narrowed plus their direct premises (found through the support index),
    #: instead of the whole over-estimate.  Round 1 of the rederivation then
    #: only enumerates joins touching the disturbed derivations -- the
    #: delta-proportional cost the paper argues for -- rather than joining
    #: the entire over-estimate against itself.
    delta_rederivation: bool = True
    #: Drop narrowed entries that rederivation fully restored: when the
    #: rewritten program rederives a derivation (same support) whose
    #: constraint subsumes the over-deletion's narrowed twin, the narrowed
    #: entry is syntactically redundant -- its instances are all contained in
    #: the rederived one's -- and keeping it is exactly the
    #: instance-equal-but-key-different gap to StDel / recomputation on
    #: views with duplicate (overlapping) entries.  Sound for instances
    #: either way; with the pass on, the result is key-identical to the
    #: recomputed ``T_{P'} ↑ ω`` view on the interval family too.
    subsume_rederived: bool = True
    #: Segment a batch around requests that delete a *derivable* predicate:
    #: maximal runs of EDB-only requests keep the single-pass batched path,
    #: and only the derivable-deleting requests run as their own chained
    #: steps.  Off, any such request used to demote the *whole* batch to the
    #: one-at-a-time chain (kept, as ``False``, for the differential
    #: harness's segmented-vs-chained comparison).
    segment_batches: bool = True
    #: Remove entries whose constraint became unsolvable before returning.
    purge_unsolvable: bool = True
    #: Cap on P_OUT unfolding rounds (defensive; recursion is bounded by the
    #: view size because premises are drawn from the finite view).
    max_unfold_rounds: int = 100
    #: Fixpoint options used for the rederivation step.
    fixpoint: FixpointOptions = FixpointOptions()


DEFAULT_DRED_OPTIONS = DRedOptions()


class ExtendedDRed:
    """The Extended DRed deletion algorithm (paper Algorithm 1)."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        options: DRedOptions = DEFAULT_DRED_OPTIONS,
        metrics=None,
    ) -> None:
        self._program = program
        self._solver = solver or ConstraintSolver()
        self._options = options
        self._metrics = metrics if metrics is not None else NULL_METRICS

    def _record(self, result: "DRedResult") -> "DRedResult":
        """Mirror a finished pass's counters into the metrics registry."""
        self._metrics.record_maintenance("dred", result.stats)
        return result

    def delete(
        self, view: MaterializedView, request: DeletionRequest
    ) -> DRedResult:
        """Delete the requested constrained atom's instances from *view*.

        The input view is not modified; a new view is returned inside the
        result object.
        """
        return self.delete_many(view, (request,))

    def delete_many(
        self,
        view: MaterializedView,
        requests: Sequence[DeletionRequest],
        purge_predicates: Optional[Sequence[str]] = None,
    ) -> DRedResult:
        """Delete a whole batch of constrained atoms in one maintenance pass.

        A batch runs **one** ``P_OUT`` unfolding seeded with the union of the
        requests' ``Del`` atoms, one over-estimation pass, one deletion
        rewrite, one rederivation fixpoint and one subsumption/purge pass --
        amortizing the renaming, simplification and fixpoint setup that a
        sequential run pays per request (see :mod:`repro.stream`).

        The ``Del`` sets are composed *sequentially*: after each request, the
        touched same-predicate entries are narrowed in a working copy, so a
        later request's ``Del`` atoms are computed from exactly the entries a
        sequential run would see.  The shared unfolding draws its view-side
        premises from the pre-batch entries, which can only *widen* ``P_OUT``
        relative to the sequential runs -- over-deletion is the side DRed is
        robust against (rederivation restores, the subsumption pass drops the
        narrowed twins), so the batch result has the same instances, and on
        duplicate-free and interval views the same keys, as the sequential
        chain.

        Requests deleting a *derivable* predicate (the head of a rule clause)
        cannot share the single pass: their ``Del`` sets depend on the
        previous request's rederivation, which the cheap same-predicate
        narrowing cannot reproduce.  The batch is therefore *segmented*
        around them (``DRedOptions.segment_batches``): each maximal run of
        EDB-only requests stays one batched pass, each derivable-deleting
        request runs as its own chained step, and the rewritten program
        threads through the segments.  The old behaviour -- one such request
        demoting the whole batch to the one-at-a-time chain -- remains
        available with ``segment_batches=False``.

        *purge_predicates* restricts the final unsolvability purge to the
        given predicates (the stream scheduler passes the batch's write
        closure; see :meth:`StraightDelete.delete_many`).
        """
        requests = tuple(requests)
        stats = MaintenanceStats()
        if len(requests) > 1 and any(
            self._is_derivable(request.atom.predicate) for request in requests
        ):
            if self._options.segment_batches:
                return self._record(
                    self._delete_segmented(view, requests, stats, purge_predicates)
                )
            return self._record(
                self._delete_chained(view, requests, stats, purge_predicates)
            )

        factory = make_fresh_factory(
            self._program, view, tuple(request.atom for request in requests)
        )

        # Step 0: Del -- the actually-present instances to delete, composed
        # sequentially across the batch (same-predicate entries are narrowed
        # between requests so each Del set matches its sequential twin).
        working = view.copy()
        original_keys = {entry.key() for entry in view}
        del_atoms_all: List[ConstrainedAtom] = []
        for request in requests:
            del_pairs = build_del_set(working, request.atom, self._solver, factory, stats)
            atoms_here = tuple(atom for _, atom in del_pairs)
            del_atoms_all.extend(atoms_here)
            if len(requests) > 1 and atoms_here:
                narrow_cache: Dict[int, ConstrainedAtom] = {}
                for entry, _ in del_pairs:
                    replacement = subtract_instances(
                        entry,
                        atoms_here,
                        self._solver,
                        factory,
                        stats,
                        narrow_cache,
                        drop_redundant_comparisons=self._options.fixpoint.drop_redundant_comparisons,
                    )
                    if replacement is not entry:
                        working.replace(entry, replacement)
        del_atoms = tuple(del_atoms_all)
        if not del_atoms:
            # Nothing to delete: the view is returned unchanged (but copied,
            # to keep the no-mutation contract).
            return self._record(
                DRedResult(view.copy(), (), (), view.copy(), self._program, stats)
            )

        # Step 1: P_OUT -- unfold the deletions upward through the program.
        # Premises come from the pre-batch view: a superset of what any
        # sequential step would use, so the unfolding can only over-delete.
        p_out = self._unfold_p_out(view, del_atoms, factory, stats)

        # Step 2: M' -- subtract the P_OUT instances from affected entries.
        # ``working`` already carries the between-request narrowing of the
        # deleted predicates; subtracting a Del atom twice is a no-op (the
        # overlap check against the already-narrowed constraint is
        # unsatisfiable).
        p_out_by_signature: Dict[Tuple[str, int], List[ConstrainedAtom]] = {}
        for atom in p_out:
            p_out_by_signature.setdefault(atom.atom.signature, []).append(atom)
        renamed_cache: Dict[int, ConstrainedAtom] = {}
        # The over-estimate is a copy-on-write copy of the working view with
        # only the affected entries replaced: predicates outside the
        # propagation cone keep their shard pointers, so building M' costs
        # the narrowed entries, not a re-index of the whole view.
        overestimate = working.copy()
        narrowed: List[ViewEntry] = []
        for entry in working:
            relevant = p_out_by_signature.get(entry.atom.signature)
            replacement = entry
            if relevant:
                replacement = subtract_instances(
                    entry,
                    relevant,
                    self._solver,
                    factory,
                    stats,
                    renamed_cache,
                    drop_redundant_comparisons=self._options.fixpoint.drop_redundant_comparisons,
                )
            if replacement is not entry:
                # ``replace`` keeps the slot (insertion order) and merges
                # key collisions exactly like the old rebuild's ``add`` did.
                overestimate.replace(entry, replacement)
            if replacement.key() not in original_keys:
                # Narrowed either by this pass or by the between-request
                # composition above -- both disturb the entry's derivations.
                narrowed.append(replacement)

        # Step 3: rederive using the rewritten program seeded with M'.
        rewritten = deletion_rewrite(self._program, del_atoms, factory)
        rederivation_program = self._prune_program(rewritten, p_out)
        engine = FixpointEngine(
            rederivation_program, self._solver, self._options.fixpoint
        )
        before = len(overestimate)
        initial_delta = (
            self._rederivation_seed(overestimate, narrowed, stats)
            if self._options.delta_rederivation
            else None
        )
        result_view = engine.compute(initial=overestimate, initial_delta=initial_delta)
        stats.rederived_entries = len(result_view) - before
        engine.stats.merge_into(stats)

        if self._options.purge_unsolvable:
            # One satisfiability check per scanned entry: count them like
            # StDel's step 4 does, so the batched purge restriction (scan
            # only the write closure, once per batch) shows up in the
            # counters the benchmarks gate on.
            if purge_predicates is None:
                stats.solver_calls += len(result_view)
            else:
                stats.solver_calls += sum(
                    len(result_view.entries_for(predicate))
                    for predicate in set(purge_predicates)
                )
            stats.removed_entries += result_view.prune_unsolvable(
                self._solver, purge_predicates
            )

        if self._options.subsume_rederived:
            self._subsume_rederived(result_view, narrowed, stats)

        return self._record(
            DRedResult(result_view, del_atoms, p_out, overestimate, rewritten, stats)
        )

    def _is_derivable(self, predicate: str) -> bool:
        """True when some rule clause (non-empty body) derives *predicate*."""
        return any(
            clause.body for clause in self._program.clauses_for(predicate)
        )

    def _delete_chained(
        self,
        view: MaterializedView,
        requests: Sequence[DeletionRequest],
        stats: MaintenanceStats,
        purge_predicates: Optional[Sequence[str]] = None,
    ) -> DRedResult:
        """Fallback: apply the requests one at a time, threading the rewrite.

        Kept (behind ``segment_batches=False``) as the reference the
        differential harness compares the segmented path against; it is the
        degenerate segmentation where every request is its own segment.
        """
        return self._run_segments(
            view, [(request,) for request in requests], stats, purge_predicates
        )

    def _segments(
        self, requests: Sequence[DeletionRequest]
    ) -> List[Tuple[DeletionRequest, ...]]:
        """Split a batch into single-pass-able segments, in stream order.

        Maximal runs of EDB-only requests stay together (they take the
        batched path); every request deleting a derivable predicate becomes
        its own segment (its ``Del`` set depends on the preceding segment's
        rederivation).  Derivability is judged against the original program
        -- the deletion rewrite only narrows clause constraints, never the
        clause bodies, so it cannot change which predicates are derivable.
        """
        segments: List[Tuple[DeletionRequest, ...]] = []
        run: List[DeletionRequest] = []
        for request in requests:
            if self._is_derivable(request.atom.predicate):
                if run:
                    segments.append(tuple(run))
                    run = []
                segments.append((request,))
            else:
                run.append(request)
        if run:
            segments.append(tuple(run))
        return segments

    def _delete_segmented(
        self,
        view: MaterializedView,
        requests: Sequence[DeletionRequest],
        stats: MaintenanceStats,
        purge_predicates: Optional[Sequence[str]] = None,
    ) -> DRedResult:
        """Batch around the derivable-predicate requests instead of chaining.

        The old fallback demoted the *whole* batch to one-at-a-time chaining
        as soon as any request deleted a derivable predicate, so the EDB
        majority of a mixed batch lost all amortization.  Segmenting keeps
        every EDB run in the single-pass path and chains only the derivable
        steps.  Result-equivalent to the chain (each segment sees exactly
        the view and program a chained run would) at a cost that is at most
        the chain's.
        """
        return self._run_segments(
            view, self._segments(requests), stats, purge_predicates
        )

    def _run_segments(
        self,
        view: MaterializedView,
        segments: Sequence[Tuple[DeletionRequest, ...]],
        stats: MaintenanceStats,
        purge_predicates: Optional[Sequence[str]] = None,
    ) -> DRedResult:
        """Apply *segments* in order, threading the rewritten program.

        The single place the chain-threading logic lives (the chained
        fallback and the segmented path only differ in how they cut the
        batch into segments): each segment runs against the program the
        previous segment's rewrite produced, the purge restriction applies
        per segment (each segment must purge -- its successor's ``Del`` set
        depends on it -- but never outside the batch's write closure), and
        the combined result carries the accumulated Del / P_OUT atoms, the
        final rewritten program and the last segment's over-estimate.
        """
        program = self._program
        current = view
        del_atoms: List[ConstrainedAtom] = []
        p_out: List[ConstrainedAtom] = []
        result: Optional[DRedResult] = None
        for segment in segments:
            step = ExtendedDRed(program, self._solver, self._options).delete_many(
                current, segment, purge_predicates=purge_predicates
            )
            stats.merge(step.stats)
            del_atoms.extend(step.del_atoms)
            p_out.extend(step.p_out)
            current = step.view
            program = step.rewritten_program
            result = step
        assert result is not None  # segments are non-empty on this path
        return DRedResult(
            current, tuple(del_atoms), tuple(p_out), result.overestimate, program, stats
        )

    # ------------------------------------------------------------------
    # Internal steps
    # ------------------------------------------------------------------
    def _subsume_rederived(
        self,
        view: MaterializedView,
        narrowed: Sequence[ViewEntry],
        stats: MaintenanceStats,
    ) -> None:
        """Drop narrowed entries subsumed by a fully-rederived same-support twin.

        Rederivation re-runs derivations the over-deletion disturbed; when a
        derivation survives the rewrite in full, the fixpoint adds an entry
        with the *same support* as the narrowed one but a wider constraint.
        Both are sound, but recomputation (and StDel) represent that
        derivation once -- so for every narrowed entry still in the view, its
        same-support siblings are checked for syntactic subsumption
        (``instances(narrowed) ⊆ instances(sibling)``, see
        :meth:`~repro.constraints.solver.ConstraintSolver.subsumes_instances`)
        and the narrowed duplicate is removed when one subsumes it.  Only
        narrowed entries are candidates for removal; ties (mutual
        subsumption) therefore keep the rederived twin, whose canonical form
        matches what recomputation produces.
        """
        dropped = 0
        for entry in narrowed:
            if entry not in view:
                continue  # purged, or merged away by a replace
            if entry.support.clause_number == EXTERNAL_CLAUSE_NUMBER:
                # Externally inserted (Algorithm 3's reserved support 0):
                # no program clause carries number 0, so rederivation can
                # never produce a twin of this derivation -- any same-
                # support sibling is a *different* external insertion, and
                # dropping it would lose a distinct derivation (duplicate
                # semantics).
                continue
            stats.solver_calls += 1
            if not self._solver.is_satisfiable(entry.constraint):
                # An empty instance set is vacuously subsumed by *any*
                # sibling; removing it here would purge behind
                # ``purge_unsolvable=False``'s back and miscount the drop
                # as a subsumption.  Leave unsolvable narrows to the purge
                # option.  (With purging on -- the default -- these entries
                # are already gone and this check is a memo hit.)
                continue
            for sibling in view.find_all_by_support(entry.support):
                if sibling.key() == entry.key():
                    continue
                if sibling.atom.signature != entry.atom.signature:
                    # Supports are not unique across externally inserted
                    # atoms (all carry clause number 0); only a same-
                    # predicate twin can represent the same derivation.
                    continue
                stats.solver_calls += 1
                if self._solver.subsumes_instances(
                    entry.atom.args,
                    entry.constraint,
                    sibling.atom.args,
                    sibling.constraint,
                ):
                    view.remove(entry)
                    dropped += 1
                    break
        if dropped:
            stats.removed_entries += dropped
            stats.bump("subsumed_rederived", dropped)

    def _rederivation_seed(
        self,
        overestimate: MaterializedView,
        narrowed: Sequence[ViewEntry],
        stats: Optional[MaintenanceStats] = None,
    ) -> Tuple[ViewEntry, ...]:
        """The delta-aware seed of the rederivation fixpoint.

        Rederivation only has to revisit derivations the over-deletion
        disturbed: joins that *use* a narrowed entry (seeded by the narrowed
        entries themselves) and joins that *re-derive* a narrowed entry from
        its own, possibly untouched, premises (seeded by the direct premises
        of every narrowed entry, found through the view's support index --
        each probe is counted under ``support_probes``, the same counter
        StDel's child-support propagation reports).

        Supports need not be unique: externally inserted atoms all carry the
        bare clause number 0, so a probe for such a child support returns
        *every* external entry.  Only entries matching the clause's body-atom
        predicate at that premise position can actually have been the premise
        of the narrowed derivation, so the candidates are filtered against
        the clause before seeding -- on external-insertion-heavy views this
        keeps the seed proportional to the disturbed derivations instead of
        the total number of insertions ever applied.
        """
        seed: List[ViewEntry] = []
        seen: set = set()

        def push(entry: ViewEntry) -> None:
            key = entry.key()
            if key not in seen:
                seen.add(key)
                seed.append(entry)

        for entry in narrowed:
            push(entry)
            clause = (
                self._program.clause(entry.support.clause_number)
                if self._program.has_clause(entry.support.clause_number)
                else None
            )
            body = (
                clause.body
                if clause is not None
                and len(clause.body) == len(entry.support.children)
                else None
            )
            for position, child in enumerate(entry.support.children):
                if stats is not None:
                    stats.support_probes += 1
                for premise in overestimate.find_all_by_support(child):
                    if body is not None and premise.predicate != body[position].predicate:
                        continue
                    push(premise)
        return tuple(seed)

    def _unfold_p_out(
        self,
        view: MaterializedView,
        del_atoms: Sequence[ConstrainedAtom],
        factory,
        stats: MaintenanceStats,
    ) -> Tuple[ConstrainedAtom, ...]:
        """Compute ``P_OUT = ∪_k P_OUT_k`` (paper step 1).

        ``P_OUT_{k+1}`` uses a clause with *exactly one* body premise drawn
        from ``P_OUT_k`` and every other premise drawn from the materialized
        view.
        """
        collected: List[ConstrainedAtom] = list(del_atoms)
        seen = {self._atom_key(atom) for atom in collected}
        frontier: List[ConstrainedAtom] = list(del_atoms)
        use_index = self._options.fixpoint.hash_join_index
        use_ranges = use_index and self._options.fixpoint.range_postings

        def pool_for(predicate: str) -> Tuple[ViewEntry, ...]:
            return view.entries_for(predicate)

        def on_probe() -> None:
            stats.index_probes += 1

        # P_OUT draws the non-frontier premises from the *full* view, so the
        # old-pool and full-pool probes coincide (no delta exclusion).
        probe, _ = make_view_probes(
            view,
            on_probe=on_probe,
            range_postings=use_ranges,
            evaluator=self._solver.evaluator,
            range_eligible=self._options.fixpoint.range_eligible,
        )
        bound_intervals = (
            make_interval_getter(self._solver.evaluator) if use_ranges else None
        )

        rounds = 0
        while frontier:
            rounds += 1
            if rounds > self._options.max_unfold_rounds:
                raise MaintenanceError(
                    "P_OUT unfolding exceeded "
                    f"{self._options.max_unfold_rounds} rounds"
                )
            frontier_by_signature: Dict[Tuple[str, int], List[ConstrainedAtom]] = {}
            for poisoned in frontier:
                frontier_by_signature.setdefault(poisoned.atom.signature, []).append(
                    poisoned
                )
            # Only clauses whose body mentions a frontier predicate can
            # contribute to this round of the unfolding.
            selected: Dict[int, Clause] = {}
            for predicate, _ in frontier_by_signature:
                for clause in self._program.clauses_with_body_predicate(predicate):
                    selected[clause.number or 0] = clause
            next_frontier: List[ConstrainedAtom] = []
            for number in sorted(selected):
                clause = selected[number]
                view_premises = [pool_for(atom.predicate) for atom in clause.body]
                frontier_premises = [
                    tuple(frontier_by_signature.get(atom.signature, ()))
                    for atom in clause.body
                ]
                # Passing the view pools as "old" pools makes the delta join
                # draw *exactly one* premise from the frontier (P_OUT_k) and
                # every other premise from the materialized view, which is
                # precisely the paper's unfolding discipline.  With the
                # argument index on, the view positions are resolved by
                # probing with the bindings the frontier atom pins down.
                renamed_premises: Dict[Tuple[int, int], ConstrainedAtom] = {}
                if use_index:
                    combinations = iter_indexed_delta_joins(
                        clause.body,
                        view_premises,
                        frontier_premises,
                        view_premises,
                        probe,
                        probe,
                        bound_intervals=bound_intervals,
                    )
                else:
                    combinations = iter_delta_joins(
                        view_premises, frontier_premises, view_premises
                    )
                for combination in combinations:
                    stats.derivation_attempts += 1
                    premise_atoms = tuple(
                        item.constrained_atom if isinstance(item, ViewEntry) else item
                        for item in combination
                    )
                    derived = apply_clause_with_premises(
                        clause,
                        premise_atoms,
                        self._solver,
                        factory,
                        check_solvable=True,
                        stats=stats,
                        renamed_cache=renamed_premises,
                        drop_redundant_comparisons=self._options.fixpoint.drop_redundant_comparisons,
                    )
                    if derived is None:
                        continue
                    key = self._atom_key(derived)
                    if key in seen:
                        continue
                    seen.add(key)
                    collected.append(derived)
                    next_frontier.append(derived)
            frontier = next_frontier
        stats.unfolded_atoms = len(collected) - len(del_atoms)
        return tuple(collected)

    def _prune_program(
        self, rewritten: ConstrainedDatabase, p_out: Sequence[ConstrainedAtom]
    ) -> ConstrainedDatabase:
        """Keep only the clauses that can rederive over-deleted atoms."""
        if not self._options.prune_program:
            return rewritten
        touched = {atom.atom.signature for atom in p_out}
        kept = [
            clause for clause in rewritten if clause.head.signature in touched
        ]
        return ConstrainedDatabase(kept)

    @staticmethod
    def _atom_key(atom: ConstrainedAtom):
        from repro.constraints.simplify import canonical_form

        return (atom.atom, canonical_form(atom.constraint))


def delete_with_dred(
    program: ConstrainedDatabase,
    view: MaterializedView,
    atom: ConstrainedAtom,
    solver: Optional[ConstraintSolver] = None,
    options: DRedOptions = DEFAULT_DRED_OPTIONS,
) -> DRedResult:
    """Convenience wrapper: run Extended DRed for one deletion request."""
    algorithm = ExtendedDRed(program, solver, options)
    return algorithm.delete(view, DeletionRequest(atom))
