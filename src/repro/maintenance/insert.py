"""Algorithm 3: insertion of constrained atoms into a materialized view.

Inserting ``A(X̄) <- ψ`` (paper Section 3.2):

1. ``Add`` -- the instances of ``ψ`` not already represented in the view
   (see :func:`repro.maintenance.declarative.build_add_set`);
2. ``P_ADD`` -- unfold the new atoms upward through the program: a clause
   application contributes when **at least one** body premise comes from
   ``P_ADD`` (contrast with the deletion unfolding, which requires *exactly
   one* premise from ``P_OUT``), the remaining premises coming from the view
   or from ``P_ADD`` itself;
3. the new view is ``M ∪ P_ADD``.

Theorem 3: the result has the same instances as the least model of the
insertion rewrite ``P♭``.

Inserted base atoms carry the reserved clause number 0 in their supports
(they were not produced by any program clause), so later deletions via StDel
can still track derivations that depend on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.constraints.solver import ConstraintSolver
from repro.datalog.atoms import ConstrainedAtom
from repro.datalog.clauses import Clause
from repro.datalog.fixpoint import (
    iter_delta_joins,
    iter_indexed_delta_joins,
    make_interval_getter,
    make_view_probes,
)
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.support import Support
from repro.datalog.view import MaterializedView, ViewEntry
from repro.errors import MaintenanceError
from repro.maintenance.common import apply_clause_with_premises, make_fresh_factory
from repro.maintenance.declarative import build_add_set
from repro.maintenance.requests import InsertionRequest, MaintenanceStats
from repro.obs.metrics import NULL_METRICS

#: Clause number used in supports of externally inserted atoms.
EXTERNAL_CLAUSE_NUMBER = 0


@dataclass
class InsertionResult:
    """Outcome of one insertion run."""

    view: MaterializedView
    add_atoms: Tuple[ConstrainedAtom, ...]
    added_entries: Tuple[ViewEntry, ...]
    stats: MaintenanceStats = field(default_factory=MaintenanceStats)


@dataclass(frozen=True)
class InsertionOptions:
    """Tunable behaviour of the insertion algorithm."""

    #: Narrow the inserted atom by the instances already present (the
    #: paper's ``Add`` construction).  With False a duplicate derivation is
    #: recorded even when the instances already exist.
    exclude_existing: bool = True
    #: Defensive bound on unfolding rounds.
    max_unfold_rounds: int = 100
    #: Resolve view-side join positions through the argument index (hash
    #: join) instead of scanning the per-predicate pools.
    hash_join_index: bool = True
    #: Also consult the argument index's interval range postings (see
    #: :attr:`repro.datalog.fixpoint.FixpointOptions.range_postings`).
    range_postings: bool = True
    #: Drop comparison conjuncts entailed by the rest when simplifying
    #: derived constraints, matching
    #: :attr:`repro.datalog.fixpoint.FixpointOptions.drop_redundant_comparisons`
    #: (keep the two in sync when comparing against recomputation by key).
    drop_redundant_comparisons: bool = True
    #: Statically-inferred interval-eligible (predicate, position) pairs
    #: (see :attr:`repro.datalog.fixpoint.FixpointOptions.range_eligible`).
    range_eligible: Optional[FrozenSet[Tuple[str, int]]] = None


DEFAULT_INSERTION_OPTIONS = InsertionOptions()


class ConstrainedAtomInsertion:
    """The constrained-atom insertion algorithm (paper Algorithm 3)."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        options: InsertionOptions = DEFAULT_INSERTION_OPTIONS,
        metrics=None,
    ) -> None:
        self._program = program
        self._solver = solver or ConstraintSolver()
        self._options = options
        self._metrics = metrics if metrics is not None else NULL_METRICS

    def insert(
        self, view: MaterializedView, request: InsertionRequest
    ) -> InsertionResult:
        """Insert the requested constrained atom's instances into *view*."""
        return self.insert_many(view, (request,))

    def insert_many(
        self, view: MaterializedView, requests: Sequence[InsertionRequest]
    ) -> InsertionResult:
        """Insert a whole batch of constrained atoms in one maintenance pass.

        The ``Add`` sets are built sequentially (each against the working
        view including the previous requests' external entries, so the
        disjointification matches a one-at-a-time run), but the ``P_ADD``
        unfolding runs **once**, seeded with the union of the external
        entries -- amortizing the per-request pool construction, probe setup
        and renaming across the batch (see :mod:`repro.stream`).  The union
        unfolding enumerates exactly the clause applications the sequential
        runs would (every combination using at least one inserted entry,
        each exactly once), so the result is identical.

        A request whose predicate is *derivable* (the head of a rule clause)
        first drains the accumulated frontier: its ``Add`` set must be
        narrowed by everything earlier insertions can derive, which only the
        unfolded view provides.
        """
        requests = tuple(requests)
        stats = MaintenanceStats()
        working = view.copy()
        factory = make_fresh_factory(
            self._program, working, tuple(request.atom for request in requests)
        )
        derivable = {
            clause.predicate for clause in self._program if clause.body
        }

        added: List[ViewEntry] = []
        frontier: List[ViewEntry] = []
        all_add_atoms: List[ConstrainedAtom] = []
        for request in requests:
            if frontier and request.atom.predicate in derivable:
                self._unfold_p_add(working, frontier, factory, added, stats)
                frontier = []
            add_atoms = build_add_set(
                working,
                request.atom,
                self._solver,
                factory,
                exclude_existing=self._options.exclude_existing,
            )
            stats.seed_atoms += len(add_atoms)
            all_add_atoms.extend(add_atoms)
            for atom in add_atoms:
                entry = ViewEntry(
                    atom.atom, atom.constraint, Support(EXTERNAL_CLAUSE_NUMBER)
                )
                if working.add(entry):
                    added.append(entry)
                    frontier.append(entry)
        if frontier:
            self._unfold_p_add(working, frontier, factory, added, stats)
        stats.unfolded_atoms = len(added) - stats.seed_atoms
        stats.rederived_entries = len(added)
        self._metrics.record_maintenance("insert", stats)
        return InsertionResult(working, tuple(all_add_atoms), tuple(added), stats)

    def _unfold_p_add(
        self,
        working: MaterializedView,
        frontier: List[ViewEntry],
        factory,
        added: List[ViewEntry],
        stats: MaintenanceStats,
    ) -> None:
        """Run the ``P_ADD`` unfolding to fixpoint for one frontier."""
        rounds = 0
        while frontier:
            rounds += 1
            if rounds > self._options.max_unfold_rounds:
                raise MaintenanceError(
                    "P_ADD unfolding exceeded "
                    f"{self._options.max_unfold_rounds} rounds"
                )
            frontier_keys = {entry.key() for entry in frontier}
            frontier_by_predicate: Dict[str, List[ViewEntry]] = {}
            for entry in frontier:
                frontier_by_predicate.setdefault(entry.predicate, []).append(entry)
            selected: Dict[int, Clause] = {}
            for predicate in frontier_by_predicate:
                for clause in self._program.clauses_with_body_predicate(predicate):
                    selected[clause.number or 0] = clause

            # Per-round (full, old, delta) pools, computed once per predicate
            # (mirrors FixpointEngine._round_plan).
            round_pools: Dict[str, Tuple[tuple, tuple, tuple]] = {}

            def pools_for(predicate: str) -> Tuple[tuple, tuple, tuple]:
                cached = round_pools.get(predicate)
                if cached is None:
                    full = working.entries_for(predicate)
                    fresh = tuple(frontier_by_predicate.get(predicate, ()))
                    old = (
                        tuple(e for e in full if e.key() not in frontier_keys)
                        if fresh
                        else full
                    )
                    cached = round_pools[predicate] = (full, old, fresh)
                return cached

            probes = None
            bound_intervals = None
            if self._options.hash_join_index:

                def on_probe() -> None:
                    stats.index_probes += 1

                use_ranges = self._options.range_postings
                probes = make_view_probes(
                    working,
                    exclude_keys=frontier_keys,
                    delta_by_predicate=frontier_by_predicate,
                    on_probe=on_probe,
                    range_postings=use_ranges,
                    evaluator=self._solver.evaluator,
                    range_eligible=self._options.range_eligible,
                )
                if use_ranges:
                    bound_intervals = make_interval_getter(self._solver.evaluator)

            produced: List[ViewEntry] = []
            produced_keys: set = set()
            for number in sorted(selected):
                clause = selected[number]
                full_pools = []
                old_pools = []
                delta_pools = []
                feasible = True
                for body_atom in clause.body:
                    full, old, fresh = pools_for(body_atom.predicate)
                    if not full:
                        feasible = False
                        break
                    full_pools.append(full)
                    old_pools.append(old)
                    delta_pools.append(fresh)
                if not feasible:
                    continue
                # P_ADD: at least one premise from the frontier, the rest
                # from the view (which, unlike deletion's P_OUT, already
                # contains the frontier -- hence old/delta/full pools).
                renamed_premises: Dict[Tuple[int, int], ConstrainedAtom] = {}
                if probes is not None:
                    combinations = iter_indexed_delta_joins(
                        clause.body,
                        old_pools,
                        delta_pools,
                        full_pools,
                        *probes,
                        bound_intervals=bound_intervals,
                    )
                else:
                    combinations = iter_delta_joins(old_pools, delta_pools, full_pools)
                for combination in combinations:
                    stats.derivation_attempts += 1
                    premise_atoms = tuple(
                        entry.constrained_atom for entry in combination
                    )
                    derived = apply_clause_with_premises(
                        clause,
                        premise_atoms,
                        self._solver,
                        factory,
                        check_solvable=True,
                        stats=stats,
                        renamed_cache=renamed_premises,
                        drop_redundant_comparisons=self._options.drop_redundant_comparisons,
                    )
                    if derived is None:
                        continue
                    support = Support(
                        clause.number or 0,
                        tuple(entry.support for entry in combination),
                    )
                    entry = ViewEntry(derived.atom, derived.constraint, support)
                    # Membership against the sharded view replaces the old
                    # whole-view key snapshot: O(1) per check, no O(|view|)
                    # set build per batch.  ``produced_keys`` dedups within
                    # the round (those entries are not in the view yet).
                    key = entry.key()
                    if key in produced_keys or entry in working:
                        continue
                    produced_keys.add(key)
                    produced.append(entry)
            frontier = []
            for entry in produced:
                if working.add(entry):
                    added.append(entry)
                    frontier.append(entry)


def insert_atom(
    program: ConstrainedDatabase,
    view: MaterializedView,
    atom: ConstrainedAtom,
    solver: Optional[ConstraintSolver] = None,
    options: InsertionOptions = DEFAULT_INSERTION_OPTIONS,
) -> InsertionResult:
    """Convenience wrapper: run the insertion algorithm for one request."""
    algorithm = ConstrainedAtomInsertion(program, solver, options)
    return algorithm.insert(view, InsertionRequest(atom))
