"""Declarative semantics of view updates as rewritten constrained databases.

The paper defines what a deletion/insertion *means* by rewriting the
constrained database and taking the least model of the rewritten program:

* **Deletion** of ``A(X̄) <- δ`` (Section 3.1): every clause with head
  predicate ``A`` gets ``not(δ) & (X̄ = Ȳ)`` conjoined onto its constraint
  part, all other clauses are kept; the new view is ``T_{P'} ↑ ω(∅)``.
  Theorems 1 and 2 state that the Extended DRed and StDel algorithms compute
  exactly the instances of this program.

* **Insertion** of ``A(X̄) <- ψ`` (Section 3.2): the program is extended
  with the ``Add`` atoms as constrained facts; the new view is
  ``T_{P♭} ↑ ω(∅)``.  (The paper's ``P♭`` additionally rewrites the
  constraint parts of existing ``A``-clauses with ``not(φ)`` conjuncts; that
  component only affects duplicate bookkeeping, not the instance set ``[·]``
  that Theorem 3 is stated over, so this module keeps the instance-equivalent
  ``P ∪ Add`` form.)

These rewrites are the correctness yardstick: the test-suite checks every
incremental algorithm against the least model of the rewritten program.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.constraints.ast import conjoin
from repro.constraints.simplify import simplify
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import FreshVariableFactory
from repro.datalog.atoms import ConstrainedAtom
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.maintenance.common import negated_atom_constraint


def deletion_rewrite(
    program: ConstrainedDatabase,
    deleted: Sequence[ConstrainedAtom],
    factory: Optional[FreshVariableFactory] = None,
) -> ConstrainedDatabase:
    """Build ``P'`` for a deletion (the paper's rewrite (4)).

    For every clause ``A(X̄) <- φ || B1, ..., Bn`` in ``P`` and every deleted
    atom ``A(Ȳ) <- δ`` the rewritten clause carries
    ``φ & not(δ & (X̄ = Ȳ))``; clauses whose head predicate is untouched are
    copied unchanged.  Clause numbers are preserved so supports remain
    comparable across the rewrite.
    """
    factory = factory or FreshVariableFactory(
        {variable.name for clause in program for variable in clause.variables()}
        | {
            variable.name
            for atom in deleted
            for variable in atom.variables()
        }
    )
    rewritten: List[Clause] = []
    for clause in program:
        updated = clause
        for atom in deleted:
            if atom.atom.signature != clause.head.signature:
                continue
            _, negative = negated_atom_constraint(clause.head, atom, factory)
            updated = updated.with_extra_constraint(negative)
        rewritten.append(updated)
    return ConstrainedDatabase(rewritten)


def insertion_rewrite(
    program: ConstrainedDatabase,
    add_atoms: Sequence[ConstrainedAtom],
) -> ConstrainedDatabase:
    """Build the instance-equivalent ``P♭`` for an insertion.

    The ``Add`` atoms become constrained facts appended after the original
    clauses (so original clause numbers are preserved).
    """
    facts = [Clause(atom.atom, atom.constraint, ()) for atom in add_atoms]
    return program.with_clauses_added(facts)


def build_add_set(
    view: MaterializedView,
    inserted: ConstrainedAtom,
    solver: ConstraintSolver,
    factory: Optional[FreshVariableFactory] = None,
    exclude_existing: bool = True,
) -> Tuple[ConstrainedAtom, ...]:
    """The paper's ``Add`` set for an insertion request.

    ``Add`` describes the instances of the inserted atom that are not already
    instances of the view: the inserted constraint ``ψ`` narrowed by
    ``not(φi & (X̄ = Ȳi))`` for every existing entry ``A(Ȳi) <- φi``.  When
    the result is unsolvable (everything already present) the set is empty.

    With ``exclude_existing=False`` the set is simply ``{A(X̄) <- ψ}``
    (useful for duplicate-semantics experiments where re-insertion should
    create a second derivation).
    """
    factory = factory or FreshVariableFactory(
        {variable.name for variable in inserted.variables()}
        | set(view.all_variable_names())
    )
    if not exclude_existing:
        return (inserted,)
    constraint = inserted.constraint
    for entry in view.entries_for(inserted.predicate):
        positive, negative = negated_atom_constraint(
            inserted.atom, entry.constrained_atom, factory
        )
        if not solver.is_satisfiable(conjoin(constraint, positive)):
            continue
        constraint = conjoin(constraint, negative)
    constraint = simplify(constraint, solver)
    if not solver.is_satisfiable(constraint):
        return ()
    return (ConstrainedAtom(inserted.atom, constraint),)
