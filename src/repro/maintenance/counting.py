"""The counting algorithm baseline (Gupta, Katiyar, Mumick 1992).

The paper positions StDel against the *counting* approach to view
maintenance: keep, for every (ground) derived fact, the number of its
derivations; a base-fact deletion decrements the counts of facts derived
through it, and facts whose count reaches zero disappear.

Two properties of the counting approach matter for the reproduction:

* on **non-recursive** ground views it works and is cheap -- implemented
  here so the benchmarks can compare it fairly against StDel, and
* on **recursive** views the derivation counts can be infinite (a fact can
  have unboundedly many derivations through a cycle); the paper's Section 6
  cites this as the reason StDel "improves upon the counting method (that
  can lead to infinite counts)".  This implementation detects the situation
  and raises :class:`~repro.errors.CountingDivergenceError` instead of
  looping, which is the behaviour the ablation benchmark demonstrates.

The baseline deliberately supports only *ground* views (every entry denotes
exactly one tuple): that is the setting of the original counting algorithm,
and the paper's point is precisely that supports generalize where counts do
not (non-ground constrained atoms, recursion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.constraints.solver import ConstraintSolver
from repro.datalog.atoms import ConstrainedAtom
from repro.datalog.fixpoint import FixpointEngine, FixpointOptions
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.errors import CountingDivergenceError, FixpointDivergenceError, MaintenanceError
from repro.maintenance.requests import MaintenanceStats

#: A ground fact: (predicate, value tuple).
GroundFact = Tuple[str, Tuple[object, ...]]


@dataclass
class CountingView:
    """A ground materialized view with derivation counts."""

    counts: Dict[GroundFact, int] = field(default_factory=dict)

    def facts(self) -> Tuple[GroundFact, ...]:
        """Facts with a strictly positive count."""
        return tuple(sorted(
            (fact for fact, count in self.counts.items() if count > 0),
            key=repr,
        ))

    def count_of(self, fact: GroundFact) -> int:
        """Derivation count of one fact (0 when absent)."""
        return self.counts.get(fact, 0)

    def __len__(self) -> int:
        return sum(1 for count in self.counts.values() if count > 0)


@dataclass
class CountingDeletionResult:
    """Outcome of a counting-based deletion."""

    view: CountingView
    removed_facts: Tuple[GroundFact, ...]
    stats: MaintenanceStats = field(default_factory=MaintenanceStats)


class CountingMaintenance:
    """Counting-based maintenance for ground, non-recursive views."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        max_iterations: int = 200,
    ) -> None:
        self._program = program
        self._solver = solver or ConstraintSolver()
        self._max_iterations = max_iterations

    # ------------------------------------------------------------------
    # Materialization with counts
    # ------------------------------------------------------------------
    def materialize(self) -> CountingView:
        """Compute the ground view with one count per derivation.

        Raises :class:`CountingDivergenceError` when the program is recursive
        over cyclic data (infinitely many derivations).
        """
        if self._program.is_recursive():
            # A recursive program *may* still have finitely many derivations
            # (acyclic data); try the duplicate-semantics fixpoint and treat
            # divergence as the infinite-count situation.
            try:
                view = self._duplicate_fixpoint()
            except FixpointDivergenceError as exc:
                raise CountingDivergenceError(
                    "counting maintenance cannot handle this recursive view: "
                    "derivation counts are unbounded"
                ) from exc
        else:
            view = self._duplicate_fixpoint()
        return self._to_counts(view)

    def _duplicate_fixpoint(self) -> MaterializedView:
        engine = FixpointEngine(
            self._program,
            self._solver,
            FixpointOptions(max_iterations=self._max_iterations),
        )
        return engine.compute()

    def _to_counts(self, view: MaterializedView) -> CountingView:
        counts: Dict[GroundFact, int] = {}
        for entry in view:
            bound = entry.constrained_atom.bound_tuple()
            if bound is None:
                raise MaintenanceError(
                    "counting maintenance only supports ground views; entry "
                    f"{entry.constrained_atom} is not ground"
                )
            fact = (entry.predicate, bound)
            counts[fact] = counts.get(fact, 0) + 1
        return CountingView(counts)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(
        self, view: CountingView, atom: ConstrainedAtom
    ) -> CountingDeletionResult:
        """Delete a ground fact and propagate count decrements.

        The decrements are obtained by re-deriving, with the duplicate
        semantics fixpoint, the derivations of the *rewritten* program and
        differencing the counts -- the standard counting-maintenance outcome
        without its delta-rule machinery (adequate for measuring the shape of
        the comparison; the per-fact work is proportional to the number of
        affected derivations, as in the original algorithm).
        """
        stats = MaintenanceStats()
        bound = atom.bound_tuple()
        if bound is None:
            raise MaintenanceError(
                "counting deletion requires a ground atom, got "
                f"{atom}"
            )
        from repro.maintenance.declarative import deletion_rewrite

        rewritten = deletion_rewrite(self._program, (atom,))
        engine = FixpointEngine(
            rewritten,
            self._solver,
            FixpointOptions(max_iterations=self._max_iterations),
        )
        try:
            new_counts = self._to_counts(engine.compute())
        except FixpointDivergenceError as exc:
            raise CountingDivergenceError(
                "counting deletion diverged on a recursive view"
            ) from exc
        removed = tuple(
            fact for fact in view.counts if new_counts.count_of(fact) == 0
        )
        stats.removed_entries = len(removed)
        stats.seed_atoms = 1
        return CountingDeletionResult(new_counts, removed, stats)
