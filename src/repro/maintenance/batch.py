"""Applying whole streams of view updates.

The paper treats one update at a time; real maintenance workloads apply
*streams* of deletions and insertions.  :class:`ViewMaintainer` keeps the
bookkeeping straight across a stream:

* it tracks the *effective program* -- the original constrained database
  composed with the deletion/insertion rewrites applied so far -- which is
  what gives a sequence of updates a single declarative semantics
  (``T_P_effective ↑ ω``), and what Extended DRed's rederivation step needs
  (see :mod:`repro.maintenance.delete_dred`);
* it lets the caller choose the deletion algorithm per stream;
* it accumulates the per-update statistics so benchmarks and operators can
  see where time went.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.constraints.solver import ConstraintSolver
from repro.datalog.fixpoint import compute_tp_fixpoint
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.errors import MaintenanceError
from repro.maintenance.baselines import full_recompute
from repro.maintenance.declarative import build_add_set, deletion_rewrite, insertion_rewrite
from repro.maintenance.delete_dred import DRedOptions, ExtendedDRed
from repro.maintenance.delete_stdel import StDelOptions, StraightDelete
from repro.maintenance.insert import ConstrainedAtomInsertion, InsertionOptions
from repro.maintenance.requests import (
    DeletionRequest,
    InsertionRequest,
    MaintenanceStats,
)

UpdateRequest = Union[DeletionRequest, InsertionRequest]


@dataclass
class AppliedUpdate:
    """Record of one update applied by the maintainer."""

    request: UpdateRequest
    algorithm: str
    stats: MaintenanceStats
    view_size_after: int


@dataclass
class BatchReport:
    """Summary of a whole update stream."""

    applied: Tuple[AppliedUpdate, ...] = ()

    @property
    def deletions(self) -> int:
        """Number of deletion requests applied."""
        return sum(1 for item in self.applied if isinstance(item.request, DeletionRequest))

    @property
    def insertions(self) -> int:
        """Number of insertion requests applied."""
        return sum(1 for item in self.applied if isinstance(item.request, InsertionRequest))

    def total_solver_calls(self) -> int:
        """Solver invocations across the whole stream."""
        return sum(item.stats.solver_calls for item in self.applied)

    def total_replaced_entries(self) -> int:
        """View entries whose constraint was replaced in place."""
        return sum(item.stats.replaced_entries for item in self.applied)


class ViewMaintainer:
    """Maintains one materialized view across a stream of updates."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        view: Optional[MaterializedView] = None,
        deletion_algorithm: str = "stdel",
        stdel_options: Optional[StDelOptions] = None,
        dred_options: Optional[DRedOptions] = None,
        insertion_options: Optional[InsertionOptions] = None,
    ) -> None:
        if deletion_algorithm not in ("stdel", "dred"):
            raise MaintenanceError(
                f"unknown deletion algorithm {deletion_algorithm!r}; use 'stdel' or 'dred'"
            )
        self._original_program = program
        self._effective_program = program
        self._solver = solver or ConstraintSolver()
        self._view = view if view is not None else compute_tp_fixpoint(program, self._solver)
        self._deletion_algorithm = deletion_algorithm
        self._stdel_options = stdel_options or StDelOptions()
        self._dred_options = dred_options or DRedOptions()
        self._insertion_options = insertion_options or InsertionOptions()
        self._applied: List[AppliedUpdate] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def view(self) -> MaterializedView:
        """The current materialized view."""
        return self._view

    @property
    def original_program(self) -> ConstrainedDatabase:
        """The constrained database the view was first materialized from."""
        return self._original_program

    @property
    def effective_program(self) -> ConstrainedDatabase:
        """The original program composed with every rewrite applied so far.

        Its least model is the declarative semantics of the maintained view;
        :meth:`verify` recomputes it to cross-check the incremental state.
        """
        return self._effective_program

    @property
    def deletion_algorithm(self) -> str:
        """Which deletion algorithm the maintainer uses (``stdel``/``dred``)."""
        return self._deletion_algorithm

    def report(self) -> BatchReport:
        """Summary of everything applied so far."""
        return BatchReport(tuple(self._applied))

    # ------------------------------------------------------------------
    # Applying updates
    # ------------------------------------------------------------------
    def apply(self, request: UpdateRequest) -> AppliedUpdate:
        """Apply a single deletion or insertion request."""
        if isinstance(request, DeletionRequest):
            record = self._apply_deletion(request)
        elif isinstance(request, InsertionRequest):
            record = self._apply_insertion(request)
        else:
            raise MaintenanceError(f"unknown update request: {request!r}")
        self._applied.append(record)
        return record

    def apply_all(self, requests: Iterable[UpdateRequest]) -> BatchReport:
        """Apply a whole stream in order and return the summary."""
        for request in requests:
            self.apply(request)
        return self.report()

    def _apply_deletion(self, request: DeletionRequest) -> AppliedUpdate:
        if self._deletion_algorithm == "stdel":
            result = StraightDelete(
                self._effective_program, self._solver, self._stdel_options
            ).delete(self._view, request)
        else:
            result = ExtendedDRed(
                self._effective_program, self._solver, self._dred_options
            ).delete(self._view, request)
        self._view = result.view
        self._effective_program = deletion_rewrite(
            self._effective_program, (request.atom,)
        )
        return AppliedUpdate(
            request, self._deletion_algorithm, result.stats, len(self._view)
        )

    def _apply_insertion(self, request: InsertionRequest) -> AppliedUpdate:
        add_atoms = build_add_set(
            self._view,
            request.atom,
            self._solver,
            exclude_existing=self._insertion_options.exclude_existing,
        )
        result = ConstrainedAtomInsertion(
            self._effective_program, self._solver, self._insertion_options
        ).insert(self._view, request)
        self._view = result.view
        self._effective_program = insertion_rewrite(self._effective_program, add_atoms)
        return AppliedUpdate(request, "insert", result.stats, len(self._view))

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, universe: Optional[Sequence[object]] = None) -> bool:
        """Cross-check the incremental view against the effective program.

        Recomputes ``T_P_effective ↑ ω`` from scratch and compares instance
        sets -- the executable form of Theorems 1-3 for the whole stream.
        Expensive; intended for tests and audits, not for the hot path.
        """
        expected = full_recompute(self._effective_program, self._solver).view
        return self._view.instances(self._solver, universe) == expected.instances(
            self._solver, universe
        )
