"""Applying whole streams of view updates.

The paper treats one update at a time; real maintenance workloads apply
*streams* of deletions and insertions.  :class:`ViewMaintainer` keeps the
bookkeeping straight across a stream:

* it tracks the *effective program* -- the original constrained database
  composed with the deletion/insertion rewrites applied so far -- which is
  what gives a sequence of updates a single declarative semantics
  (``T_P_effective ↑ ω``), and what Extended DRed's rederivation step needs
  (see :mod:`repro.maintenance.delete_dred`);
* it lets the caller choose the deletion algorithm per stream;
* it accumulates the per-update statistics so benchmarks and operators can
  see where time went.

Since the update-stream subsystem landed, the maintainer is a thin
per-request façade over :class:`repro.stream.scheduler.StreamScheduler`:
:meth:`ViewMaintainer.apply` runs a batch of one, and
:meth:`ViewMaintainer.apply_batched` hands a whole request sequence to the
scheduler's coalesced path (net-effect computation, one maintenance pass
per algorithm, stratified units).  One behavioural consequence: StDel
deletions now run against the *original* program rather than the effective
one -- StDel never rederives, so the deletion rewrites are irrelevant to it
(its documented advantage), and the differential harness pins the
original-program run key-identical to the recomputed rewrite semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.constraints.solver import ConstraintSolver
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.errors import MaintenanceError
from repro.maintenance.delete_dred import DRedOptions
from repro.maintenance.delete_stdel import StDelOptions
from repro.maintenance.insert import InsertionOptions
from repro.maintenance.requests import (
    DeletionRequest,
    InsertionRequest,
    MaintenanceStats,
)

UpdateRequest = Union[DeletionRequest, InsertionRequest]


@dataclass
class AppliedUpdate:
    """Record of one update applied by the maintainer."""

    request: UpdateRequest
    algorithm: str
    stats: MaintenanceStats
    view_size_after: int


@dataclass
class BatchReport:
    """Summary of a whole update stream."""

    applied: Tuple[AppliedUpdate, ...] = ()

    @property
    def deletions(self) -> int:
        """Number of deletion requests applied."""
        return sum(1 for item in self.applied if isinstance(item.request, DeletionRequest))

    @property
    def insertions(self) -> int:
        """Number of insertion requests applied."""
        return sum(1 for item in self.applied if isinstance(item.request, InsertionRequest))

    def total_solver_calls(self) -> int:
        """Solver invocations across the whole stream."""
        return sum(item.stats.solver_calls for item in self.applied)

    def total_replaced_entries(self) -> int:
        """View entries whose constraint was replaced in place."""
        return sum(item.stats.replaced_entries for item in self.applied)


class ViewMaintainer:
    """Maintains one materialized view across a stream of updates."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        view: Optional[MaterializedView] = None,
        deletion_algorithm: str = "stdel",
        stdel_options: Optional[StDelOptions] = None,
        dred_options: Optional[DRedOptions] = None,
        insertion_options: Optional[InsertionOptions] = None,
    ) -> None:
        # Imported lazily: repro.stream imports the maintenance algorithm
        # modules, so a module-level import here would be circular when
        # ``repro.stream`` is the first package loaded.
        from repro.stream.scheduler import StreamOptions, StreamScheduler

        if deletion_algorithm not in ("stdel", "dred"):
            raise MaintenanceError(
                f"unknown deletion algorithm {deletion_algorithm!r}; use 'stdel' or 'dred'"
            )
        self._deletion_algorithm = deletion_algorithm
        self._scheduler = StreamScheduler(
            program,
            solver,
            view=view,
            options=StreamOptions(
                deletion_algorithm=deletion_algorithm,
                coalesce=False,
                max_workers=1,
                # Per-request application keeps the algorithms' historical
                # fail-fast contract; the batched path retries per unit.
                max_unit_attempts=1,
                stdel=stdel_options or StDelOptions(),
                dred=dred_options or DRedOptions(),
                insertion=insertion_options or InsertionOptions(),
            ),
        )
        self._applied: List[AppliedUpdate] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def view(self) -> MaterializedView:
        """The current materialized view."""
        return self._scheduler.view

    @property
    def original_program(self) -> ConstrainedDatabase:
        """The constrained database the view was first materialized from."""
        return self._scheduler.program

    @property
    def effective_program(self) -> ConstrainedDatabase:
        """The original program composed with every rewrite applied so far.

        Its least model is the declarative semantics of the maintained view;
        :meth:`verify` recomputes it to cross-check the incremental state.
        """
        return self._scheduler.effective_program

    @property
    def deletion_algorithm(self) -> str:
        """Which deletion algorithm the maintainer uses (``stdel``/``dred``)."""
        return self._deletion_algorithm

    @property
    def scheduler(self):
        """The underlying :class:`~repro.stream.scheduler.StreamScheduler`."""
        return self._scheduler

    def report(self) -> BatchReport:
        """Summary of everything applied so far."""
        return BatchReport(tuple(self._applied))

    # ------------------------------------------------------------------
    # Applying updates
    # ------------------------------------------------------------------
    def apply(self, request: UpdateRequest) -> AppliedUpdate:
        """Apply a single deletion or insertion request."""
        if isinstance(request, DeletionRequest):
            algorithm = self._deletion_algorithm
        elif isinstance(request, InsertionRequest):
            algorithm = "insert"
        else:
            raise MaintenanceError(f"unknown update request: {request!r}")
        result = self._scheduler.apply_batch((request,), coalesce=False)
        failed = result.failed_units
        if failed:
            raise MaintenanceError(
                f"update failed: {request} ({failed[0].error})"
            )
        stats = result.stats.totals()
        record = AppliedUpdate(request, algorithm, stats, len(result.view))
        self._applied.append(record)
        return record

    def apply_all(self, requests: Iterable[UpdateRequest]) -> BatchReport:
        """Apply a whole stream in order, one request at a time."""
        for request in requests:
            self.apply(request)
        return self.report()

    def apply_batched(self, requests: Sequence[UpdateRequest]):
        """Apply a whole stream as one coalesced batch.

        Routes through the stream scheduler's net-effect path: duplicates
        dedup, insert-then-delete cancels, and each independent stratum gets
        one batched maintenance pass per algorithm.  Returns the scheduler's
        :class:`~repro.stream.scheduler.BatchResult`; the per-request
        :meth:`report` is not extended (the batch has no per-request cost
        attribution -- that is the point).
        """
        result = self._scheduler.apply_batch(tuple(requests), coalesce=True)
        failed = result.failed_units
        if failed:
            raise MaintenanceError(
                f"batched update failed: {failed[0].description} ({failed[0].error})"
            )
        return result

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, universe: Optional[Sequence[object]] = None) -> bool:
        """Cross-check the incremental view against the effective program.

        Recomputes ``T_P_effective ↑ ω`` from scratch and compares instance
        sets -- the executable form of Theorems 1-3 for the whole stream.
        Expensive; intended for tests and audits, not for the hot path.
        """
        return self._scheduler.verify(universe)
