"""Building blocks shared by the maintenance algorithms.

Both deletion algorithms start from the same ``Del`` set and the insertion
algorithm from the analogous ``Add`` set; the ``P_OUT`` / ``P_ADD``
unfoldings share the same clause-application step.  Factoring these out here
keeps the three algorithm modules close to the paper's pseudo-code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constraints.ast import (
    Constraint,
    FALSE,
    NegatedConjunction,
    conjoin,
    tuple_equalities,
)
from repro.constraints.intern import EVENTS
from repro.constraints.projection import eliminate_variables
from repro.constraints.simplify import simplify
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import FreshVariableFactory
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView, ViewEntry
from repro.maintenance.requests import MaintenanceStats


def make_fresh_factory(
    program: ConstrainedDatabase,
    view: MaterializedView,
    extra: Iterable[ConstrainedAtom] = (),
    predicates: Optional[Iterable[str]] = None,
) -> FreshVariableFactory:
    """A fresh-variable factory avoiding every name used so far.

    With *predicates* only those predicates' entries reserve names.  Sound
    whenever the caller's pass combines fresh-renamed constraints only with
    entries of that predicate set (e.g. a deletion pass scoped to its read
    closure): entry constraints are scoped per entry, so a collision with a
    never-read entry cannot capture anything.
    """
    reserved = set(view.all_variable_names(predicates))
    for clause in program:
        reserved.update(variable.name for variable in clause.variables())
    for atom in extra:
        reserved.update(variable.name for variable in atom.variables())
    return FreshVariableFactory(reserved)


def negated_atom_constraint(
    target_atom: Atom,
    source: ConstrainedAtom,
    factory: FreshVariableFactory,
    renamed_cache: Optional[Dict[int, ConstrainedAtom]] = None,
) -> Tuple[Constraint, Constraint]:
    """Express "is (not) an instance of *source*" over *target_atom*'s terms.

    Returns a pair ``(positive, negative)``: the constraint stating that the
    target atom's arguments satisfy the source atom's constraint (with the
    binding equalities ``X̄ = Ȳ`` of the paper), and its negation
    ``not(... )``.  The source is renamed apart first, and the negation is
    always built as an explicit ``not(...)`` node so that the renamed
    variables are quantified *inside* it ("no instantiation of the source
    atom matches the target tuple"), per the library's quantification
    convention.

    *renamed_cache* (keyed by ``id(source)``) lets a caller that matches the
    same source atom against many view entries rename it apart only once:
    the fresh names never collide with any entry's variables, and each use
    scopes them independently (inside its own ``not(...)`` / conjunction).
    """
    renamed = None if renamed_cache is None else renamed_cache.get(id(source))
    if renamed is None:
        renamed, _ = source.renamed_apart(factory)
        if renamed_cache is not None:
            renamed_cache[id(source)] = renamed
    equalities = tuple_equalities(renamed.atom.args, target_atom.args)
    positive = conjoin(renamed.constraint, equalities)
    negative = NegatedConjunction(tuple(positive.conjuncts()))
    return positive, negative


def restrict_entry_to_instances(
    entry: ViewEntry,
    request_atom: ConstrainedAtom,
    solver: ConstraintSolver,
    factory: FreshVariableFactory,
    stats: Optional[MaintenanceStats] = None,
    renamed_cache: Optional[Dict[int, ConstrainedAtom]] = None,
) -> Optional[ConstrainedAtom]:
    """The ``Del`` construction for one view entry.

    For a view entry ``A(Ȳ) <- φ`` and a deletion request ``A(X̄) <- δ``,
    return ``A(Ȳ) <- φ & (Ȳ = X̄) & δ`` when that conjunction is solvable
    (those are the instances of the entry that are actually being deleted),
    otherwise ``None``.
    """
    if entry.atom.signature != request_atom.atom.signature:
        return None
    if solver.quick_reject(
        entry.atom.args, entry.constraint,
        request_atom.atom.args, request_atom.constraint,
    ):
        if stats is not None:
            stats.quick_rejects += 1
        return None
    positive, _ = negated_atom_constraint(
        entry.atom, request_atom, factory, renamed_cache
    )
    combined = conjoin(entry.constraint, positive)
    if solver.identical_instances(
        entry.atom.args, entry.constraint,
        request_atom.atom.args, request_atom.constraint,
    ):
        # The request is the entry itself (pointer-identical interned
        # constraint): the overlap is the whole entry, and the combined
        # constraint ``φ & φ' & (Ȳ = Ȳ')`` is solvable iff ``φ`` is (give
        # the renamed copy the same witness).  Checking ``φ`` instead is a
        # per-node ``_sat`` slot read in the common case, so the counted
        # solver call is skipped; the returned atom is built through the
        # same ``simplify(combined)`` path so differential keys match.
        if not solver.is_satisfiable(entry.constraint):
            return None
    else:
        if stats is not None:
            stats.solver_calls += 1
        if not solver.is_satisfiable(combined):
            return None
    simplified = simplify(combined, solver)
    return ConstrainedAtom(entry.atom, simplified)


def build_del_set(
    view: MaterializedView,
    request_atom: ConstrainedAtom,
    solver: ConstraintSolver,
    factory: FreshVariableFactory,
    stats: Optional[MaintenanceStats] = None,
) -> Tuple[Tuple[ViewEntry, ConstrainedAtom], ...]:
    """The paper's ``Del`` set, paired with the view entries it came from.

    Only constrained atoms that are actually in the existing materialized
    view are deleted (the paper stresses this); entries of other predicates
    or with empty overlap are skipped.
    """
    result: List[Tuple[ViewEntry, ConstrainedAtom]] = []
    renamed_cache: Dict[int, ConstrainedAtom] = {}
    for entry in view.entries_for(request_atom.predicate):
        restricted = restrict_entry_to_instances(
            entry, request_atom, solver, factory, stats, renamed_cache
        )
        if restricted is not None:
            result.append((entry, restricted))
    if stats is not None:
        stats.seed_atoms += len(result)
    return tuple(result)


def narrowed_external_entries(
    view: MaterializedView,
    deleted: Sequence[ConstrainedAtom],
    solver: ConstraintSolver,
    factory: FreshVariableFactory,
    stats: Optional[MaintenanceStats] = None,
    drop_redundant_comparisons: bool = True,
) -> Tuple[ViewEntry, ...]:
    """Externally inserted entries, narrowed by a deletion's ``Del`` atoms.

    Entries whose support is the bare reserved clause number 0 were inserted
    by Algorithm 3, not produced by any program clause, so a from-scratch
    recomputation of the rewritten program would silently lose them.  The
    declarative reading treats them as extra EDB: they survive a deletion as
    ``φ & not(δ & bindings)`` -- the same narrowing the deletion rewrite
    applies to program clauses -- and seed the recomputation fixpoint.
    Entries whose narrowed constraint is unsolvable are dropped (they would
    be purged by ``T_P`` anyway).
    """
    from repro.maintenance.insert import EXTERNAL_CLAUSE_NUMBER
    from repro.datalog.support import Support

    external_support = Support(EXTERNAL_CLAUSE_NUMBER)
    survivors: List[ViewEntry] = []
    renamed_cache: Dict[int, ConstrainedAtom] = {}
    for entry in view.find_all_by_support(external_support):
        narrowed = subtract_instances(
            entry,
            deleted,
            solver,
            factory,
            stats,
            renamed_cache,
            drop_redundant_comparisons=drop_redundant_comparisons,
        )
        # Counted like every other satisfiability check: this sweep used to
        # run off the books, understating the recompute baseline's cost.
        if stats is not None:
            stats.solver_calls += 1
        if solver.is_satisfiable(narrowed.constraint):
            survivors.append(narrowed)
    return tuple(survivors)


def apply_clause_with_premises(
    clause: Clause,
    premises: Sequence[ConstrainedAtom],
    solver: ConstraintSolver,
    factory: FreshVariableFactory,
    check_solvable: bool = True,
    stats: Optional[MaintenanceStats] = None,
    renamed_cache: Optional[Dict[Tuple[int, int], ConstrainedAtom]] = None,
    drop_redundant_comparisons: bool = True,
) -> Optional[ConstrainedAtom]:
    """One clause application used by the P_OUT / P_ADD unfoldings.

    Combines the clause constraint with the (renamed-apart) premise
    constraints and the binding equalities, projects auxiliary variables away
    and optionally checks solvability.  Returns the derived constrained atom
    for the clause head, or ``None`` when the combination is unsolvable.

    *renamed_cache* (keyed by ``(position, id(premise))``) lets the caller
    share renamed premise copies across the many combinations of one
    unfolding round; each combination stays mutually renamed apart because
    distinct premises (and distinct positions) get distinct fresh names.
    """
    if stats is not None:
        stats.clause_applications += 1
    parts: List[Constraint] = [clause.constraint]
    for position, (body_atom, premise) in enumerate(zip(clause.body, premises)):
        renamed = None
        cache_key = (position, id(premise))
        if renamed_cache is not None:
            renamed = renamed_cache.get(cache_key)
        if renamed is None:
            renamed, _ = premise.renamed_apart(factory)
            if renamed_cache is not None:
                renamed_cache[cache_key] = renamed
        parts.append(renamed.constraint)
        parts.append(tuple_equalities(renamed.atom.args, body_atom.args))
    constraint = eliminate_variables(conjoin(*parts), clause.head.variables())
    # Match the fixpoint engine's normalization (by default it drops
    # comparisons entailed by the rest), so unfolded atoms carry the same
    # canonical constraints one clause application under T_P would produce.
    # Callers running against a differently-configured fixpoint pass its
    # flag through, keeping the two sides key-comparable either way.
    constraint = simplify(
        constraint, solver, drop_redundant_comparisons=drop_redundant_comparisons
    )
    if check_solvable:
        if stats is not None:
            stats.solver_calls += 1
        if not solver.is_satisfiable(constraint):
            return None
    return ConstrainedAtom(clause.head, constraint)


def subtract_instances(
    entry: ViewEntry,
    removed: Iterable[ConstrainedAtom],
    solver: ConstraintSolver,
    factory: FreshVariableFactory,
    stats: Optional[MaintenanceStats] = None,
    renamed_cache: Optional[Dict[int, ConstrainedAtom]] = None,
    drop_redundant_comparisons: bool = True,
) -> ViewEntry:
    """Conjoin ``not(ψ & bindings)`` onto an entry for each removed atom.

    This is the over-estimation step of the Extended DRed algorithm: the
    entry's constraint is narrowed so its instances no longer include any
    instance of the removed atoms.  Pass one *renamed_cache* for a whole
    batch of entries so each removed atom is renamed apart only once.

    Most (entry, removed atom) pairs do not overlap at all; the quick-reject
    profile comparison (bound tuples, intervals, domain hooks) skips those
    without a solver call.  The profile is built from the entry's *original*
    constraint -- a weaker summary than the evolving narrowed constraint,
    hence still sound -- so it is computed once per entry, not once per pair.
    """
    constraint = entry.constraint
    subtracted = False
    for atom in removed:
        if atom.atom.signature != entry.atom.signature:
            continue
        if solver.identical_instances(
            entry.atom.args, entry.constraint, atom.atom.args, atom.constraint
        ):
            # The removed atom *is* this entry (interned constraints are
            # pointer-identical): every instance is subtracted.  Any prior
            # narrowing in this loop only shrank the instance set, so the
            # result collapses to FALSE outright -- no overlap check, no
            # negation build, and the remaining removed atoms are moot.
            EVENTS.identity_subtractions += 1
            constraint = FALSE
            subtracted = True
            break
        if solver.quick_reject(
            entry.atom.args, entry.constraint, atom.atom.args, atom.constraint
        ):
            # Definitely no overlap: same outcome as the unsat branch below.
            if stats is not None:
                stats.quick_rejects += 1
            continue
        positive, negative = negated_atom_constraint(
            entry.atom, atom, factory, renamed_cache
        )
        if stats is not None:
            stats.solver_calls += 1
        if not solver.is_satisfiable(conjoin(constraint, positive)):
            # No overlap: nothing to subtract for this removed atom.
            continue
        constraint = conjoin(constraint, negative)
        subtracted = True
    if not subtracted:
        # Untouched entries keep their exact constraint: re-canonicalizing
        # them here would change keys StDel (which only rewrites affected
        # entries) leaves alone.
        return entry
    # Drop redundant comparisons like the fixpoint engine (and StDel's
    # replacement step) do: a two-sided entry narrowed by an overlapping
    # deletion (e.g. ``X <= 50`` minus ``X >= 46``) otherwise keeps the
    # now-entailed bound and diverges from the other algorithms by key().
    constraint = simplify(
        constraint, solver, drop_redundant_comparisons=drop_redundant_comparisons
    )
    if constraint == entry.constraint:
        return entry
    return entry.with_constraint(constraint)
