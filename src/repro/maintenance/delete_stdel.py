"""Algorithm 2: the Straight Delete (StDel) algorithm.

StDel (paper Section 3.1.2) deletes a constrained atom from a materialized
mediated view **without any rederivation step** and without duplicate
elimination, which is the paper's main algorithmic improvement over the
(extended) DRed algorithm.  It relies on every view entry being indexed by
the *support* of its derivation:

1. every entry is initially marked;
2. entries of the deleted predicate that overlap the deletion request have
   their constraint narrowed by ``& (X̄ = Ȳ) & not(δ)``, and the pair
   ``(deleted instances, support)`` is recorded in ``P_OUT``;
3. repeatedly, any marked entry whose derivation used (as a *direct*
   premise) a support recorded in ``P_OUT`` gets its constraint rebuilt from
   its clause and premises with ``not(ψj)`` substituted for the deleted
   premise's contribution, and a new ``P_OUT`` pair is recorded for it;
4. finally, entries whose constraint became unsolvable are removed.

Theorem 2: the result has the same instances as the deletion rewrite
``T_{P'} ↑ ω(∅)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.constraints.ast import Constraint, conjoin, negate, tuple_equalities
from repro.constraints.projection import eliminate_variables
from repro.constraints.simplify import simplify
from repro.constraints.solver import ConstraintSolver
from repro.datalog.atoms import ConstrainedAtom
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.support import Support
from repro.datalog.view import MaterializedView, ViewEntry
from repro.errors import MaintenanceError
from repro.maintenance.common import make_fresh_factory, negated_atom_constraint
from repro.maintenance.requests import DeletionRequest, MaintenanceStats
from repro.obs.metrics import NULL_METRICS


@dataclass(frozen=True)
class POutPair:
    """One ``(constrained atom, support)`` pair recorded in ``P_OUT``.

    The constrained atom describes the instances that the entry carrying
    *support* lost; parents whose derivation used that support subtract these
    instances in turn.
    """

    atom: ConstrainedAtom
    support: Support

    def __str__(self) -> str:
        return f"({self.atom}, {self.support})"


@dataclass
class StDelResult:
    """Outcome of one Straight Delete run."""

    view: MaterializedView
    p_out: Tuple[POutPair, ...]
    replaced: Tuple[ViewEntry, ...]
    removed: Tuple[ViewEntry, ...]
    stats: MaintenanceStats = field(default_factory=MaintenanceStats)


@dataclass(frozen=True)
class StDelOptions:
    """Tunable behaviour of the StDel implementation."""

    #: Remove entries with unsolvable constraints at the end (step 4).  Turn
    #: off to inspect the intermediate state shown in the paper's Example 6.
    purge_unsolvable: bool = True
    #: Simplify replaced constraints (the paper's "simplification of the
    #: constraints"); turning this off is the ablation measured in
    #: ``benchmarks/bench_simplification.py``.
    simplify_constraints: bool = True
    #: Also drop comparison conjuncts entailed by the rest, matching the
    #: fixpoint engine's normalization -- required for the rebuilt parent
    #: constraints to stay *key*-identical to ``T_{P'} ↑ ω``'s on clauses
    #: whose premises bound a variable on both sides (two-sided interval
    #: joins make one premise's bound redundant next to the other's).
    drop_redundant_comparisons: bool = True
    #: Defensive bound on propagation rounds.
    max_rounds: int = 10_000


DEFAULT_STDEL_OPTIONS = StDelOptions()


class StraightDelete:
    """The Straight Delete algorithm (paper Algorithm 2)."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        options: StDelOptions = DEFAULT_STDEL_OPTIONS,
        metrics=None,
    ) -> None:
        self._program = program
        self._solver = solver or ConstraintSolver()
        self._options = options
        self._metrics = metrics if metrics is not None else NULL_METRICS

    def delete(
        self, view: MaterializedView, request: DeletionRequest
    ) -> StDelResult:
        """Delete the requested constrained atom's instances from *view*.

        The input view is not modified; the updated view is returned inside
        the result object.
        """
        return self.delete_many(view, (request,))

    def delete_many(
        self,
        view: MaterializedView,
        requests: Sequence[DeletionRequest],
        purge_predicates: Optional[Sequence[str]] = None,
    ) -> StDelResult:
        """Delete a whole batch of constrained atoms in one maintenance pass.

        Applying the requests in batch order against a single working view is
        *result-identical* to applying them one at a time (each request's
        step 2/3 sees exactly the view state a sequential run would), but the
        per-request view-proportional costs are paid once per batch:

        * one working-view copy instead of one per request -- and with the
          predicate-sharded store that copy is itself copy-on-write, so the
          batch only ever clones the shards of predicates its steps 2/3/4
          actually rewrite (the request predicates and their upward
          closure), never the untouched rest of the view,
        * one fresh-variable factory and one ``originals`` snapshot, updated
          incrementally with the entries each request's propagation replaced
          instead of being rebuilt from the whole view per request,
        * one step-4 purge scan at the end of the batch instead of one full
          solvability sweep per request.  Deferring the purge is safe: an
          entry narrowed to an unsolvable constraint can never seed a new
          ``P_OUT`` pair (its step-2 overlap and step-3 applicability checks
          are unsatisfiable), so later requests behave exactly as if it had
          already been removed.

        *purge_predicates* further restricts the purge scan to the given
        predicates.  The stream scheduler passes the batch's write closure:
        on an input view with no unsolvable entries (any ``T_P``-maintained
        view) only entries the propagation replaced -- all inside the
        closure -- can need purging, so the scan becomes proportional to the
        propagation cone.  Leave it ``None`` for the paper's full final
        sweep.

        This is the deletion half of the update-stream subsystem's "one
        maintenance pass per algorithm per batch" discipline (see
        :mod:`repro.stream`).
        """
        requests = tuple(requests)
        stats = MaintenanceStats()
        working = view.copy()

        # The batch setup is scoped by the program's static dependency
        # structure, not the view: steps 2/3 only ever rewrite entries in the
        # *write closure* of the request predicates (upward dependency
        # reachability -- the same closure the stream scheduler checks out),
        # and only ever *read* premises of those entries, whose predicates
        # are the body predicates of the closure heads' clauses.  Everything
        # outside that read scope is untouched and unread, so neither the
        # fresh-name reservation nor the ``originals`` snapshot needs to walk
        # it -- the setup cost is proportional to the propagation cone, not
        # the view.
        read_scope = self._read_scope(
            frozenset(request.atom.predicate for request in requests)
        )
        factory = make_fresh_factory(
            self._program,
            working,
            tuple(request.atom for request in requests),
            predicates=read_scope,
        )

        # Snapshot of the original constraints per support: P_OUT pair
        # constraints are always built from pre-replacement premises so they
        # stay free of nested negation unless the input view already had it.
        # Between requests the snapshot is refreshed with the replacements
        # the finished request produced, matching the fresh snapshot a
        # sequential run would take.
        originals: Dict[Support, ConstrainedAtom] = {
            entry.support: entry.constrained_atom
            for predicate in sorted(read_scope)
            for entry in working.entries_for(predicate)
        }

        p_out: List[POutPair] = []
        replaced: List[ViewEntry] = []
        processed: Set[Tuple[Support, int, int]] = set()

        for request in requests:
            seed_start = len(p_out)
            replaced_start = len(replaced)

            # Step 2: narrow directly affected entries, seed P_OUT.
            for entry in list(working.entries_for(request.atom.predicate)):
                if self._solver.quick_reject(
                    entry.atom.args, entry.constraint,
                    request.atom.atom.args, request.atom.constraint,
                ):
                    stats.quick_rejects += 1
                    continue
                positive, negative = negated_atom_constraint(
                    entry.atom, request.atom, factory
                )
                stats.solver_calls += 1
                if not self._solver.is_satisfiable(conjoin(entry.constraint, positive)):
                    continue
                deleted_part = ConstrainedAtom(
                    entry.atom, self._simplify(conjoin(entry.constraint, positive))
                )
                new_constraint = self._simplify(conjoin(entry.constraint, negative))
                new_entry = entry.with_constraint(new_constraint)
                working.replace(entry, new_entry)
                replaced.append(new_entry)
                p_out.append(POutPair(deleted_part, entry.support))
            stats.seed_atoms += len(p_out) - seed_start

            # Step 3: propagate upwards along supports.  Each P_OUT pair
            # probes the child-support index for exactly the parents whose
            # derivation used the pair's support as a direct premise, instead
            # of scanning ``working.entries`` per pair -- the propagation
            # cost becomes proportional to the affected derivations, not the
            # view size.  The ``processed`` dedup set lives outside the whole
            # propagation loop (one membership test per probed parent, keys
            # built once), so a diamond of supports sharing a premise is
            # subtracted exactly once per (parent support, premise position,
            # pair); pair indexes are unique across the batch, so sharing the
            # set across requests changes nothing.
            rounds = 0
            frontier_start = seed_start
            while frontier_start < len(p_out):
                rounds += 1
                if rounds > self._options.max_rounds:
                    raise MaintenanceError(
                        f"StDel propagation exceeded {self._options.max_rounds} rounds"
                    )
                frontier_end = len(p_out)
                for pair_index in range(frontier_start, frontier_end):
                    pair = p_out[pair_index]
                    # What the pre-index implementation would have compared
                    # for this pair: every entry of the working view.
                    stats.bump("stdel_scan_equivalent", len(working))
                    for parent in working.find_parents_of(pair.support):
                        stats.support_probes += 1
                        for child_position, child in enumerate(parent.support.children):
                            if child != pair.support:
                                continue
                            key = (parent.support, child_position, pair_index)
                            if key in processed:
                                continue
                            processed.add(key)
                            # Re-fetch: the parent may already have been
                            # replaced (for a different affected premise) in
                            # this round.
                            current = working.find_by_support(parent.support)
                            if current is None:
                                continue
                            replacement = self._replace_parent(
                                current, child_position, pair, originals, factory, stats
                            )
                            if replacement is None:
                                continue
                            new_entry, deleted_part = replacement
                            working.replace(current, new_entry)
                            replaced.append(new_entry)
                            p_out.append(POutPair(deleted_part, parent.support))
                frontier_start = frontier_end

            # Refresh the originals snapshot with this request's replacements
            # so the next request's step 3 rebuilds parents from the same
            # premise constraints a sequential run would snapshot.
            for entry in replaced[replaced_start:]:
                originals[entry.support] = entry.constrained_atom
        stats.unfolded_atoms = len(p_out) - stats.seed_atoms
        stats.replaced_entries = len(replaced)

        # Step 4: drop entries whose constraint became unsolvable -- once for
        # the whole batch.
        removed: List[ViewEntry] = []
        if self._options.purge_unsolvable:
            if purge_predicates is None:
                candidates = list(working.entries)
            else:
                candidates = [
                    entry
                    for predicate in sorted(set(purge_predicates))
                    for entry in working.entries_for(predicate)
                ]
            for entry in candidates:
                stats.solver_calls += 1
                if not self._solver.is_satisfiable(entry.constraint):
                    working.remove(entry)
                    removed.append(entry)
            stats.removed_entries = len(removed)

        self._metrics.record_maintenance("stdel", stats)
        return StDelResult(working, tuple(p_out), tuple(replaced), tuple(removed), stats)

    # ------------------------------------------------------------------
    # Internal steps
    # ------------------------------------------------------------------
    def _read_scope(self, predicates: FrozenSet[str]) -> FrozenSet[str]:
        """Write closure of *predicates* plus the closure clauses' body
        predicates -- everything a batch over *predicates* can read."""
        edges = self._program.predicate_dependency_edges()
        write_scope = set(predicates)
        frontier = list(predicates)
        while frontier:
            node = frontier.pop()
            for successor in edges.get(node, ()):
                if successor not in write_scope:
                    write_scope.add(successor)
                    frontier.append(successor)
        read_scope = set(write_scope)
        for predicate in write_scope:
            for clause in self._program.clauses_for(predicate):
                read_scope.update(atom.predicate for atom in clause.body)
        return frozenset(read_scope)

    def _replace_parent(
        self,
        entry: ViewEntry,
        child_position: int,
        pair: POutPair,
        originals: Dict[Support, ConstrainedAtom],
        factory,
        stats: MaintenanceStats,
    ) -> Optional[Tuple[ViewEntry, ConstrainedAtom]]:
        """Rebuild a parent entry's constraint with ``not(ψj)`` at one premise.

        Returns ``(new entry, deleted part)`` or ``None`` when the paper's
        applicability condition (c) fails (the deleted premise contributed
        nothing to this derivation, so nothing changes).
        """
        clause = self._clause_for(entry.support)
        if clause is None or len(clause.body) != len(entry.support.children):
            raise MaintenanceError(
                f"support {entry.support} does not match clause "
                f"{entry.support.clause_number} of the program"
            )
        if clause.body[child_position].predicate != pair.atom.predicate:
            # Supports are not unique across externally inserted atoms (all
            # carry the reserved clause number 0), so a parent probed through
            # such a shared child support may have used a *different*
            # external insertion as this premise.  Only an entry of the body
            # atom's predicate can have contributed to the derivation;
            # anything else would subtract the deleted instances from an
            # unrelated predicate's derivations (mirrors the predicate
            # filter in ExtendedDRed._rederivation_seed).
            return None
        # Rename the clause apart so clause-local variables can never collide
        # with variables already occurring in the entry's constraint.
        clause = clause.renamed_apart(factory)

        current_entry = entry
        parts: List[Constraint] = [clause.constraint]
        # (X̄ = Ȳ): tie the entry's atom to the clause head.
        parts.append(tuple_equalities(clause.head.args, current_entry.atom.args))
        parts.append(current_entry.constraint)

        deleted_parts: List[Constraint] = list(parts)
        found_premises = True
        for position, (body_atom, child_support) in enumerate(
            zip(clause.body, entry.support.children)
        ):
            if position == child_position:
                premise = pair.atom
            else:
                premise = originals.get(child_support)
                if premise is None:
                    found_premises = False
                    break
            renamed, _ = premise.renamed_apart(factory)
            binding = tuple_equalities(renamed.atom.args, body_atom.args)
            if position == child_position:
                # The deleted premise: positively in the "deleted part",
                # negated in the replacement constraint.
                deleted_parts.append(renamed.constraint)
                deleted_parts.append(binding)
                parts.append(negate(conjoin(renamed.constraint, binding)))
            else:
                deleted_parts.append(renamed.constraint)
                deleted_parts.append(binding)
                parts.append(renamed.constraint)
                parts.append(binding)
        if not found_premises:
            return None

        head_variables = current_entry.atom.variables()
        deleted_constraint = self._simplify(
            eliminate_variables(conjoin(*deleted_parts), head_variables)
        )
        stats.solver_calls += 1
        if not self._solver.is_satisfiable(deleted_constraint):
            # Condition (c): the combination is unsolvable, nothing to delete.
            return None
        new_constraint = self._simplify(
            eliminate_variables(conjoin(*parts), head_variables)
        )
        new_entry = current_entry.with_constraint(new_constraint)
        deleted_atom = ConstrainedAtom(current_entry.atom, deleted_constraint)
        return new_entry, deleted_atom

    def _clause_for(self, support: Support):
        if not self._program.has_clause(support.clause_number):
            return None
        return self._program.clause(support.clause_number)

    def _simplify(self, constraint: Constraint) -> Constraint:
        if not self._options.simplify_constraints:
            return constraint
        return simplify(
            constraint,
            self._solver,
            drop_redundant_comparisons=self._options.drop_redundant_comparisons,
        )


def delete_with_stdel(
    program: ConstrainedDatabase,
    view: MaterializedView,
    atom: ConstrainedAtom,
    solver: Optional[ConstraintSolver] = None,
    options: StDelOptions = DEFAULT_STDEL_OPTIONS,
) -> StDelResult:
    """Convenience wrapper: run Straight Delete for one deletion request."""
    algorithm = StraightDelete(program, solver, options)
    return algorithm.delete(view, DeletionRequest(atom))
