"""Non-incremental baselines.

The paper's efficiency claims are relative: StDel against Extended DRed,
both against recomputing the materialized view from scratch, and the
``W_P`` approach against re-materialization under ``T_P``.  The baselines
here give the benchmarks their "from scratch" comparison points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.solver import ConstraintSolver
from repro.datalog.atoms import ConstrainedAtom
from repro.datalog.fixpoint import FixpointEngine, FixpointOptions
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.maintenance.declarative import (
    build_add_set,
    deletion_rewrite,
    insertion_rewrite,
)
from repro.maintenance.requests import MaintenanceStats


@dataclass
class RecomputationResult:
    """Outcome of a from-scratch recomputation baseline."""

    view: MaterializedView
    program: ConstrainedDatabase
    stats: MaintenanceStats = field(default_factory=MaintenanceStats)


def full_recompute(
    program: ConstrainedDatabase,
    solver: Optional[ConstraintSolver] = None,
    options: Optional[FixpointOptions] = None,
) -> RecomputationResult:
    """Materialize the view from scratch with ``T_P ↑ ω(∅)``."""
    engine = FixpointEngine(program, solver, options or FixpointOptions())
    view = engine.compute()
    stats = MaintenanceStats()
    stats.rederived_entries = len(view)
    return RecomputationResult(view, program, stats)


def recompute_after_deletion(
    program: ConstrainedDatabase,
    view: MaterializedView,
    atom: ConstrainedAtom,
    solver: Optional[ConstraintSolver] = None,
    options: Optional[FixpointOptions] = None,
) -> RecomputationResult:
    """Deletion baseline: rewrite the program and recompute from scratch.

    This computes the *declarative semantics* of the deletion directly
    (``T_{P'} ↑ ω(∅)``); it is both the correctness yardstick used by the
    tests and the non-incremental cost the incremental algorithms are
    measured against.

    Entries the view acquired through external insertions (Algorithm 3,
    reserved support 0) are not program clauses; they are treated as extra
    EDB -- narrowed by the deletion like any rewritten clause and seeded
    into the recomputation -- so interleaved insert/delete streams stay
    comparable against the incremental algorithms.
    """
    solver = solver or ConstraintSolver()
    # Restrict to instances present in the view, like the incremental
    # algorithms do: deleting something absent must be a no-op.
    from repro.maintenance.common import (
        build_del_set,
        make_fresh_factory,
        narrowed_external_entries,
    )

    factory = make_fresh_factory(program, view, (atom,))
    del_pairs = build_del_set(view, atom, solver, factory)
    del_atoms = tuple(entry_atom for _, entry_atom in del_pairs)
    rewritten = deletion_rewrite(program, del_atoms or (atom,), factory)
    effective = options or FixpointOptions()
    engine = FixpointEngine(rewritten, solver, effective)
    external = narrowed_external_entries(
        view,
        del_atoms or (atom,),
        solver,
        factory,
        drop_redundant_comparisons=effective.drop_redundant_comparisons,
    )
    initial = MaterializedView(external) if external else None
    new_view = engine.compute(initial=initial)
    stats = MaintenanceStats()
    stats.seed_atoms = len(del_atoms)
    stats.rederived_entries = len(new_view)
    return RecomputationResult(new_view, rewritten, stats)


def recompute_after_insertion(
    program: ConstrainedDatabase,
    view: MaterializedView,
    atom: ConstrainedAtom,
    solver: Optional[ConstraintSolver] = None,
    options: Optional[FixpointOptions] = None,
    exclude_existing: bool = True,
) -> RecomputationResult:
    """Insertion baseline: extend the program and recompute from scratch."""
    solver = solver or ConstraintSolver()
    add_atoms = build_add_set(view, atom, solver, exclude_existing=exclude_existing)
    rewritten = insertion_rewrite(program, add_atoms)
    engine = FixpointEngine(rewritten, solver, options or FixpointOptions())
    new_view = engine.compute()
    stats = MaintenanceStats()
    stats.seed_atoms = len(add_atoms)
    stats.rederived_entries = len(new_view)
    return RecomputationResult(new_view, rewritten, stats)
