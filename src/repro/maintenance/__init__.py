"""View-maintenance algorithms (the paper's core contribution).

* :mod:`repro.maintenance.delete_dred` -- Algorithm 1, Extended DRed,
* :mod:`repro.maintenance.delete_stdel` -- Algorithm 2, Straight Delete,
* :mod:`repro.maintenance.insert` -- Algorithm 3, constrained-atom insertion,
* :mod:`repro.maintenance.external` -- Section 4, source changes under
  ``T_P`` vs ``W_P``,
* :mod:`repro.maintenance.declarative` -- the rewrites giving each update its
  declarative semantics (the correctness yardstick),
* :mod:`repro.maintenance.baselines` -- from-scratch recomputation,
* :mod:`repro.maintenance.counting` -- the counting-algorithm baseline.
"""

from repro.maintenance.batch import (
    AppliedUpdate,
    BatchReport,
    ViewMaintainer,
)
from repro.maintenance.baselines import (
    RecomputationResult,
    full_recompute,
    recompute_after_deletion,
    recompute_after_insertion,
)
from repro.maintenance.counting import (
    CountingDeletionResult,
    CountingMaintenance,
    CountingView,
)
from repro.maintenance.declarative import (
    build_add_set,
    deletion_rewrite,
    insertion_rewrite,
)
from repro.maintenance.delete_dred import (
    DEFAULT_DRED_OPTIONS,
    DRedOptions,
    DRedResult,
    ExtendedDRed,
    delete_with_dred,
)
from repro.maintenance.delete_stdel import (
    DEFAULT_STDEL_OPTIONS,
    POutPair,
    StDelOptions,
    StDelResult,
    StraightDelete,
    delete_with_stdel,
)
from repro.maintenance.external import (
    ExternalChangeReport,
    TpExternalMaintenance,
    WpExternalMaintenance,
    collect_function_deltas,
)
from repro.maintenance.insert import (
    ConstrainedAtomInsertion,
    DEFAULT_INSERTION_OPTIONS,
    EXTERNAL_CLAUSE_NUMBER,
    InsertionOptions,
    InsertionResult,
    insert_atom,
)
from repro.maintenance.requests import (
    DeletionRequest,
    InsertionRequest,
    MaintenanceStats,
)

__all__ = [
    "AppliedUpdate",
    "BatchReport",
    "ConstrainedAtomInsertion",
    "CountingDeletionResult",
    "CountingMaintenance",
    "CountingView",
    "DEFAULT_DRED_OPTIONS",
    "DEFAULT_INSERTION_OPTIONS",
    "DEFAULT_STDEL_OPTIONS",
    "DRedOptions",
    "DRedResult",
    "DeletionRequest",
    "EXTERNAL_CLAUSE_NUMBER",
    "ExtendedDRed",
    "ExternalChangeReport",
    "InsertionOptions",
    "InsertionRequest",
    "InsertionResult",
    "MaintenanceStats",
    "POutPair",
    "RecomputationResult",
    "StDelOptions",
    "StDelResult",
    "StraightDelete",
    "TpExternalMaintenance",
    "ViewMaintainer",
    "WpExternalMaintenance",
    "build_add_set",
    "collect_function_deltas",
    "delete_with_dred",
    "delete_with_stdel",
    "deletion_rewrite",
    "full_recompute",
    "insert_atom",
    "insertion_rewrite",
    "recompute_after_deletion",
    "recompute_after_insertion",
]
