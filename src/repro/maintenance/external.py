"""Maintenance under changes to the external sources (paper Section 4).

When an integrated domain changes (a PARADOX table is updated, a face
database gains photographs, ...), the paper contrasts two strategies:

* **T_P maintenance** -- the materialized view was built with the
  solvability check, so a source change can invalidate entries (Example 7)
  or require new ones; the honest way to restore consistency is to
  re-materialize (or propagate the ``ADD`` / ``REM`` deltas of equations
  (6)/(7)).  :class:`TpExternalMaintenance` implements re-materialization
  and exposes the deltas for analysis.

* **W_P maintenance** -- the view is built *without* the solvability check;
  Theorem 4 says its syntactic form never changes when sources change, and
  Corollary 1 says evaluating its constraints at query time always gives the
  instances ``T_P`` would give at that moment.  :class:`WpExternalMaintenance`
  therefore performs **no work at all** on a source change and defers
  everything to :meth:`query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.constraints.solver import ConstraintSolver
from repro.datalog.fixpoint import (
    FixpointOptions,
    WP_OPTIONS,
    compute_tp_fixpoint,
    compute_wp_fixpoint,
)
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.domains.versioned import FunctionDelta, VersionedDomain, add_rem_sets, function_delta
from repro.maintenance.requests import MaintenanceStats


@dataclass
class ExternalChangeReport:
    """What one source change cost under a maintenance strategy."""

    strategy: str
    #: Number of view entries that were recomputed / rebuilt (0 for W_P).
    recomputed_entries: int
    #: Whether the syntactic view changed at all.
    view_changed: bool
    #: The ADD / REM delta sizes, when they were computed for analysis.
    added_facts: int = 0
    removed_facts: int = 0
    stats: MaintenanceStats = field(default_factory=MaintenanceStats)


class TpExternalMaintenance:
    """Maintain a ``T_P``-materialized view across source changes."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: ConstraintSolver,
        options: Optional[FixpointOptions] = None,
    ) -> None:
        self._program = program
        # This class owns a change-notification contract (on_source_changed),
        # so it can safely memoize even DCA-dependent solver results.
        self._solver = solver.with_external_memoization()
        self._options = options or FixpointOptions()
        self._view = compute_tp_fixpoint(program, self._solver, options=self._options)

    @property
    def view(self) -> MaterializedView:
        """The current materialized view."""
        return self._view

    def on_source_changed(
        self, deltas: Sequence[FunctionDelta] = ()
    ) -> ExternalChangeReport:
        """React to a source change by re-materializing the view.

        *deltas* (optional) are reported for analysis; they are not needed to
        restore consistency because the view is recomputed outright, which is
        exactly the cost the paper's ``W_P`` proposal avoids.
        """
        self._solver.invalidate_external_functions()
        added, removed = add_rem_sets(deltas)
        old_entries = {entry.key() for entry in self._view}
        self._view = compute_tp_fixpoint(self._program, self._solver, options=self._options)
        new_entries = {entry.key() for entry in self._view}
        stats = MaintenanceStats()
        stats.rederived_entries = len(self._view)
        return ExternalChangeReport(
            strategy="tp-rematerialize",
            recomputed_entries=len(self._view),
            view_changed=old_entries != new_entries,
            added_facts=len(added),
            removed_facts=len(removed),
            stats=stats,
        )

    def query(
        self, predicate: str, universe: Optional[Iterable[object]] = None
    ) -> FrozenSet[Tuple[object, ...]]:
        """Ground instances of *predicate* according to the current view."""
        return self._view.instances_for(predicate, solver=self._solver, universe=universe)


class WpExternalMaintenance:
    """Maintain a ``W_P``-materialized view across source changes (a no-op)."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: ConstraintSolver,
        options: Optional[FixpointOptions] = None,
    ) -> None:
        self._program = program
        # Same contract as TpExternalMaintenance: memoization of external
        # results is safe because every source change runs through
        # on_source_changed, which invalidates them.
        self._solver = solver.with_external_memoization()
        self._options = options or WP_OPTIONS
        self._view = compute_wp_fixpoint(program, self._solver, options=self._options)

    @property
    def view(self) -> MaterializedView:
        """The (syntactically invariant) materialized view."""
        return self._view

    def on_source_changed(
        self, deltas: Sequence[FunctionDelta] = ()
    ) -> ExternalChangeReport:
        """React to a source change: only stale solver memos are dropped.

        The view itself needs no work at all (Theorem 4); the solver cache
        invalidation keeps query-time evaluation honest about the sources'
        *current* behaviour (Corollary 1).
        """
        self._solver.invalidate_external_functions()
        added, removed = add_rem_sets(deltas)
        return ExternalChangeReport(
            strategy="wp-noop",
            recomputed_entries=0,
            view_changed=False,
            added_facts=len(added),
            removed_facts=len(removed),
        )

    def query(
        self, predicate: str, universe: Optional[Iterable[object]] = None
    ) -> FrozenSet[Tuple[object, ...]]:
        """Ground instances at the *current* time (Corollary 1).

        Constraint solvability (and DCA evaluation) happens here, at query
        time, against whatever the sources currently return.
        """
        return self._view.instances_for(predicate, solver=self._solver, universe=universe)


def collect_function_deltas(
    domain: VersionedDomain,
    calls: Sequence[Tuple[str, Tuple[object, ...]]],
    time_before: int,
    time_after: int,
) -> Tuple[FunctionDelta, ...]:
    """Compute ``f+`` / ``f-`` for a set of recorded calls of one domain."""
    return tuple(
        function_delta(domain, function, args, time_before, time_after)
        for function, args in calls
    )
