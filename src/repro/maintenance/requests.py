"""Update requests against a materialized mediated view.

Section 3 of the paper considers three kinds of updates to a view: addition
of a constrained atom, deletion of a constrained atom, and changes to the
external sources.  The first two are represented here as small request
objects so the algorithms, the baselines and the benchmarks all speak the
same vocabulary; external changes are handled by
:mod:`repro.maintenance.external`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.datalog.atoms import ConstrainedAtom


@dataclass(frozen=True)
class DeletionRequest:
    """Delete the instances of a constrained atom from the view."""

    atom: ConstrainedAtom

    def __str__(self) -> str:
        return f"delete {self.atom}"


@dataclass(frozen=True)
class InsertionRequest:
    """Insert the instances of a constrained atom into the view."""

    atom: ConstrainedAtom

    def __str__(self) -> str:
        return f"insert {self.atom}"


@dataclass
class MaintenanceStats:
    """Operation counters shared by all maintenance algorithms.

    The benchmarks report these alongside wall-clock time so the *shape* of
    the paper's efficiency claims (e.g. "StDel performs no rederivation") is
    visible independently of Python-level constant factors.
    """

    #: Entries of the Del / Add seed set.
    seed_atoms: int = 0
    #: Atoms produced by the P_OUT / P_ADD unfolding.
    unfolded_atoms: int = 0
    #: Entries whose constraint was replaced in place (StDel).
    replaced_entries: int = 0
    #: Entries added during rederivation (Extended DRed step 3) or insertion.
    rederived_entries: int = 0
    #: Entries removed from the view.
    removed_entries: int = 0
    #: Satisfiability checks issued to the constraint solver.
    solver_calls: int = 0
    #: Clause applications attempted (combinations of premises considered).
    clause_applications: int = 0
    #: Premise combinations enumerated by the semi-naive delta joins (both
    #: the P_OUT / P_ADD unfoldings and any embedded fixpoint computation).
    #: Proportional to the delta sizes, not the full view product -- the
    #: benchmarks assert this shape, not just wall-clock.
    derivation_attempts: int = 0
    #: Fixpoint iterations executed by any embedded fixpoint computation.
    fixpoint_iterations: int = 0
    #: Argument-index probes issued by the hash-join enumerations (both the
    #: unfoldings and any embedded fixpoint computation).
    index_probes: int = 0
    #: Solver calls skipped by the quick-reject pre-filter (bound-tuple /
    #: interval-overlap test on canonical forms, see
    #: :meth:`repro.constraints.solver.ConstraintSolver.quick_reject`).
    quick_rejects: int = 0
    #: Parent entries returned by child-support index probes (StDel step 3).
    #: The pre-index implementation compared every view entry against every
    #: ``P_OUT`` pair; the ``stdel_scan_equivalent`` extra counter records
    #: what that scan would have cost, so the benchmarks can show the ratio.
    support_probes: int = 0
    #: Free-form extra counters.
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a free-form counter."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def merge(self, other: "MaintenanceStats") -> None:
        """Fold another stats object into this one (counter-wise addition).

        The stream scheduler applies one coalesced batch as several algorithm
        passes (one deletion pass, one insertion pass, per stratum unit) and
        reports them as a single set of counters; the chained fallbacks of
        ``delete_many`` use it too.
        """
        self.seed_atoms += other.seed_atoms
        self.unfolded_atoms += other.unfolded_atoms
        self.replaced_entries += other.replaced_entries
        self.rederived_entries += other.rederived_entries
        self.removed_entries += other.removed_entries
        self.solver_calls += other.solver_calls
        self.clause_applications += other.clause_applications
        self.derivation_attempts += other.derivation_attempts
        self.fixpoint_iterations += other.fixpoint_iterations
        self.index_probes += other.index_probes
        self.quick_rejects += other.quick_rejects
        self.support_probes += other.support_probes
        for name, amount in other.extra.items():
            self.bump(name, amount)

    def as_dict(self) -> Dict[str, int]:
        """Flatten to a plain dictionary (used by the benchmark reports)."""
        flat = {
            "seed_atoms": self.seed_atoms,
            "unfolded_atoms": self.unfolded_atoms,
            "replaced_entries": self.replaced_entries,
            "rederived_entries": self.rederived_entries,
            "removed_entries": self.removed_entries,
            "solver_calls": self.solver_calls,
            "clause_applications": self.clause_applications,
            "derivation_attempts": self.derivation_attempts,
            "fixpoint_iterations": self.fixpoint_iterations,
            "index_probes": self.index_probes,
            "quick_rejects": self.quick_rejects,
            "support_probes": self.support_probes,
        }
        flat.update(self.extra)
        return flat
