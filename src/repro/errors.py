"""Exception hierarchy shared by every subpackage of :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries.  Subpackages raise the most
specific subclass that applies; none of them ever raise bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class ConstraintError(ReproError):
    """A constraint expression is malformed or used in an unsupported way."""


class TermError(ConstraintError):
    """A term (variable/constant) is malformed, e.g. an invalid variable name."""


class SolverError(ConstraintError):
    """The constraint solver cannot decide a constraint it was handed."""


class EvaluationError(ReproError):
    """A domain call could not be evaluated (bad arguments, missing function)."""


class UnknownDomainError(EvaluationError):
    """A domain-call atom refers to a domain that is not registered."""


class UnknownFunctionError(EvaluationError):
    """A domain-call atom refers to a function its domain does not define."""


class ParseError(ReproError):
    """The rule/constraint text parser rejected its input."""


class ProgramError(ReproError):
    """A constrained database (program) is malformed (e.g. unbound head vars)."""


class WriteScopeError(ProgramError):
    """A view write targeted a predicate outside the active checkout scope.

    Raised by :meth:`~repro.datalog.view.MaterializedView._writable_shard`
    when a maintenance step mutates a predicate its stratum unit never
    declared in its write closure.  Subclasses :class:`ProgramError` so
    pre-existing callers that catch the broader class keep working.
    """


class ShardSanitizerError(ProgramError):
    """The shard-write sanitizer detected an illegal shard mutation.

    Only raised when ``REPRO_SHARD_SANITIZER=1``: mutating a shard that a
    published (shared) view still references, or publishing a unit whose
    result view touched shards outside its declared write closure, both
    corrupt concurrent readers silently -- the sanitizer turns them into
    loud failures naming the offending predicate."""


class FixpointDivergenceError(ReproError):
    """A fixpoint iteration exceeded its configured iteration budget."""

    def __init__(self, iterations: int, message: str = "") -> None:
        detail = message or (
            "fixpoint iteration did not converge within "
            f"{iterations} iterations"
        )
        super().__init__(detail)
        self.iterations = iterations


class MaintenanceError(ReproError):
    """A view-maintenance algorithm was invoked on unsupported input."""


class DuplicateSemanticsError(MaintenanceError):
    """An algorithm that requires a duplicate-free view was given duplicates."""


class CountingDivergenceError(MaintenanceError):
    """The counting baseline detected an infinite derivation count.

    The paper (Section 3.1.2 and Section 6) points out that the counting
    algorithm of Gupta, Katiyar and Mumick can produce infinite counts on
    recursive programs; this exception reproduces that failure mode in a
    controlled way instead of looping forever.
    """


class RelationalError(ReproError):
    """Base class for errors raised by the in-memory relational engine."""


class SchemaError(RelationalError):
    """A row or query does not match the table schema."""


class UnknownTableError(RelationalError):
    """A query referenced a table that does not exist."""


class UnknownColumnError(RelationalError):
    """A query referenced a column that does not exist."""


class PersistError(ReproError):
    """Base class for errors raised by the durability layer (:mod:`repro.persist`)."""


class CodecError(PersistError):
    """A persisted payload is malformed: unknown format version, unknown
    structural tag, truncated or bit-flipped bytes.  Decoders raise this --
    never return a partially-decoded or wrong view."""


class SnapshotIntegrityError(PersistError):
    """A snapshot failed validation at recovery time: a shard file's checksum
    does not match the manifest, or the manifest references a missing file.
    Recovery fails loudly instead of serving a corrupt view."""


class ProgramHashMismatchError(PersistError):
    """The program on disk is not the program the caller opened the data
    directory with (or the analyzer's report digest changed), so replaying
    the WAL through the current pipeline would not reproduce the view."""


class WalError(PersistError):
    """The write-ahead log is corrupt in a way torn-tail recovery cannot
    explain (e.g. non-monotonic transaction ids in decoded records)."""


class RecoveryError(PersistError):
    """Recovery could not produce a scheduler (empty directory without a
    program, unreadable manifest, replay failure)."""


class MediatorError(ReproError):
    """The mediator was configured or queried incorrectly."""


class WorkloadError(ReproError):
    """A synthetic workload generator received invalid parameters."""
