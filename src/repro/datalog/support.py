"""Derivation supports (Section 3.1.2 of the paper).

Each constrained atom in a materialized view built under duplicate semantics
is "indexed" by the *support* of its derivation: the clause number of the
clause that produced it, followed by the supports of the body atoms used,
i.e. ``spt(A) = <Cn(C), spt(B1), ..., spt(Bk)>``.

Lemma 1 of the paper: two constraint atoms with the same support are the same
atom -- supports uniquely identify derivations.  The Straight Delete
algorithm (Algorithm 2) uses supports to find exactly the view entries whose
derivation used a deleted entry, which is what lets it skip DRed's
rederivation step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

from repro.errors import ProgramError


@dataclass(frozen=True)
class Support:
    """A derivation tree recorded as nested clause numbers."""

    clause_number: int
    children: Tuple["Support", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.clause_number, int) or self.clause_number < 0:
            raise ProgramError(
                f"support clause number must be a non-negative int: {self.clause_number!r}"
            )
        object.__setattr__(self, "children", tuple(self.children))
        for child in self.children:
            if not isinstance(child, Support):
                raise ProgramError(f"support child is not a Support: {child!r}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True for supports of base derivations (facts / body-free clauses)."""
        return not self.children

    def depth(self) -> int:
        """Height of the derivation tree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        """Total number of clause applications in the derivation."""
        return 1 + sum(child.size() for child in self.children)

    def clause_numbers(self) -> Tuple[int, ...]:
        """All clause numbers used anywhere in the derivation (pre-order)."""
        numbers = [self.clause_number]
        for child in self.children:
            numbers.extend(child.clause_numbers())
        return tuple(numbers)

    def subtrees(self) -> Iterator["Support"]:
        """Iterate over every subtree, including this one (pre-order)."""
        yield self
        for child in self.children:
            yield from child.subtrees()

    # ------------------------------------------------------------------
    # Queries used by StDel
    # ------------------------------------------------------------------
    def has_direct_child(self, support: "Support") -> bool:
        """True if *support* is one of this derivation's immediate premises."""
        return support in self.children

    def contains(self, support: "Support") -> bool:
        """True if *support* occurs anywhere inside this derivation."""
        return any(subtree == support for subtree in self.subtrees())

    def child_index(self, support: "Support") -> int:
        """Index (0-based) of *support* among the immediate premises.

        Raises ``ValueError`` when not present; StDel uses this to identify
        which body literal the deleted premise corresponds to.
        """
        return self.children.index(support)

    def __str__(self) -> str:
        if not self.children:
            return f"<{self.clause_number}>"
        inner = ", ".join(str(child) for child in self.children)
        return f"<{self.clause_number}, {inner}>"


def leaf(clause_number: int) -> Support:
    """Support of a derivation that used a single body-free clause."""
    return Support(clause_number)


def derived(clause_number: int, premises: Tuple[Support, ...]) -> Support:
    """Support of a derivation by *clause_number* from premise supports."""
    return Support(clause_number, tuple(premises))
