"""The fixpoint operators ``T_P`` (Gabbrielli–Levi) and ``W_P``.

``T_P`` (paper Section 2.3) derives, from an interpretation ``I`` (a set of
constrained atoms), every constrained atom obtainable by one clause
application whose combined constraint is *solvable*.  Iterating from the
empty interpretation yields the non-ground materialized mediated view.

``W_P`` (paper Section 4) is the same operator with the solvability check
removed: derived entries are kept even when their constraint is currently
unsolvable, because solvability may change when external domain functions
change.  Theorem 4: the ``W_P`` view is syntactically invariant under such
changes; Corollary 1: its instances, evaluated at any time point, coincide
with the ``T_P`` view at that time point.

Both operators run under *duplicate semantics*: each derivation produces its
own view entry, indexed by its support.  The engine iterates semi-naively
(each round only considers clause applications using at least one entry that
is new since the previous round), which enumerates every derivation exactly
once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.constraints.ast import Constraint, conjoin, tuple_equalities
from repro.constraints.projection import eliminate_variables
from repro.constraints.simplify import simplify
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import FreshVariableFactory, Variable
from repro.datalog.atoms import ConstrainedAtom
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.support import Support
from repro.datalog.view import MaterializedView, ViewEntry
from repro.errors import FixpointDivergenceError


@dataclass(frozen=True)
class FixpointOptions:
    """Configuration of the fixpoint computation."""

    #: Apply the solvability check of ``T_P``.  ``False`` gives ``W_P``.
    check_solvability: bool = True
    #: Keep one entry per *derivation* (duplicate semantics).  When False,
    #: a derived entry that denotes a ground tuple already denoted by an
    #: existing entry of the same predicate is skipped (set semantics); this
    #: is what makes transitive closure over cyclic data terminate.
    duplicate_semantics: bool = True
    #: Simplify derived constraints (removes the redundancy the paper notes).
    simplify_constraints: bool = True
    #: Also drop comparison conjuncts entailed by the rest when simplifying.
    drop_redundant_comparisons: bool = True
    #: Project away auxiliary (non-head) variables bound by equalities, so
    #: derived entries read like the paper's examples (``A(X) <- X >= 5``
    #: instead of ``A(X) <- X1 >= 5 & X1 = X``).
    project_auxiliary_variables: bool = True
    #: Hard cap on the number of iterations before giving up.
    max_iterations: int = 200
    #: Hard cap on the total number of view entries before giving up.
    max_entries: int = 200_000


DEFAULT_FIXPOINT_OPTIONS = FixpointOptions()

#: Options preset for the ``W_P`` operator of Section 4.
WP_OPTIONS = FixpointOptions(check_solvability=False)


@dataclass
class FixpointStats:
    """Operation counters of one fixpoint computation.

    ``derivation_attempts`` counts premise combinations actually enumerated;
    under semi-naive evaluation it is proportional to the per-round deltas
    (``O(|Δ| · |view|^(k-1))`` per clause of body arity ``k``), not to the
    full ``O(|view|^k)`` Cartesian product a naive round would consider.
    """

    #: Rounds executed until the fixpoint was reached.
    iterations: int = 0
    #: Premise combinations enumerated (clause applications attempted).
    derivation_attempts: int = 0
    #: Entries actually added to the view.
    entries_added: int = 0
    #: Clause evaluations skipped by the body-predicate dependency index
    #: (clause considered in a round times no body predicate had a delta).
    clauses_skipped: int = 0
    #: Per-round delta sizes (number of entries new since the last round).
    round_delta_sizes: List[int] = field(default_factory=list)
    #: Per-round derivation attempts (aligned with ``round_delta_sizes``).
    round_attempts: List[int] = field(default_factory=list)


_T = TypeVar("_T")


def iter_delta_joins(
    old_pools: Sequence[Sequence[_T]],
    delta_pools: Sequence[Sequence[_T]],
    full_pools: Sequence[Sequence[_T]],
) -> Iterator[Tuple[_T, ...]]:
    """Enumerate premise combinations that use at least one delta element.

    The enumeration is partitioned by the *first* body position that takes a
    delta element: positions before it draw from ``old_pools`` (the view
    minus the delta), the position itself draws from ``delta_pools`` and the
    positions after it draw from ``full_pools`` (the whole view).  Every
    combination containing at least one delta element is produced exactly
    once, and no delta-free combination is ever materialized -- this is the
    semi-naive join the naive product-then-filter loop only simulated.

    Passing ``full_pools`` again as ``old_pools`` yields the combinations
    with *exactly one* delta element instead (assuming the delta pools are
    disjoint from the full pools), which is the Extended DRed / P_ADD
    unfolding discipline.
    """
    arity = len(full_pools)
    for position in range(arity):
        delta_pool = delta_pools[position]
        if not delta_pool:
            continue
        prefix = old_pools[:position]
        suffix = full_pools[position + 1:]
        if any(not pool for pool in prefix) or any(not pool for pool in suffix):
            continue
        for chosen in delta_pool:
            for before in itertools.product(*prefix):
                for after in itertools.product(*suffix):
                    yield before + (chosen,) + after


class FixpointEngine:
    """Computes ``T_P ↑ ω`` / ``W_P ↑ ω`` for a constrained database."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        options: FixpointOptions = DEFAULT_FIXPOINT_OPTIONS,
    ) -> None:
        self._program = program
        self._solver = solver or ConstraintSolver()
        self._options = options
        self._stats = FixpointStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def program(self) -> ConstrainedDatabase:
        """The constrained database being evaluated."""
        return self._program

    @property
    def solver(self) -> ConstraintSolver:
        """The constraint solver used for solvability checks."""
        return self._solver

    @property
    def options(self) -> FixpointOptions:
        """The options the engine was configured with."""
        return self._options

    @property
    def stats(self) -> FixpointStats:
        """Counters of the most recent :meth:`compute` / :meth:`step` call."""
        return self._stats

    def compute(
        self, initial: Optional[MaterializedView] = None
    ) -> MaterializedView:
        """Compute the least fixpoint, optionally seeded with *initial*.

        With no seed this is ``T_P ↑ ω(∅)`` (or ``W_P ↑ ω(∅)``).  With a seed
        it is the inflationary iteration ``T_P ↑ ω(M')`` used by the
        rederivation step of the Extended DRed algorithm.
        """
        self._stats = FixpointStats()
        view = MaterializedView(initial.entries if initial is not None else ())
        factory = self._make_factory(view)

        # Round 0: body-free clauses, plus the seed entries, form the delta.
        # Seed entries count as delta (they can fire clauses) but not as
        # *added*: entries_added only counts entries this computation put in.
        delta: List[ViewEntry] = list(view.entries)
        for clause in self._program:
            if clause.is_fact_clause:
                entry = self._derive_fact(clause)
                if entry is not None and view.add(entry):
                    delta.append(entry)
                    self._stats.entries_added += 1

        iteration = 0
        while delta:
            iteration += 1
            if iteration > self._options.max_iterations:
                raise FixpointDivergenceError(self._options.max_iterations)
            self._stats.iterations = iteration
            self._stats.round_delta_sizes.append(len(delta))
            attempts_before = self._stats.derivation_attempts
            produced: List[ViewEntry] = []
            for clause, pools_for in self._round_plan(view, delta):
                produced.extend(
                    self._derive_from_clause(clause, pools_for, factory)
                )
            self._stats.round_attempts.append(
                self._stats.derivation_attempts - attempts_before
            )
            new_delta: List[ViewEntry] = []
            for entry in produced:
                if self._should_skip(entry, view):
                    continue
                if view.add(entry):
                    new_delta.append(entry)
                    self._stats.entries_added += 1
            if len(view) > self._options.max_entries:
                raise FixpointDivergenceError(
                    iteration,
                    f"fixpoint exceeded {self._options.max_entries} view entries",
                )
            delta = new_delta
        return view

    def step(self, interpretation: MaterializedView) -> MaterializedView:
        """One application of the operator: ``T_P(I)`` (not inflationary).

        Returns exactly the entries derivable by one clause application from
        *interpretation*, mirroring the paper's definition of the operator
        (the result does not include ``I`` itself).
        """
        self._stats = FixpointStats()
        factory = self._make_factory(interpretation)
        result = MaterializedView()
        for clause in self._program:
            if clause.is_fact_clause:
                entry = self._derive_fact(clause)
                if entry is not None:
                    result.add(entry)
        # Every entry of the interpretation counts as "delta": one operator
        # application enumerates the full product, which the delta-join does
        # too once the old pools are empty.
        for clause, pools_for in self._round_plan(
            interpretation, list(interpretation), everything_is_delta=True
        ):
            for entry in self._derive_from_clause(clause, pools_for, factory):
                result.add(entry)
        return result

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def _make_factory(self, view: MaterializedView) -> FreshVariableFactory:
        reserved = set(view.all_variable_names())
        for clause in self._program:
            reserved.update(variable.name for variable in clause.variables())
        return FreshVariableFactory(reserved)

    def _derive_fact(self, clause: Clause) -> Optional[ViewEntry]:
        constraint = self._finalize_constraint(
            clause.constraint, clause.head.variables()
        )
        if constraint is None:
            return None
        return ViewEntry(clause.head, constraint, Support(clause.number or 0))

    def _round_plan(
        self,
        view: MaterializedView,
        delta: Sequence[ViewEntry],
        everything_is_delta: bool = False,
    ) -> Iterator[Tuple[Clause, Callable[[str], Tuple[tuple, tuple, tuple]]]]:
        """Yield the clauses a round must evaluate, with their join pools.

        Only clauses whose body references a predicate that gained a delta
        entry can derive anything new; the program's body-predicate index
        selects exactly those, in clause-number order.  The returned
        ``pools_for`` callable resolves a body predicate to its
        ``(full, old, delta)`` entry pools, computed once per round.
        """
        delta_by_predicate: Dict[str, List[ViewEntry]] = {}
        for entry in delta:
            delta_by_predicate.setdefault(entry.predicate, []).append(entry)
        delta_keys = (
            None if everything_is_delta else {entry.key() for entry in delta}
        )

        pools: Dict[str, Tuple[tuple, tuple, tuple]] = {}

        def pools_for(predicate: str) -> Tuple[tuple, tuple, tuple]:
            cached = pools.get(predicate)
            if cached is None:
                full = view.entries_for(predicate)
                fresh = tuple(delta_by_predicate.get(predicate, ()))
                if not fresh:
                    old = full
                elif everything_is_delta:
                    old = ()
                else:
                    old = tuple(
                        entry for entry in full if entry.key() not in delta_keys
                    )
                cached = pools[predicate] = (full, old, fresh)
            return cached

        selected: Dict[int, Clause] = {}
        for predicate in delta_by_predicate:
            for clause in self._program.clauses_with_body_predicate(predicate):
                selected[clause.number or 0] = clause
        self._stats.clauses_skipped += len(self._program.rule_clauses) - len(selected)
        for number in sorted(selected):
            yield selected[number], pools_for

    def _derive_from_clause(
        self,
        clause: Clause,
        pools_for: Callable[[str], Tuple[tuple, tuple, tuple]],
        factory: FreshVariableFactory,
    ) -> Iterable[ViewEntry]:
        full_pools: List[Tuple[ViewEntry, ...]] = []
        old_pools: List[Tuple[ViewEntry, ...]] = []
        delta_pools: List[Tuple[ViewEntry, ...]] = []
        for body_atom in clause.body:
            full, old, fresh = pools_for(body_atom.predicate)
            if not full:
                return
            full_pools.append(full)
            old_pools.append(old)
            delta_pools.append(fresh)

        # Rename each pool entry apart once per clause evaluation instead of
        # once per combination: fresh names are globally unique either way,
        # and a premise reused across combinations (or across positions) can
        # safely share its renamed copy -- each derived entry is independent.
        renamed_cache: Dict[Tuple[int, int], ConstrainedAtom] = {}
        for combination in iter_delta_joins(old_pools, delta_pools, full_pools):
            self._stats.derivation_attempts += 1
            entry = self._combine(clause, combination, factory, renamed_cache)
            if entry is not None:
                yield entry

    def _combine(
        self,
        clause: Clause,
        premises: Sequence[ViewEntry],
        factory: FreshVariableFactory,
        renamed_cache: Optional[Dict[Tuple[int, int], ConstrainedAtom]] = None,
    ) -> Optional[ViewEntry]:
        parts: List[Constraint] = [clause.constraint]
        supports: List[Support] = []
        for position, (body_atom, premise) in enumerate(zip(clause.body, premises)):
            renamed = None
            cache_key = (position, id(premise))
            if renamed_cache is not None:
                renamed = renamed_cache.get(cache_key)
            if renamed is None:
                renamed, _ = premise.constrained_atom.renamed_apart(factory)
                if renamed_cache is not None:
                    renamed_cache[cache_key] = renamed
            parts.append(renamed.constraint)
            parts.append(tuple_equalities(renamed.atom.args, body_atom.args))
            supports.append(premise.support)
        constraint = self._finalize_constraint(
            conjoin(*parts), clause.head.variables()
        )
        if constraint is None:
            return None
        support = Support(clause.number or 0, tuple(supports))
        return ViewEntry(clause.head, constraint, support)

    def _finalize_constraint(
        self, constraint: Constraint, head_variables: Iterable[Variable]
    ) -> Optional[Constraint]:
        """Project, simplify and (for ``T_P``) solvability-check a constraint."""
        if self._options.project_auxiliary_variables:
            constraint = eliminate_variables(constraint, head_variables)
        if self._options.simplify_constraints:
            constraint = simplify(
                constraint,
                self._solver,
                drop_redundant_comparisons=self._options.drop_redundant_comparisons,
            )
        if self._options.check_solvability and not self._solver.is_satisfiable(constraint):
            return None
        return constraint

    def _should_skip(self, entry: ViewEntry, view: MaterializedView) -> bool:
        """Set-semantics subsumption used when duplicate semantics is off."""
        if self._options.duplicate_semantics:
            return False
        bound = entry.constrained_atom.bound_tuple()
        if bound is None:
            return False
        for existing in view.entries_for(entry.predicate):
            if existing.constrained_atom.bound_tuple() == bound:
                return True
        return False


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------


def compute_tp_fixpoint(
    program: ConstrainedDatabase,
    solver: Optional[ConstraintSolver] = None,
    initial: Optional[MaterializedView] = None,
    options: Optional[FixpointOptions] = None,
) -> MaterializedView:
    """Compute ``T_P ↑ ω`` (the paper's materialized mediated view)."""
    effective = options or DEFAULT_FIXPOINT_OPTIONS
    if not effective.check_solvability:
        effective = replace(effective, check_solvability=True)
    return FixpointEngine(program, solver, effective).compute(initial)


def compute_wp_fixpoint(
    program: ConstrainedDatabase,
    solver: Optional[ConstraintSolver] = None,
    initial: Optional[MaterializedView] = None,
    options: Optional[FixpointOptions] = None,
) -> MaterializedView:
    """Compute ``W_P ↑ ω`` (no solvability check; paper Section 4)."""
    effective = options or DEFAULT_FIXPOINT_OPTIONS
    if effective.check_solvability:
        effective = replace(effective, check_solvability=False)
    return FixpointEngine(program, solver, effective).compute(initial)
