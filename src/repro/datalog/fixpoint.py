"""The fixpoint operators ``T_P`` (Gabbrielli–Levi) and ``W_P``.

``T_P`` (paper Section 2.3) derives, from an interpretation ``I`` (a set of
constrained atoms), every constrained atom obtainable by one clause
application whose combined constraint is *solvable*.  Iterating from the
empty interpretation yields the non-ground materialized mediated view.

``W_P`` (paper Section 4) is the same operator with the solvability check
removed: derived entries are kept even when their constraint is currently
unsolvable, because solvability may change when external domain functions
change.  Theorem 4: the ``W_P`` view is syntactically invariant under such
changes; Corollary 1: its instances, evaluated at any time point, coincide
with the ``T_P`` view at that time point.

Both operators run under *duplicate semantics*: each derivation produces its
own view entry, indexed by its support.  The engine iterates semi-naively
(each round only considers clause applications using at least one entry that
is new since the previous round), which enumerates every derivation exactly
once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.constraints.ast import Constraint, conjoin, tuple_equalities
from repro.constraints.projection import eliminate_variables
from repro.constraints.simplify import simplify
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import Constant, FreshVariableFactory, Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.support import Support
from repro.constraints.solver import (
    Interval as _Interval,
    intersect_intervals as _intersect_intervals,
    interval_excludes as _interval_excludes,
)
from repro.datalog.view import (
    IntervalQuery,
    MaterializedView,
    UNBOUND,
    ViewEntry,
    argument_intervals,
    bound_argument_values,
    evaluator_token,
    interval_query_from,
)
from repro.errors import FixpointDivergenceError


@dataclass(frozen=True)
class FixpointOptions:
    """Configuration of the fixpoint computation."""

    #: Apply the solvability check of ``T_P``.  ``False`` gives ``W_P``.
    check_solvability: bool = True
    #: Keep one entry per *derivation* (duplicate semantics).  When False,
    #: a derived entry that denotes a ground tuple already denoted by an
    #: existing entry of the same predicate is skipped (set semantics); this
    #: is what makes transitive closure over cyclic data terminate.
    duplicate_semantics: bool = True
    #: Simplify derived constraints (removes the redundancy the paper notes).
    simplify_constraints: bool = True
    #: Also drop comparison conjuncts entailed by the rest when simplifying.
    drop_redundant_comparisons: bool = True
    #: Project away auxiliary (non-head) variables bound by equalities, so
    #: derived entries read like the paper's examples (``A(X) <- X >= 5``
    #: instead of ``A(X) <- X1 >= 5 & X1 = X``).
    project_auxiliary_variables: bool = True
    #: Probe the view's argument index with the bindings accumulated so far
    #: instead of scanning the full per-position pools (hash join).  Only
    #: applied under ``T_P`` (``check_solvability=True``): the index prunes
    #: combinations whose binding equalities are unsatisfiable, and ``W_P``
    #: must keep exactly those entries (Theorem 4).
    hash_join_index: bool = True
    #: Consult the argument index's interval range postings: positions whose
    #: entries are interval-constrained (not pinned to a constant) are probed
    #: by containment/overlap instead of falling back to the unbound bucket,
    #: and join bindings carry intervals alongside pinned values.  Only
    #: effective when ``hash_join_index`` is on; like it, never applied under
    #: ``W_P`` (the postings are then never even populated).
    range_postings: bool = True
    #: Statically-inferred (predicate, position) pairs that can actually
    #: carry a non-degenerate interval (see
    #: :func:`repro.analysis.signatures.infer_interval_positions`).  When
    #: set, pinned-value probes against positions *not* in the table skip the
    #: range-postings path entirely -- the exact-value index already answers
    #: them, so maintaining/consulting interval postings there is pure
    #: overhead.  ``None`` (no analysis available) keeps every position on
    #: the range-aware path; overlap (:class:`IntervalQuery`) probes always
    #: stay range-aware regardless.
    range_eligible: Optional[FrozenSet[Tuple[str, int]]] = None
    #: Hard cap on the number of iterations before giving up.
    max_iterations: int = 200
    #: Hard cap on the total number of view entries before giving up.
    max_entries: int = 200_000


DEFAULT_FIXPOINT_OPTIONS = FixpointOptions()

#: Options preset for the ``W_P`` operator of Section 4.
WP_OPTIONS = FixpointOptions(check_solvability=False)


@dataclass
class FixpointStats:
    """Operation counters of one fixpoint computation.

    ``derivation_attempts`` counts premise combinations actually enumerated;
    under semi-naive evaluation it is proportional to the per-round deltas
    (``O(|Δ| · |view|^(k-1))`` per clause of body arity ``k``), not to the
    full ``O(|view|^k)`` Cartesian product a naive round would consider.
    """

    #: Rounds executed until the fixpoint was reached.
    iterations: int = 0
    #: Premise combinations enumerated (clause applications attempted).
    derivation_attempts: int = 0
    #: Entries actually added to the view.
    entries_added: int = 0
    #: Clause evaluations skipped by the body-predicate dependency index
    #: (clause considered in a round times no body predicate had a delta).
    clauses_skipped: int = 0
    #: Argument-index probes issued by the hash-join enumeration.
    index_probes: int = 0
    #: Per-round delta sizes (number of entries new since the last round).
    round_delta_sizes: List[int] = field(default_factory=list)
    #: Per-round derivation attempts (aligned with ``round_delta_sizes``).
    round_attempts: List[int] = field(default_factory=list)

    def merge_into(self, stats) -> None:
        """Fold this computation's counters into a ``MaintenanceStats``.

        The maintenance algorithms embed fixpoint computations (DRed's
        rederivation, batched recomputation baselines) and report the engine
        counters under their own stats object; this is the single place that
        mapping lives.
        """
        stats.fixpoint_iterations += self.iterations
        stats.derivation_attempts += self.derivation_attempts
        stats.index_probes += self.index_probes


_T = TypeVar("_T")


def iter_delta_joins(
    old_pools: Sequence[Sequence[_T]],
    delta_pools: Sequence[Sequence[_T]],
    full_pools: Sequence[Sequence[_T]],
) -> Iterator[Tuple[_T, ...]]:
    """Enumerate premise combinations that use at least one delta element.

    The enumeration is partitioned by the *first* body position that takes a
    delta element: positions before it draw from ``old_pools`` (the view
    minus the delta), the position itself draws from ``delta_pools`` and the
    positions after it draw from ``full_pools`` (the whole view).  Every
    combination containing at least one delta element is produced exactly
    once, and no delta-free combination is ever materialized -- this is the
    semi-naive join the naive product-then-filter loop only simulated.

    Passing ``full_pools`` again as ``old_pools`` yields the combinations
    with *exactly one* delta element instead (assuming the delta pools are
    disjoint from the full pools), which is the Extended DRed / P_ADD
    unfolding discipline.
    """
    arity = len(full_pools)
    for position in range(arity):
        delta_pool = delta_pools[position]
        if not delta_pool:
            continue
        prefix = old_pools[:position]
        suffix = full_pools[position + 1:]
        if any(not pool for pool in prefix) or any(not pool for pool in suffix):
            continue
        for chosen in delta_pool:
            for before in itertools.product(*prefix):
                for after in itertools.product(*suffix):
                    yield before + (chosen,) + after


def _values_compatible(left: object, right: object) -> bool:
    """Conservative equality: False only when the values definitely differ.

    Mirrors the solver's value equality (Python ``==``, which already treats
    ``3 == 3.0``); anything odd (raising ``__eq__``, non-bool result) counts
    as compatible so the index never prunes a satisfiable combination.
    """
    try:
        return bool(left == right)
    except Exception:
        return True


def _extend_bindings(
    bindings: Dict[Variable, object],
    body_atom: Atom,
    values: Sequence[object],
    intervals: Optional[Sequence[Optional[_Interval]]] = None,
) -> Optional[Dict[Variable, object]]:
    """Fold one premise's pinned argument values into the binding map.

    Returns ``None`` when a pinned value clashes with an existing binding or
    a constant argument -- exactly the combinations whose binding equalities
    the solver would find unsatisfiable.

    With *intervals* (the premise's per-position numeric bounds, from
    :func:`repro.datalog.view.argument_intervals`), positions the premise
    does not pin to a value contribute an *interval* binding instead:
    intervals intersect (an empty intersection prunes the combination), a
    later pinned value refines an interval binding (a value outside it
    prunes), and constants are checked for containment.  All the pruned
    combinations are exactly those whose binding equalities plus ordering
    conjuncts are unsatisfiable, so this stays ``T_P``-only, like the rest
    of the indexed enumeration.
    """
    updated = bindings
    copied = False
    for index, (arg, value) in enumerate(zip(body_atom.args, values)):
        if value is UNBOUND:
            interval = intervals[index] if intervals is not None else None
            if interval is None:
                continue
            if isinstance(arg, Constant):
                if _interval_excludes(interval, arg.value):
                    return None
                continue
            existing = updated.get(arg, UNBOUND)
            if existing is UNBOUND:
                if not copied:
                    updated = dict(updated)
                    copied = True
                updated[arg] = interval
            elif isinstance(existing, _Interval):
                merged = _intersect_intervals(existing, interval)
                if merged.is_empty():
                    return None
                if not copied:
                    updated = dict(updated)
                    copied = True
                updated[arg] = merged
            elif _interval_excludes(interval, existing):
                return None
            continue
        if isinstance(arg, Constant):
            if not _values_compatible(arg.value, value):
                return None
            continue
        existing = updated.get(arg, UNBOUND)
        if existing is UNBOUND:
            if not copied:
                updated = dict(updated)
                copied = True
            updated[arg] = value
        elif isinstance(existing, _Interval):
            if _interval_excludes(existing, value):
                return None
            if not copied:
                updated = dict(updated)
                copied = True
            updated[arg] = value
        elif not _values_compatible(existing, value):
            return None
    return updated


def iter_indexed_delta_joins(
    body_atoms: Sequence[Atom],
    old_pools: Sequence[Sequence[_T]],
    delta_pools: Sequence[Sequence[_T]],
    full_pools: Sequence[Sequence[_T]],
    probe_old: Callable[[Atom, int, object], Sequence[_T]],
    probe_full: Callable[[Atom, int, object], Sequence[_T]],
    bound_values: Optional[Callable[[_T], Sequence[object]]] = None,
    bound_intervals: Optional[
        Callable[[_T], Sequence[Optional[_Interval]]]
    ] = None,
) -> Iterator[Tuple[_T, ...]]:
    """Hash-join variant of :func:`iter_delta_joins`.

    Enumerates the same partitions (first delta position draws from the
    delta, earlier positions from the old pools, later ones from the full
    pools) but visits the delta position *first* so its pinned argument
    values become bindings, then resolves every remaining position through
    ``probe_old`` / ``probe_full`` -- an argument-index lookup returning only
    entries that can carry the accumulated binding -- falling back to the
    positional pool when no argument of the position is bound yet.

    With *bound_intervals* (range postings enabled), positions a premise
    bounds numerically without pinning contribute interval bindings, and a
    position whose first informative argument carries only an interval is
    resolved with an :class:`~repro.datalog.view.IntervalQuery` probe
    (overlap instead of containment) -- interval-constrained workloads then
    skip the unbound-bucket fallback that made them effectively positional.

    The yielded set is the subset of :func:`iter_delta_joins`'s output whose
    binding equalities are not trivially unsatisfiable, so it is only valid
    for ``T_P``-style evaluation (solvability-checked derivations).  Each
    combination is yielded with its premises in body order.
    """
    arity = len(full_pools)
    if bound_values is None:
        bound_values = _default_bound_values
    values_cache: Dict[int, Sequence[object]] = {}
    intervals_cache: Dict[int, Sequence[Optional[_Interval]]] = {}

    def values_of(item: _T) -> Sequence[object]:
        cached = values_cache.get(id(item))
        if cached is None:
            cached = values_cache[id(item)] = bound_values(item)
        return cached

    def intervals_of(item: _T) -> Optional[Sequence[Optional[_Interval]]]:
        if bound_intervals is None:
            return None
        cached = intervals_cache.get(id(item))
        if cached is None:
            cached = intervals_cache[id(item)] = bound_intervals(item)
        return cached

    def candidates(
        position: int, use_old: bool, bindings: Dict[Variable, object]
    ) -> Sequence[_T]:
        body_atom = body_atoms[position]
        interval_query: Optional[Tuple[int, _Interval]] = None
        for arg_index, arg in enumerate(body_atom.args):
            if isinstance(arg, Constant):
                value = arg.value
            elif isinstance(arg, Variable) and arg in bindings:
                bound = bindings[arg]
                if isinstance(bound, _Interval):
                    if interval_query is None:
                        interval_query = (arg_index, bound)
                    continue
                value = bound
            else:
                continue
            probe = probe_old if use_old else probe_full
            return probe(body_atom, arg_index, value)
        if interval_query is not None:
            arg_index, interval = interval_query
            probe = probe_old if use_old else probe_full
            return probe(body_atom, arg_index, interval_query_from(interval))
        return old_pools[position] if use_old else full_pools[position]

    for delta_position in range(arity):
        if not delta_pools[delta_position]:
            continue
        if any(not old_pools[p] for p in range(delta_position)):
            continue
        if any(not full_pools[p] for p in range(delta_position + 1, arity)):
            continue
        # Visit the delta position first so its bindings prune the rest;
        # remaining positions go in body order.
        order = [delta_position] + [p for p in range(arity) if p != delta_position]
        chosen: List[Optional[_T]] = [None] * arity

        def recurse(depth: int, bindings: Dict[Variable, object]) -> Iterator[Tuple[_T, ...]]:
            if depth == arity:
                yield tuple(chosen)  # type: ignore[arg-type]
                return
            position = order[depth]
            if position == delta_position:
                pool: Sequence[_T] = delta_pools[position]
            else:
                pool = candidates(position, position < delta_position, bindings)
            for item in pool:
                extended = _extend_bindings(
                    bindings,
                    body_atoms[position],
                    values_of(item),
                    intervals_of(item),
                )
                if extended is None:
                    continue
                chosen[position] = item
                yield from recurse(depth + 1, extended)

        yield from recurse(0, {})


def _default_bound_values(item: object) -> Sequence[object]:
    getter = getattr(item, "bound_args", None)
    if getter is not None:
        return getter()
    return bound_argument_values(item.atom.args, item.constraint)  # type: ignore[attr-defined]


def make_interval_getter(
    evaluator: Optional[object],
) -> Callable[[object], Sequence[Optional[_Interval]]]:
    """Per-item interval getter for :func:`iter_indexed_delta_joins`.

    Resolves :class:`~repro.datalog.view.ViewEntry` items through their
    cached ``arg_intervals``; bare constrained atoms (the P_OUT / P_ADD
    frontiers) are summarized on the fly.
    """
    token = evaluator_token(evaluator)

    def getter(item: object) -> Sequence[Optional[_Interval]]:
        method = getattr(item, "arg_intervals", None)
        if method is not None:
            return method(evaluator, token)
        return argument_intervals(item.atom.args, item.constraint, evaluator)  # type: ignore[attr-defined]

    return getter


def make_view_probes(
    view: MaterializedView,
    exclude_keys: Optional[set] = None,
    delta_by_predicate: Optional[Dict[str, list]] = None,
    old_is_empty: bool = False,
    on_probe: Optional[Callable[[], None]] = None,
    range_postings: bool = False,
    evaluator: Optional[object] = None,
    range_eligible: Optional[FrozenSet[Tuple[str, int]]] = None,
) -> Tuple[Callable, Callable]:
    """Build the ``(probe_old, probe_full)`` pair for indexed delta joins.

    ``probe_full`` resolves a body atom + binding against *view*'s argument
    index; ``probe_old`` additionally drops the entries in *exclude_keys*
    (the round's delta / frontier) so the old pools stay delta-free --
    skipping the filter for predicates *delta_by_predicate* marks as having
    no delta (there old == full).  ``old_is_empty`` models one-shot operator
    application, where every entry is delta and the old pools are empty.
    This is the single implementation shared by the fixpoint engine, the
    P_OUT unfolding and the P_ADD unfolding.

    With ``range_postings=True`` probes go through the view's range-aware
    :meth:`~repro.datalog.view.MaterializedView.probe_range` (consulting
    *evaluator*'s ``index_interval`` hooks for DCA-bounded positions) and
    accept :class:`~repro.datalog.view.IntervalQuery` overlap queries.
    *range_eligible* (the analyzer's interval-position table) routes
    pinned-value probes of statically interval-free positions straight to
    the exact-value index: ``probe`` returns bound matches, the unbound
    bucket AND every interval-posted entry unfiltered, so skipping the
    range machinery on such positions is unconditionally a superset --
    only overlap queries must stay on the range-aware path.
    """

    token = evaluator_token(evaluator) if range_postings else None

    def probe_full(body_atom: Atom, arg_index: int, value: object):
        if on_probe is not None:
            on_probe()
        if range_postings:
            if (
                range_eligible is not None
                and not isinstance(value, IntervalQuery)
                and (body_atom.predicate, arg_index) not in range_eligible
            ):
                return view.probe(body_atom.predicate, arg_index, value)
            return view.probe_range(
                body_atom.predicate, arg_index, value, evaluator, token
            )
        if isinstance(value, IntervalQuery):
            # Defensive: a range-unaware probe cannot answer an overlap
            # query with a superset; fall back to the positional pool.
            return view.entries_for(body_atom.predicate)
        return view.probe(body_atom.predicate, arg_index, value)

    if old_is_empty:

        def probe_old(body_atom: Atom, arg_index: int, value: object):
            return ()

    elif not exclude_keys:
        probe_old = probe_full
    else:

        def probe_old(body_atom: Atom, arg_index: int, value: object):
            result = probe_full(body_atom, arg_index, value)
            if (
                delta_by_predicate is not None
                and not delta_by_predicate.get(body_atom.predicate)
            ):
                return result
            return tuple(
                entry for entry in result if entry.key() not in exclude_keys
            )

    return probe_old, probe_full


class FixpointEngine:
    """Computes ``T_P ↑ ω`` / ``W_P ↑ ω`` for a constrained database."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        options: FixpointOptions = DEFAULT_FIXPOINT_OPTIONS,
    ) -> None:
        self._program = program
        self._solver = solver or ConstraintSolver()
        self._options = options
        self._stats = FixpointStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def program(self) -> ConstrainedDatabase:
        """The constrained database being evaluated."""
        return self._program

    @property
    def solver(self) -> ConstraintSolver:
        """The constraint solver used for solvability checks."""
        return self._solver

    @property
    def options(self) -> FixpointOptions:
        """The options the engine was configured with."""
        return self._options

    @property
    def stats(self) -> FixpointStats:
        """Counters of the most recent :meth:`compute` / :meth:`step` call."""
        return self._stats

    def compute(
        self,
        initial: Optional[MaterializedView] = None,
        initial_delta: Optional[Sequence[ViewEntry]] = None,
    ) -> MaterializedView:
        """Compute the least fixpoint, optionally seeded with *initial*.

        With no seed this is ``T_P ↑ ω(∅)`` (or ``W_P ↑ ω(∅)``).  With a seed
        it is the inflationary iteration ``T_P ↑ ω(M')`` used by the
        rederivation step of the Extended DRed algorithm.

        *initial_delta*, when given, restricts the round-0 delta to those
        seed entries (they must be members of *initial*; others are ignored).
        Entries outside the delta are treated as already-stable: no clause
        application drawing **all** premises from them is enumerated.  The
        caller asserts that such applications cannot derive anything missing
        from *initial* -- the delta-aware rederivation of Extended DRed
        passes the over-deleted entries plus their direct premises, which is
        exactly the set whose derivations the over-deletion disturbed.
        """
        self._stats = FixpointStats()
        # Copy-on-write: the computation shares the seed's per-predicate
        # shards and only clones the shards its derivations actually touch,
        # instead of re-indexing the whole seed view entry by entry.
        view = initial.copy() if initial is not None else MaterializedView()
        factory = self._make_factory(view)

        # Round 0: body-free clauses, plus the seed entries, form the delta.
        # Seed entries count as delta (they can fire clauses) but not as
        # *added*: entries_added only counts entries this computation put in.
        delta: List[ViewEntry] = []
        if initial_delta is None:
            delta.extend(view.entries)
        else:
            seen_keys = set()
            for entry in initial_delta:
                key = entry.key()
                if key in seen_keys or entry not in view:
                    continue
                seen_keys.add(key)
                delta.append(entry)
        for clause in self._program:
            if clause.is_fact_clause:
                entry = self._derive_fact(clause)
                if entry is not None and view.add(entry):
                    delta.append(entry)
                    self._stats.entries_added += 1

        iteration = 0
        while delta:
            iteration += 1
            if iteration > self._options.max_iterations:
                raise FixpointDivergenceError(self._options.max_iterations)
            self._stats.iterations = iteration
            self._stats.round_delta_sizes.append(len(delta))
            attempts_before = self._stats.derivation_attempts
            produced: List[ViewEntry] = []
            for clause, pools_for, probes, intervals in self._round_plan(view, delta):
                produced.extend(
                    self._derive_from_clause(clause, pools_for, factory, probes, intervals)
                )
            self._stats.round_attempts.append(
                self._stats.derivation_attempts - attempts_before
            )
            new_delta: List[ViewEntry] = []
            for entry in produced:
                if self._should_skip(entry, view):
                    continue
                if view.add(entry):
                    new_delta.append(entry)
                    self._stats.entries_added += 1
            if len(view) > self._options.max_entries:
                raise FixpointDivergenceError(
                    iteration,
                    f"fixpoint exceeded {self._options.max_entries} view entries",
                )
            delta = new_delta
        return view

    def step(self, interpretation: MaterializedView) -> MaterializedView:
        """One application of the operator: ``T_P(I)`` (not inflationary).

        Returns exactly the entries derivable by one clause application from
        *interpretation*, mirroring the paper's definition of the operator
        (the result does not include ``I`` itself).
        """
        self._stats = FixpointStats()
        factory = self._make_factory(interpretation)
        result = MaterializedView()
        for clause in self._program:
            if clause.is_fact_clause:
                entry = self._derive_fact(clause)
                if entry is not None:
                    result.add(entry)
        # Every entry of the interpretation counts as "delta": one operator
        # application enumerates the full product, which the delta-join does
        # too once the old pools are empty.
        for clause, pools_for, probes, intervals in self._round_plan(
            interpretation, list(interpretation), everything_is_delta=True
        ):
            for entry in self._derive_from_clause(
                clause, pools_for, factory, probes, intervals
            ):
                result.add(entry)
        return result

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def _make_factory(self, view: MaterializedView) -> FreshVariableFactory:
        reserved = set(view.all_variable_names())
        for clause in self._program:
            reserved.update(variable.name for variable in clause.variables())
        return FreshVariableFactory(reserved)

    def _derive_fact(self, clause: Clause) -> Optional[ViewEntry]:
        constraint = self._finalize_constraint(
            clause.constraint, clause.head.variables()
        )
        if constraint is None:
            return None
        return ViewEntry(clause.head, constraint, Support(clause.number or 0))

    def _round_plan(
        self,
        view: MaterializedView,
        delta: Sequence[ViewEntry],
        everything_is_delta: bool = False,
    ) -> Iterator[
        Tuple[
            Clause,
            Callable[[str], Tuple[tuple, tuple, tuple]],
            Optional[Tuple[Callable, Callable]],
            Optional[Callable[[ViewEntry], Sequence[Optional[_Interval]]]],
        ]
    ]:
        """Yield the clauses a round must evaluate, with their join pools.

        Only clauses whose body references a predicate that gained a delta
        entry can derive anything new; the program's body-predicate index
        selects exactly those, in clause-number order.  The returned
        ``pools_for`` callable resolves a body predicate to its
        ``(full, old, delta)`` entry pools, computed once per round; the
        probe pair (when the hash-join index applies) resolves a body atom
        plus one accumulated binding to the matching old / full entries.
        """
        delta_by_predicate: Dict[str, List[ViewEntry]] = {}
        for entry in delta:
            delta_by_predicate.setdefault(entry.predicate, []).append(entry)
        delta_keys = (
            None if everything_is_delta else {entry.key() for entry in delta}
        )

        pools: Dict[str, Tuple[tuple, tuple, tuple]] = {}

        def pools_for(predicate: str) -> Tuple[tuple, tuple, tuple]:
            cached = pools.get(predicate)
            if cached is None:
                full = view.entries_for(predicate)
                fresh = tuple(delta_by_predicate.get(predicate, ()))
                if not fresh:
                    old = full
                elif everything_is_delta:
                    old = ()
                else:
                    old = tuple(
                        entry for entry in full if entry.key() not in delta_keys
                    )
                cached = pools[predicate] = (full, old, fresh)
            return cached

        probes: Optional[Tuple[Callable, Callable]] = None
        interval_getter: Optional[Callable] = None
        if self._options.hash_join_index and self._options.check_solvability:

            def on_probe() -> None:
                self._stats.index_probes += 1

            probes = make_view_probes(
                view,
                exclude_keys=delta_keys,
                delta_by_predicate=delta_by_predicate,
                old_is_empty=everything_is_delta,
                on_probe=on_probe,
                range_postings=self._options.range_postings,
                evaluator=self._solver.evaluator,
                range_eligible=self._options.range_eligible,
            )
            # Built once per round, next to the probes: the getter pins the
            # evaluator's version token, which cannot change mid-round.
            if self._options.range_postings:
                interval_getter = make_interval_getter(self._solver.evaluator)

        selected: Dict[int, Clause] = {}
        for predicate in delta_by_predicate:
            for clause in self._program.clauses_with_body_predicate(predicate):
                selected[clause.number or 0] = clause
        self._stats.clauses_skipped += len(self._program.rule_clauses) - len(selected)
        for number in sorted(selected):
            yield selected[number], pools_for, probes, interval_getter

    def _derive_from_clause(
        self,
        clause: Clause,
        pools_for: Callable[[str], Tuple[tuple, tuple, tuple]],
        factory: FreshVariableFactory,
        probes: Optional[Tuple[Callable, Callable]] = None,
        interval_getter: Optional[
            Callable[[ViewEntry], Sequence[Optional[_Interval]]]
        ] = None,
    ) -> Iterable[ViewEntry]:
        full_pools: List[Tuple[ViewEntry, ...]] = []
        old_pools: List[Tuple[ViewEntry, ...]] = []
        delta_pools: List[Tuple[ViewEntry, ...]] = []
        for body_atom in clause.body:
            full, old, fresh = pools_for(body_atom.predicate)
            if not full:
                return
            full_pools.append(full)
            old_pools.append(old)
            delta_pools.append(fresh)

        if probes is not None:
            probe_old, probe_full = probes
            combinations: Iterable[Tuple[ViewEntry, ...]] = iter_indexed_delta_joins(
                clause.body,
                old_pools,
                delta_pools,
                full_pools,
                probe_old,
                probe_full,
                bound_intervals=interval_getter,
            )
        else:
            combinations = iter_delta_joins(old_pools, delta_pools, full_pools)

        # Rename each pool entry apart once per clause evaluation instead of
        # once per combination: fresh names are globally unique either way,
        # and a premise reused across combinations (or across positions) can
        # safely share its renamed copy -- each derived entry is independent.
        renamed_cache: Dict[Tuple[int, int], ConstrainedAtom] = {}
        for combination in combinations:
            self._stats.derivation_attempts += 1
            entry = self._combine(clause, combination, factory, renamed_cache)
            if entry is not None:
                yield entry

    def _combine(
        self,
        clause: Clause,
        premises: Sequence[ViewEntry],
        factory: FreshVariableFactory,
        renamed_cache: Optional[Dict[Tuple[int, int], ConstrainedAtom]] = None,
    ) -> Optional[ViewEntry]:
        parts: List[Constraint] = [clause.constraint]
        supports: List[Support] = []
        for position, (body_atom, premise) in enumerate(zip(clause.body, premises)):
            renamed = None
            cache_key = (position, id(premise))
            if renamed_cache is not None:
                renamed = renamed_cache.get(cache_key)
            if renamed is None:
                renamed, _ = premise.constrained_atom.renamed_apart(factory)
                if renamed_cache is not None:
                    renamed_cache[cache_key] = renamed
            parts.append(renamed.constraint)
            parts.append(tuple_equalities(renamed.atom.args, body_atom.args))
            supports.append(premise.support)
        constraint = self._finalize_constraint(
            conjoin(*parts), clause.head.variables()
        )
        if constraint is None:
            return None
        support = Support(clause.number or 0, tuple(supports))
        return ViewEntry(clause.head, constraint, support)

    def _finalize_constraint(
        self, constraint: Constraint, head_variables: Iterable[Variable]
    ) -> Optional[Constraint]:
        """Project, simplify and (for ``T_P``) solvability-check a constraint."""
        if self._options.project_auxiliary_variables:
            constraint = eliminate_variables(constraint, head_variables)
        if self._options.simplify_constraints:
            constraint = simplify(
                constraint,
                self._solver,
                drop_redundant_comparisons=self._options.drop_redundant_comparisons,
            )
        if self._options.check_solvability and not self._solver.is_satisfiable(constraint):
            return None
        return constraint

    def _should_skip(self, entry: ViewEntry, view: MaterializedView) -> bool:
        """Set-semantics subsumption used when duplicate semantics is off."""
        if self._options.duplicate_semantics:
            return False
        bound = entry.constrained_atom.bound_tuple()
        if bound is None:
            return False
        for existing in view.entries_for(entry.predicate):
            if existing.constrained_atom.bound_tuple() == bound:
                return True
        return False


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------


def compute_tp_fixpoint(
    program: ConstrainedDatabase,
    solver: Optional[ConstraintSolver] = None,
    initial: Optional[MaterializedView] = None,
    options: Optional[FixpointOptions] = None,
) -> MaterializedView:
    """Compute ``T_P ↑ ω`` (the paper's materialized mediated view)."""
    effective = options or DEFAULT_FIXPOINT_OPTIONS
    if not effective.check_solvability:
        effective = replace(effective, check_solvability=True)
    return FixpointEngine(program, solver, effective).compute(initial)


def compute_wp_fixpoint(
    program: ConstrainedDatabase,
    solver: Optional[ConstraintSolver] = None,
    initial: Optional[MaterializedView] = None,
    options: Optional[FixpointOptions] = None,
) -> MaterializedView:
    """Compute ``W_P ↑ ω`` (no solvability check; paper Section 4)."""
    effective = options or DEFAULT_FIXPOINT_OPTIONS
    if effective.check_solvability:
        effective = replace(effective, check_solvability=False)
    return FixpointEngine(program, solver, effective).compute(initial)
