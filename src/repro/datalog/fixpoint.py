"""The fixpoint operators ``T_P`` (Gabbrielli–Levi) and ``W_P``.

``T_P`` (paper Section 2.3) derives, from an interpretation ``I`` (a set of
constrained atoms), every constrained atom obtainable by one clause
application whose combined constraint is *solvable*.  Iterating from the
empty interpretation yields the non-ground materialized mediated view.

``W_P`` (paper Section 4) is the same operator with the solvability check
removed: derived entries are kept even when their constraint is currently
unsolvable, because solvability may change when external domain functions
change.  Theorem 4: the ``W_P`` view is syntactically invariant under such
changes; Corollary 1: its instances, evaluated at any time point, coincide
with the ``T_P`` view at that time point.

Both operators run under *duplicate semantics*: each derivation produces its
own view entry, indexed by its support.  The engine iterates semi-naively
(each round only considers clause applications using at least one entry that
is new since the previous round), which enumerates every derivation exactly
once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constraints.ast import Constraint, conjoin, tuple_equalities
from repro.constraints.projection import eliminate_variables
from repro.constraints.simplify import simplify
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import FreshVariableFactory, Variable
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.support import Support
from repro.datalog.view import MaterializedView, ViewEntry
from repro.errors import FixpointDivergenceError


@dataclass(frozen=True)
class FixpointOptions:
    """Configuration of the fixpoint computation."""

    #: Apply the solvability check of ``T_P``.  ``False`` gives ``W_P``.
    check_solvability: bool = True
    #: Keep one entry per *derivation* (duplicate semantics).  When False,
    #: a derived entry that denotes a ground tuple already denoted by an
    #: existing entry of the same predicate is skipped (set semantics); this
    #: is what makes transitive closure over cyclic data terminate.
    duplicate_semantics: bool = True
    #: Simplify derived constraints (removes the redundancy the paper notes).
    simplify_constraints: bool = True
    #: Also drop comparison conjuncts entailed by the rest when simplifying.
    drop_redundant_comparisons: bool = True
    #: Project away auxiliary (non-head) variables bound by equalities, so
    #: derived entries read like the paper's examples (``A(X) <- X >= 5``
    #: instead of ``A(X) <- X1 >= 5 & X1 = X``).
    project_auxiliary_variables: bool = True
    #: Hard cap on the number of iterations before giving up.
    max_iterations: int = 200
    #: Hard cap on the total number of view entries before giving up.
    max_entries: int = 200_000


DEFAULT_FIXPOINT_OPTIONS = FixpointOptions()

#: Options preset for the ``W_P`` operator of Section 4.
WP_OPTIONS = FixpointOptions(check_solvability=False)


class FixpointEngine:
    """Computes ``T_P ↑ ω`` / ``W_P ↑ ω`` for a constrained database."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        options: FixpointOptions = DEFAULT_FIXPOINT_OPTIONS,
    ) -> None:
        self._program = program
        self._solver = solver or ConstraintSolver()
        self._options = options

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def program(self) -> ConstrainedDatabase:
        """The constrained database being evaluated."""
        return self._program

    @property
    def solver(self) -> ConstraintSolver:
        """The constraint solver used for solvability checks."""
        return self._solver

    @property
    def options(self) -> FixpointOptions:
        """The options the engine was configured with."""
        return self._options

    def compute(
        self, initial: Optional[MaterializedView] = None
    ) -> MaterializedView:
        """Compute the least fixpoint, optionally seeded with *initial*.

        With no seed this is ``T_P ↑ ω(∅)`` (or ``W_P ↑ ω(∅)``).  With a seed
        it is the inflationary iteration ``T_P ↑ ω(M')`` used by the
        rederivation step of the Extended DRed algorithm.
        """
        view = MaterializedView(initial.entries if initial is not None else ())
        factory = self._make_factory(view)

        # Round 0: body-free clauses, plus the seed entries, form the delta.
        delta: List[ViewEntry] = list(view.entries)
        for clause in self._program:
            if clause.is_fact_clause:
                entry = self._derive_fact(clause)
                if entry is not None and view.add(entry):
                    delta.append(entry)

        iteration = 0
        while delta:
            iteration += 1
            if iteration > self._options.max_iterations:
                raise FixpointDivergenceError(self._options.max_iterations)
            delta_keys = {entry.key() for entry in delta}
            produced: List[ViewEntry] = []
            for clause in self._program:
                if clause.is_fact_clause:
                    continue
                produced.extend(
                    self._derive_from_clause(clause, view, delta_keys, factory)
                )
            new_delta: List[ViewEntry] = []
            for entry in produced:
                if self._should_skip(entry, view):
                    continue
                if view.add(entry):
                    new_delta.append(entry)
            if len(view) > self._options.max_entries:
                raise FixpointDivergenceError(
                    iteration,
                    f"fixpoint exceeded {self._options.max_entries} view entries",
                )
            delta = new_delta
        return view

    def step(self, interpretation: MaterializedView) -> MaterializedView:
        """One application of the operator: ``T_P(I)`` (not inflationary).

        Returns exactly the entries derivable by one clause application from
        *interpretation*, mirroring the paper's definition of the operator
        (the result does not include ``I`` itself).
        """
        factory = self._make_factory(interpretation)
        result = MaterializedView()
        all_keys = {entry.key() for entry in interpretation}
        for clause in self._program:
            if clause.is_fact_clause:
                entry = self._derive_fact(clause)
                if entry is not None:
                    result.add(entry)
            else:
                for entry in self._derive_from_clause(
                    clause, interpretation, all_keys, factory
                ):
                    result.add(entry)
        return result

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def _make_factory(self, view: MaterializedView) -> FreshVariableFactory:
        reserved = set(view.all_variable_names())
        for clause in self._program:
            reserved.update(variable.name for variable in clause.variables())
        return FreshVariableFactory(reserved)

    def _derive_fact(self, clause: Clause) -> Optional[ViewEntry]:
        constraint = self._finalize_constraint(
            clause.constraint, clause.head.variables()
        )
        if constraint is None:
            return None
        return ViewEntry(clause.head, constraint, Support(clause.number or 0))

    def _derive_from_clause(
        self,
        clause: Clause,
        view: MaterializedView,
        delta_keys: set,
        factory: FreshVariableFactory,
    ) -> Iterable[ViewEntry]:
        candidate_lists: List[Tuple[ViewEntry, ...]] = []
        for body_atom in clause.body:
            entries = view.entries_for(body_atom.predicate)
            if not entries:
                return
            candidate_lists.append(entries)

        for combination in itertools.product(*candidate_lists):
            if not any(entry.key() in delta_keys for entry in combination):
                continue
            entry = self._combine(clause, combination, factory)
            if entry is not None:
                yield entry

    def _combine(
        self,
        clause: Clause,
        premises: Sequence[ViewEntry],
        factory: FreshVariableFactory,
    ) -> Optional[ViewEntry]:
        parts: List[Constraint] = [clause.constraint]
        supports: List[Support] = []
        for body_atom, premise in zip(clause.body, premises):
            renamed, _ = premise.constrained_atom.renamed_apart(factory)
            parts.append(renamed.constraint)
            parts.append(tuple_equalities(renamed.atom.args, body_atom.args))
            supports.append(premise.support)
        constraint = self._finalize_constraint(
            conjoin(*parts), clause.head.variables()
        )
        if constraint is None:
            return None
        support = Support(clause.number or 0, tuple(supports))
        return ViewEntry(clause.head, constraint, support)

    def _finalize_constraint(
        self, constraint: Constraint, head_variables: Iterable[Variable]
    ) -> Optional[Constraint]:
        """Project, simplify and (for ``T_P``) solvability-check a constraint."""
        if self._options.project_auxiliary_variables:
            constraint = eliminate_variables(constraint, head_variables)
        if self._options.simplify_constraints:
            constraint = simplify(
                constraint,
                self._solver,
                drop_redundant_comparisons=self._options.drop_redundant_comparisons,
            )
        if self._options.check_solvability and not self._solver.is_satisfiable(constraint):
            return None
        return constraint

    def _should_skip(self, entry: ViewEntry, view: MaterializedView) -> bool:
        """Set-semantics subsumption used when duplicate semantics is off."""
        if self._options.duplicate_semantics:
            return False
        bound = entry.constrained_atom.bound_tuple()
        if bound is None:
            return False
        for existing in view.entries_for(entry.predicate):
            if existing.constrained_atom.bound_tuple() == bound:
                return True
        return False


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------


def compute_tp_fixpoint(
    program: ConstrainedDatabase,
    solver: Optional[ConstraintSolver] = None,
    initial: Optional[MaterializedView] = None,
    options: Optional[FixpointOptions] = None,
) -> MaterializedView:
    """Compute ``T_P ↑ ω`` (the paper's materialized mediated view)."""
    effective = options or DEFAULT_FIXPOINT_OPTIONS
    if not effective.check_solvability:
        effective = replace(effective, check_solvability=True)
    return FixpointEngine(program, solver, effective).compute(initial)


def compute_wp_fixpoint(
    program: ConstrainedDatabase,
    solver: Optional[ConstraintSolver] = None,
    initial: Optional[MaterializedView] = None,
    options: Optional[FixpointOptions] = None,
) -> MaterializedView:
    """Compute ``W_P ↑ ω`` (no solvability check; paper Section 4)."""
    effective = options or DEFAULT_FIXPOINT_OPTIONS
    if effective.check_solvability:
        effective = replace(effective, check_solvability=False)
    return FixpointEngine(program, solver, effective).compute(initial)
