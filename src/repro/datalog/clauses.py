"""Constrained clauses (mediator rules).

A mediator / constrained database is a set of rules

    ``A  <-  D1 & ... & Dm  ||  A1, ..., An``

where ``A, A1, ..., An`` are atoms and ``D1, ..., Dm`` are constraints
(DCA-atoms, comparisons, or their negations after a rewrite).  ``||``
separates the constraint part from the ordinary body atoms, following the
paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.constraints.ast import Constraint, TRUE, conjoin
from repro.constraints.terms import FreshVariableFactory, Substitution, Variable
from repro.datalog.atoms import Atom
from repro.errors import ProgramError


@dataclass(frozen=True)
class Clause:
    """One constrained clause ``head <- constraint || body``."""

    head: Atom
    constraint: Constraint = TRUE
    body: Tuple[Atom, ...] = field(default_factory=tuple)
    number: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.head, Atom):
            raise ProgramError(f"clause head must be an atom: {self.head!r}")
        object.__setattr__(self, "body", tuple(self.body))
        for atom in self.body:
            if not isinstance(atom, Atom):
                raise ProgramError(f"clause body element is not an atom: {atom!r}")
        if not isinstance(self.constraint, Constraint):
            raise ProgramError(f"clause constraint is invalid: {self.constraint!r}")
        if self.number is not None and self.number <= 0:
            raise ProgramError("clause numbers start at 1")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_fact_clause(self) -> bool:
        """True when the clause has no body atoms (only a constraint)."""
        return not self.body

    @property
    def predicate(self) -> str:
        """The predicate the clause defines."""
        return self.head.predicate

    def variables(self) -> FrozenSet[Variable]:
        """All variables occurring anywhere in the clause."""
        found = set(self.head.variables())
        found.update(self.constraint.variables())
        for atom in self.body:
            found.update(atom.variables())
        return frozenset(found)

    def body_predicates(self) -> Tuple[str, ...]:
        """Predicates referenced in the body, in order."""
        return tuple(atom.predicate for atom in self.body)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def substitute(self, subst: Substitution) -> "Clause":
        """Apply a substitution to every component (keeps the number)."""
        return Clause(
            self.head.substitute(subst),
            self.constraint.substitute(subst),
            tuple(atom.substitute(subst) for atom in self.body),
            self.number,
        )

    def renamed_apart(self, factory: FreshVariableFactory) -> "Clause":
        """Return a variant of the clause with fresh variables."""
        renaming = factory.renaming_for(self.variables())
        return self.substitute(renaming)

    def with_constraint(self, constraint: Constraint) -> "Clause":
        """Return a copy with the constraint part replaced."""
        return Clause(self.head, constraint, self.body, self.number)

    def with_extra_constraint(self, extra: Constraint) -> "Clause":
        """Return a copy with *extra* conjoined onto the constraint part."""
        return Clause(self.head, conjoin(self.constraint, extra), self.body, self.number)

    def with_body(self, body: Tuple[Atom, ...]) -> "Clause":
        """Return a copy with the body atoms replaced."""
        return Clause(self.head, self.constraint, tuple(body), self.number)

    def with_number(self, number: Optional[int]) -> "Clause":
        """Return a copy carrying a (new) clause number."""
        return Clause(self.head, self.constraint, self.body, number)

    def __str__(self) -> str:
        prefix = f"[{self.number}] " if self.number is not None else ""
        pieces = [f"{prefix}{self.head}"]
        has_constraint = not isinstance(self.constraint, type(TRUE))
        if has_constraint or self.body:
            pieces.append(" <- ")
            if has_constraint:
                pieces.append(str(self.constraint))
            if self.body:
                if has_constraint:
                    pieces.append(" || ")
                pieces.append(", ".join(str(atom) for atom in self.body))
        return "".join(pieces)


def fact(head: Atom, constraint: Constraint = TRUE) -> Clause:
    """Build a body-free clause (a constrained fact)."""
    return Clause(head, constraint, ())


def rule(head: Atom, body: Tuple[Atom, ...], constraint: Constraint = TRUE) -> Clause:
    """Build a clause with body atoms and an optional constraint part."""
    return Clause(head, constraint, tuple(body))
