"""Constrained-Datalog substrate.

Atoms, constrained atoms, clauses, programs (constrained databases),
materialized views with derivation supports, the ``T_P`` / ``W_P`` fixpoint
operators, and a small rule-text parser.
"""

from repro.datalog.atoms import Atom, ConstrainedAtom, ground_atom, make_atom
from repro.datalog.clauses import Clause, fact, rule
from repro.datalog.fixpoint import (
    DEFAULT_FIXPOINT_OPTIONS,
    FixpointEngine,
    FixpointOptions,
    WP_OPTIONS,
    compute_tp_fixpoint,
    compute_wp_fixpoint,
)
from repro.datalog.parser import (
    parse_atom,
    parse_clause,
    parse_constrained_atom,
    parse_constraint,
    parse_program,
)
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.support import Support, derived, leaf
from repro.datalog.view import MaterializedView, ViewEntry

__all__ = [
    "Atom",
    "Clause",
    "ConstrainedAtom",
    "ConstrainedDatabase",
    "DEFAULT_FIXPOINT_OPTIONS",
    "FixpointEngine",
    "FixpointOptions",
    "MaterializedView",
    "Support",
    "ViewEntry",
    "WP_OPTIONS",
    "compute_tp_fixpoint",
    "compute_wp_fixpoint",
    "derived",
    "fact",
    "ground_atom",
    "leaf",
    "make_atom",
    "parse_atom",
    "parse_clause",
    "parse_constrained_atom",
    "parse_constraint",
    "parse_program",
    "rule",
]
