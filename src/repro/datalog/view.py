"""Materialized views as sets of supported constrained atoms.

A materialized mediated view is a set of constrained atoms (paper Section
2.3), kept under *duplicate semantics*: one entry per derivation, each entry
indexed by the support of its derivation (Section 3.1.2).  This module
provides the container used by the fixpoint operators, the maintenance
algorithms and the mediator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.constraints.ast import Constraint, conjoin, tuple_equalities
from repro.constraints.simplify import canonical_form
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import FreshVariableFactory, Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.datalog.support import Support
from repro.errors import ProgramError


@dataclass(frozen=True)
class ViewEntry:
    """One view element: a constrained atom plus the support of its derivation."""

    atom: Atom
    constraint: Constraint
    support: Support

    @property
    def predicate(self) -> str:
        """Predicate name of the entry's atom."""
        return self.atom.predicate

    @property
    def constrained_atom(self) -> ConstrainedAtom:
        """The entry viewed as a constrained atom (dropping the support)."""
        return ConstrainedAtom(self.atom, self.constraint)

    def with_constraint(self, constraint: Constraint) -> "ViewEntry":
        """Return a copy with the constraint replaced (same atom, same support)."""
        return ViewEntry(self.atom, constraint, self.support)

    def key(self) -> Tuple[Atom, Constraint, Support]:
        """Deduplication key: atom, canonical constraint, support."""
        return (self.atom, canonical_form(self.constraint), self.support)

    def __str__(self) -> str:
        return f"{self.atom} <- {self.constraint}   {self.support}"


class MaterializedView:
    """An insertion-ordered collection of :class:`ViewEntry` objects.

    The container deduplicates on ``(atom, canonical constraint, support)``;
    two entries with the same constrained atom but different supports are
    *both* kept, which is exactly the paper's duplicate semantics.
    """

    def __init__(self, entries: Iterable[ViewEntry] = ()) -> None:
        self._entries: List[ViewEntry] = []
        self._keys: set = set()
        self._by_predicate: Dict[str, List[ViewEntry]] = {}
        for entry in entries:
            self.add(entry)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry: ViewEntry) -> bool:
        return entry.key() in self._keys

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self._entries)

    def copy(self) -> "MaterializedView":
        """Return an independent shallow copy."""
        return MaterializedView(self._entries)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, entry: ViewEntry) -> bool:
        """Add an entry; return False when an identical entry already exists."""
        if not isinstance(entry, ViewEntry):
            raise ProgramError(f"not a view entry: {entry!r}")
        key = entry.key()
        if key in self._keys:
            return False
        self._keys.add(key)
        self._entries.append(entry)
        self._by_predicate.setdefault(entry.predicate, []).append(entry)
        return True

    def add_all(self, entries: Iterable[ViewEntry]) -> int:
        """Add several entries; return how many were actually new."""
        return sum(1 for entry in entries if self.add(entry))

    def remove(self, entry: ViewEntry) -> bool:
        """Remove an entry; return False when it was not present."""
        key = entry.key()
        if key not in self._keys:
            return False
        self._keys.discard(key)
        self._entries = [existing for existing in self._entries if existing.key() != key]
        bucket = self._by_predicate.get(entry.predicate, [])
        self._by_predicate[entry.predicate] = [
            existing for existing in bucket if existing.key() != key
        ]
        return True

    def replace(self, old: ViewEntry, new: ViewEntry) -> None:
        """Replace *old* by *new* in place (preserving list order)."""
        old_key = old.key()
        if old_key not in self._keys:
            raise ProgramError(f"entry not in view: {old}")
        index = next(
            i for i, existing in enumerate(self._entries) if existing.key() == old_key
        )
        self._keys.discard(old_key)
        self._keys.add(new.key())
        self._entries[index] = new
        bucket = self._by_predicate.get(old.predicate, [])
        bucket_index = next(
            i for i, existing in enumerate(bucket) if existing.key() == old_key
        )
        if new.predicate == old.predicate:
            bucket[bucket_index] = new
        else:  # pragma: no cover - algorithms never change the predicate
            del bucket[bucket_index]
            self._by_predicate.setdefault(new.predicate, []).append(new)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Tuple[ViewEntry, ...]:
        """All entries in insertion order."""
        return tuple(self._entries)

    def entries_for(self, predicate: str) -> Tuple[ViewEntry, ...]:
        """Entries whose atom has the given predicate."""
        return tuple(self._by_predicate.get(predicate, ()))

    def predicates(self) -> Tuple[str, ...]:
        """Predicates that have at least one entry, sorted."""
        return tuple(sorted(p for p, bucket in self._by_predicate.items() if bucket))

    def constrained_atoms(self) -> Tuple[ConstrainedAtom, ...]:
        """All entries as constrained atoms (supports dropped)."""
        return tuple(entry.constrained_atom for entry in self._entries)

    def find_by_support(self, support: Support) -> Optional[ViewEntry]:
        """Return the entry carrying exactly this support, if any."""
        for entry in self._entries:
            if entry.support == support:
                return entry
        return None

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def instances(
        self,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[str, Tuple[object, ...]]]:
        """The ground instance set ``[M]`` of the whole view."""
        universe_values = list(universe) if universe is not None else None
        collected = set()
        for entry in self._entries:
            collected.update(
                entry.constrained_atom.instances(solver=solver, universe=universe_values)
            )
        return frozenset(collected)

    def instances_for(
        self,
        predicate: str,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[object, ...]]:
        """Ground instances of one predicate (tuples only)."""
        universe_values = list(universe) if universe is not None else None
        collected = set()
        for entry in self.entries_for(predicate):
            for _, values in entry.constrained_atom.instances(
                solver=solver, universe=universe_values
            ):
                collected.add(values)
        return frozenset(collected)

    def same_instances(
        self,
        other: "MaterializedView",
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> bool:
        """Semantic comparison ``[self] == [other]`` (the paper's theorems)."""
        return self.instances(solver=solver, universe=universe) == other.instances(
            solver=solver, universe=universe
        )

    def prune_unsolvable(self, solver: ConstraintSolver) -> int:
        """Drop entries whose constraint is unsatisfiable; return the count.

        StDel's final step ("remove any constraint atom from M whose
        constraint is not solvable") and W_P's query-time evaluation both use
        this operation.
        """
        doomed = [
            entry for entry in self._entries if not solver.is_satisfiable(entry.constraint)
        ]
        for entry in doomed:
            self.remove(entry)
        return len(doomed)

    def is_duplicate_free(
        self,
        solver: ConstraintSolver,
        fresh_factory: Optional[FreshVariableFactory] = None,
    ) -> bool:
        """Check the duplicate-freeness condition of Section 3.1.

        The Extended DRed algorithm is "efficient when the mediated view is
        duplicate-free", i.e. for all distinct entries ``A(X̄) <- φ1`` and
        ``A(Ȳ) <- φ2`` of the same predicate the instance sets are disjoint.
        Disjointness of two entries is checked as unsatisfiability of
        ``φ1 & φ2' & (X̄ = Ȳ')`` with the second entry renamed apart.
        """
        factory = fresh_factory or FreshVariableFactory(
            variable.name for entry in self._entries for variable in entry.constrained_atom.variables()
        )
        for predicate in self.predicates():
            bucket = self.entries_for(predicate)
            for index, first in enumerate(bucket):
                for second in bucket[index + 1:]:
                    renamed, _ = second.constrained_atom.renamed_apart(factory)
                    overlap = conjoin(
                        first.constraint,
                        renamed.constraint,
                        tuple_equalities(first.atom.args, renamed.atom.args),
                    )
                    if solver.is_satisfiable(overlap):
                        return False
        return True

    def head_variables(self) -> FrozenSet[Variable]:
        """All variables used in entry atoms (not constraints)."""
        found: set = set()
        for entry in self._entries:
            found.update(entry.atom.variables())
        return frozenset(found)

    def all_variable_names(self) -> FrozenSet[str]:
        """Names of every variable in the view (atoms and constraints)."""
        names: set = set()
        for entry in self._entries:
            names.update(v.name for v in entry.constrained_atom.variables())
        return frozenset(names)
