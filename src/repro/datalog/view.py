"""Materialized views as sets of supported constrained atoms.

A materialized mediated view is a set of constrained atoms (paper Section
2.3), kept under *duplicate semantics*: one entry per derivation, each entry
indexed by the support of its derivation (Section 3.1.2).  This module
provides the container used by the fixpoint operators, the maintenance
algorithms and the mediator.

Storage is **sharded by predicate**: every predicate's entries and indexes
live in their own :class:`PredicateShard`, and :class:`MaterializedView` is a
copy-on-write façade over the shard map.  ``copy()`` shares shard pointers
and only clones a shard when it is first written, so a maintenance pass over
a view pays copy cost proportional to the predicates it actually touches --
the paper's delta-proportionality carried into the storage layer -- and the
stream scheduler can run independent stratum units in parallel against the
same base shards, publishing by swapping shard pointers instead of merging
whole views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import bisect

from repro.constraints.ast import Constraint, conjoin, tuple_equalities
from repro.constraints.simplify import canonical_form, extract_bindings
from repro.constraints.solver import (
    ConstraintSolver,
    Interval as _Interval,
    PROFILE_UNKNOWN as _UNKNOWN,
    build_argument_profile,
    intersect_intervals as _intersect_intervals,
    interval_excludes as _interval_excludes,
    intervals_disjoint as _intervals_disjoint,
)
from repro.constraints.terms import Constant, FreshVariableFactory, Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.datalog.support import Support
from repro.errors import ProgramError, ShardSanitizerError, WriteScopeError
from repro.sanitizer import sanitizer_enabled


class _UnboundArgument:
    """Sentinel: an atom argument not pinned to a constant by the constraint."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


#: Marks argument positions whose value the constraint does not determine.
UNBOUND = _UnboundArgument()

#: Sentinel: "compute the evaluator's version token here".  Callers on the
#: hot join path (probe pairs, interval getters) fetch the token once per
#: round and pass it down, instead of rebuilding the registry's tuple on
#: every probe.
_NO_TOKEN = object()

#: Sentinel distinguishing "support never recorded in this lineage" from the
#: ``None`` hint value ("recorded under several predicates, scan them all").
_NO_HINT = object()


def evaluator_token(evaluator: Optional[object]) -> Optional[object]:
    """The evaluator's hook-relevant version token (``None`` when absent).

    Prefers ``registration_version`` -- which changes only when the
    registered function set (and thus the ``index_interval`` hooks) can
    change -- over the full ``version`` token, which also moves on every
    external *data* change; hook results are contractually time-invariant,
    so gating them on the full token would rebuild the interval caches on
    every clock advance for nothing.
    """
    token = getattr(evaluator, "registration_version", None)
    if token is not None:
        return token
    return getattr(evaluator, "version", None)


def bound_argument_values(
    args: Sequence[object], constraint: Constraint
) -> Tuple[object, ...]:
    """Per-position constant values pinned by *constraint* (or :data:`UNBOUND`).

    Constant arguments are their own value; variable arguments take the value
    the constraint's top-level equalities pin them to, when any.  This is the
    per-position generalization of
    :meth:`~repro.datalog.atoms.ConstrainedAtom.bound_tuple` and feeds the
    hash-join argument index.
    """
    bindings = extract_bindings(constraint)
    values = []
    for arg in args:
        if isinstance(arg, Constant):
            values.append(arg.value)
        elif isinstance(arg, Variable) and arg in bindings:
            values.append(bindings[arg].value)
        else:
            values.append(UNBOUND)
    return tuple(values)


@dataclass(frozen=True)
class IntervalQuery:
    """A range query against the argument index (probe-by-overlap).

    Built from the interval an already-chosen join premise pins a shared
    variable into; the index answers with every entry that could carry a
    value inside it at the probed position.
    """

    low: float
    low_strict: bool
    high: float
    high_strict: bool

    def as_interval(self) -> _Interval:
        """The query as a solver interval (for overlap arithmetic)."""
        return _Interval(self.low, self.low_strict, self.high, self.high_strict)


def interval_query_from(interval: _Interval) -> IntervalQuery:
    """Wrap a solver interval as a probe query."""
    return IntervalQuery(
        interval.low, interval.low_strict, interval.high, interval.high_strict
    )


def argument_intervals(
    args: Sequence[object],
    constraint: Constraint,
    evaluator: Optional[object] = None,
) -> Tuple[Optional[_Interval], ...]:
    """Per-position numeric intervals implied by *constraint* (or ``None``).

    The interval at a position is a *time-invariant over-approximation* of
    the values the constraint admits there: it is assembled from the
    canonical form's top-level ordering conjuncts (via the solver's
    argument profile) intersected with the ``index_interval`` hook of every
    ground positive DCA-atom on that position, when *evaluator* exposes one
    (see :meth:`repro.domains.base.DomainFunction` -- hooks must return a
    superset interval valid at every time point, which is what keeps range
    postings sound under external source changes).  Positions the profile
    pins to a numeric constant get the point interval; non-numeric pins and
    unconstrained positions get ``None``.
    """
    profile = build_argument_profile(args, constraint)
    if profile.unsatisfiable:
        # No instances at all: the empty interval excludes every probe and
        # refutes every join binding.  This is a large share of the win on
        # deletion workloads -- DRed's over-estimate is full of entries
        # narrowed to ``false``, and every combination using one would be
        # enumerated only for the solvability check to kill it.
        empty = _Interval(float("inf"), False, float("-inf"), False)
        return tuple(empty for _ in args)
    hook = getattr(evaluator, "index_interval", None)
    intervals: List[Optional[_Interval]] = []
    for slot in profile.slots:
        interval: Optional[_Interval] = None
        if slot.value is not _UNKNOWN:
            value = slot.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                try:
                    point = float(value)
                except OverflowError:  # int beyond float range: no bound
                    intervals.append(None)
                    continue
                interval = _Interval(point, False, point, False)
            else:
                intervals.append(None)
                continue
        elif slot.interval is not None:
            interval = _Interval(
                slot.interval.low,
                slot.interval.low_strict,
                slot.interval.high,
                slot.interval.high_strict,
            )
        if hook is not None:
            for domain, function, call_args in slot.calls:
                try:
                    bounds = hook(domain, function, call_args)
                except Exception:  # hooks must never break indexing
                    bounds = None
                if bounds is None:
                    continue
                try:
                    low, low_strict, high, high_strict = bounds
                    called = _Interval(
                        float(low), bool(low_strict), float(high), bool(high_strict)
                    )
                except (OverflowError, TypeError, ValueError):
                    continue  # malformed or unrepresentable bound: no opinion
                interval = called if interval is None else _intersect_intervals(interval, called)
        if interval is not None and interval.is_trivial():
            interval = None
        intervals.append(interval)
    return tuple(intervals)


@dataclass(frozen=True)
class ViewEntry:
    """One view element: a constrained atom plus the support of its derivation."""

    atom: Atom
    constraint: Constraint
    support: Support

    @property
    def predicate(self) -> str:
        """Predicate name of the entry's atom."""
        return self.atom.predicate

    @property
    def constrained_atom(self) -> ConstrainedAtom:
        """The entry viewed as a constrained atom (dropping the support).

        Cached: join pools and renamed-premise caches rely on this being the
        same object on every access.
        """
        cached = self.__dict__.get("_cached_atom")
        if cached is None:
            cached = ConstrainedAtom(self.atom, self.constraint)
            object.__setattr__(self, "_cached_atom", cached)
        return cached

    def with_constraint(self, constraint: Constraint) -> "ViewEntry":
        """Return a copy with the constraint replaced (same atom, same support)."""
        return ViewEntry(self.atom, constraint, self.support)

    def bound_args(self) -> Tuple[object, ...]:
        """Per-position pinned constants (or :data:`UNBOUND`), cached.

        Purely syntactic (top-level equalities only), so the result is
        time-invariant even when the constraint mentions external domain
        calls -- which is what lets the ``W_P`` view's hash indexes stay
        byte-identical across source changes (Theorem 4).
        """
        cached = self.__dict__.get("_cached_bound_args")
        if cached is None:
            cached = bound_argument_values(self.atom.args, self.constraint)
            object.__setattr__(self, "_cached_bound_args", cached)
        return cached

    def arg_intervals(
        self, evaluator: Optional[object] = None, token: object = _NO_TOKEN
    ) -> Tuple[Optional[_Interval], ...]:
        """Per-position numeric intervals (see :func:`argument_intervals`).

        Cached per (evaluator identity, evaluator version token): the
        intervals are syntactic except for ``index_interval`` hook results,
        and while the hook *contract* makes a given hook's answers
        time-invariant, re-registering a function installs a different hook
        -- the registry's version token changes then, dropping the stale
        tuple (the same gating the solver's external memo uses).  Pass a
        pre-fetched *token* on hot paths; the token cannot change inside a
        single evaluation round.
        """
        if token is _NO_TOKEN:
            token = evaluator_token(evaluator)
        cached = self.__dict__.get("_cached_arg_intervals")
        if cached is not None:
            known, known_token, intervals = cached
            if known is evaluator and known_token == token:
                return intervals
        intervals = argument_intervals(self.atom.args, self.constraint, evaluator)
        # Single slot (most recent evaluator + token): entries are shared
        # across copied views and outlive solvers, so an unbounded per-
        # evaluator list would pin dead registries for the entry's lifetime.
        object.__setattr__(
            self, "_cached_arg_intervals", (evaluator, token, intervals)
        )
        return intervals

    def key(self) -> Tuple[Atom, Constraint, Support]:
        """Deduplication key: atom, canonical constraint, support.

        The canonical form is computed once and cached on the entry: every
        membership test, add and remove goes through the key, and entries are
        immutable, so recomputing it per lookup was pure waste.  The
        constraint component is the *interned* canonical node (a per-node
        slot read), so key hashing mixes cached ints and key equality
        degenerates to pointer comparisons -- two entries are duplicates
        exactly when their key components are the same objects.
        """
        cached = self.__dict__.get("_cached_key")
        if cached is None:
            cached = (self.atom, canonical_form(self.constraint), self.support)
            object.__setattr__(self, "_cached_key", cached)
        return cached

    def __str__(self) -> str:
        return f"{self.atom} <- {self.constraint}   {self.support}"


class _IndexedSlots:
    """An insertion-ordered entry sequence with O(1) add/remove/replace.

    Entries live in a slot list; removal tombstones the slot and the list is
    compacted once tombstones dominate, so amortized cost stays O(1) while
    insertion order (and the position of in-place replacements) is preserved.
    """

    __slots__ = ("_slots", "_pos", "_dead")

    def __init__(self) -> None:
        self._slots: List[Optional[ViewEntry]] = []
        self._pos: Dict[object, int] = {}
        self._dead = 0

    def __len__(self) -> int:
        return len(self._pos)

    def __iter__(self) -> Iterator[ViewEntry]:
        for entry in self._slots:
            if entry is not None:
                yield entry

    def __contains__(self, key: object) -> bool:
        return key in self._pos

    def copy(self) -> "_IndexedSlots":
        dup = _IndexedSlots.__new__(_IndexedSlots)
        dup._slots = list(self._slots)
        dup._pos = dict(self._pos)
        dup._dead = self._dead
        return dup

    def add(self, key: object, entry: ViewEntry) -> None:
        self._pos[key] = len(self._slots)
        self._slots.append(entry)

    def remove(self, key: object) -> None:
        index = self._pos.pop(key)
        self._slots[index] = None
        self._dead += 1
        if self._dead > len(self._pos) and self._dead > 8:
            self._compact()

    def replace(self, old_key: object, new_key: object, entry: ViewEntry) -> None:
        index = self._pos.pop(old_key)
        self._pos[new_key] = index
        self._slots[index] = entry

    def first(self) -> Optional[ViewEntry]:
        for entry in self._slots:
            if entry is not None:
                return entry
        return None

    def to_tuple(self) -> Tuple[ViewEntry, ...]:
        if not self._dead:
            return tuple(self._slots)
        return tuple(entry for entry in self._slots if entry is not None)

    def _compact(self) -> None:
        live = [
            (key, self._slots[index])
            for key, index in sorted(self._pos.items(), key=lambda item: item[1])
        ]
        self._slots = [entry for _, entry in live]
        self._pos = {key: index for index, (key, _) in enumerate(live)}
        self._dead = 0


class _SortedValueWindow:
    """Sorted numeric bound values of one argument-index slot.

    ``probe_range``'s overlap path used to scan *every* distinct bound value
    of the slot linearly; this keeps the numeric values in a sorted list so
    an interval query bisects its window instead (the ROADMAP's "sorted
    value list with a bisected query window").  Values that cannot serve as
    an **exact** float sort key -- non-numbers, bools, NaN, and ints whose
    ``float()`` rounding moves them (so a bisected window could cut them
    off) -- are kept aside and offered to every query; the caller's
    ``_interval_excludes`` screens them exactly as the linear scan did, so
    results are unchanged.

    Removals tombstone (the sorted list keeps the value until compaction);
    the live set is the authority, mirroring ``_RangePostings``.
    """

    __slots__ = ("_sorted", "_live", "_other", "_dead")

    def __init__(self) -> None:
        self._sorted: List[float] = []
        self._live: set = set()
        self._other: set = set()
        self._dead = 0

    @staticmethod
    def _window_key(value: object) -> Optional[float]:
        """The value's exact float sort key, or ``None`` when it has none.

        A key is only usable when ``float(value) == value`` *exactly*: huge
        ints round (``2**53 + 1`` becomes ``2**53``), so bisecting on the
        rounded key could place the value outside a query window that a
        linear scan would include -- the value must then be screened by the
        exact per-value check instead.  NaN (never equal to itself) and
        overflowing ints land in the same bucket, which also fixes the old
        leak where an overflowing int filed under ``_other`` on ``add`` was
        never discarded (the numeric ``discard`` path could not find it).
        """
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return None
        try:
            key = float(value)
        except OverflowError:  # int beyond float range: cannot be windowed
            return None
        if key != value:  # rounded (huge int) or NaN: bisect would misplace
            return None
        return key

    def copy(self) -> "_SortedValueWindow":
        dup = _SortedValueWindow.__new__(_SortedValueWindow)
        dup._sorted = list(self._sorted)
        dup._live = set(self._live)
        dup._other = set(self._other)
        dup._dead = self._dead
        return dup

    def add(self, value: object) -> None:
        key = self._window_key(value)
        if key is None:
            self._other.add(value)
            return
        if value in self._live:
            return
        self._live.add(value)
        bisect.insort(self._sorted, key)

    def discard(self, value: object) -> None:
        key = self._window_key(value)
        if key is None:
            self._other.discard(value)
            return
        if value in self._live:
            self._live.discard(value)
            self._dead += 1
            if self._dead > len(self._live) and self._dead > 8:
                self._compact()

    def _compact(self) -> None:
        live_keys = {float(value) for value in self._live}
        self._sorted = sorted(live_keys)
        self._dead = 0

    def window(self, interval: _Interval) -> Iterator[object]:
        """Values the query *interval* could admit (superset; exact filter
        stays with the caller's ``_interval_excludes`` check)."""
        low = bisect.bisect_left(self._sorted, interval.low)
        high = bisect.bisect_right(self._sorted, interval.high)
        previous = None
        for key in self._sorted[low:high]:
            if key == previous:  # tombstoned duplicates collapse to one probe
                continue
            previous = key
            yield key
        yield from self._other

    def candidate_values(self, interval: _Interval, buckets: Dict[object, Dict]):
        """The slot's bound values admitted by *interval*, bucket-resolved.

        The sorted window yields float keys; the bucket dictionary's own
        hashing resolves them to the stored values (``3`` and ``3.0`` hash
        and compare alike), and every candidate -- windowed numerics and
        non-numeric leftovers -- is screened by ``_interval_excludes``
        exactly like the linear scan this replaces.

        A bucket is yielded at most once: a straggler that compares equal
        to a windowed numeric (``True`` vs ``1``, ``Decimal('3.5')`` vs
        ``3.5``) resolves to the *same* bucket dictionary, and the linear
        scan this replaces -- which iterated distinct bucket keys -- never
        returned a bucket twice.
        """
        emitted: set = set()
        for value in self.window(interval):
            if _interval_excludes(interval, value):
                continue
            members = buckets.get(value)
            if members:
                ident = id(members)
                if ident in emitted:
                    continue
                emitted.add(ident)
                yield from members.items()


class _RangePostings:
    """A sorted interval list for one per-position index slot.

    Holds the entries of the slot's *unbound* bucket that carry a numeric
    interval at the position, sorted by interval lower bound, so a probe for
    a value (or an overlap query) only scans the prefix whose lower bounds
    can admit it.  Entries without an interval stay in the plain unbound
    bucket and are returned by every probe, as before.  Removals tombstone;
    the list is compacted once tombstones dominate.
    """

    __slots__ = ("_items", "_bounds", "_dead", "_counter")

    def __init__(self) -> None:
        #: ``(low, low_strict_rank, tiebreak, key)`` sorted ascending.  The
        #: monotonic tiebreak keeps tuples comparable (keys never compared),
        #: makes the order deterministic for equal lower bounds, and -- held
        #: alongside the bounds entry -- identifies the one live item of a
        #: key, so stale items from remove/re-add cycles are recognized by
        #: both the scans and the compaction.
        self._items: List[Tuple[float, int, int, object]] = []
        self._bounds: Dict[object, Tuple[_Interval, ViewEntry, int]] = {}
        self._dead = 0
        self._counter = 0

    def __len__(self) -> int:
        return len(self._bounds)

    def __contains__(self, key: object) -> bool:
        return key in self._bounds

    def copy(self) -> "_RangePostings":
        dup = _RangePostings.__new__(_RangePostings)
        dup._items = list(self._items)
        dup._bounds = dict(self._bounds)
        dup._dead = self._dead
        dup._counter = self._counter
        return dup

    def add(self, key: object, entry: ViewEntry, interval: _Interval) -> None:
        if key in self._bounds:
            self.remove(key)
        self._counter += 1
        self._bounds[key] = (interval, entry, self._counter)
        bisect.insort(
            self._items,
            (interval.low, int(interval.low_strict), self._counter, key),
        )

    def remove(self, key: object) -> None:
        if self._bounds.pop(key, None) is None:
            return
        self._dead += 1
        if self._dead > len(self._bounds) and self._dead > 8:
            self._compact()

    def _compact(self) -> None:
        live = {counter for _, _, counter in self._bounds.values()}
        self._items = [item for item in self._items if item[2] in live]
        self._dead = 0

    def _scan(self, upper: float) -> Iterator[Tuple[object, _Interval, ViewEntry]]:
        """Live postings whose lower bound is at most *upper*.

        A key removed and re-added leaves its old sort item as a tombstone
        next to the fresh one; matching the item's tiebreak against the
        live posting's yields each key exactly once, from the item carrying
        the authoritative interval.
        """
        limit = bisect.bisect_right(self._items, (upper, 2))
        for _, _, counter, key in self._items[:limit]:
            found = self._bounds.get(key)
            if found is None or found[2] != counter:
                continue
            yield key, found[0], found[1]

    def probe_value(self, value: object) -> List[Tuple[object, ViewEntry]]:
        """Entries whose interval can admit *value* (conservative for bools)."""
        if isinstance(value, bool):
            # Mirror the quick-reject pre-filter: the solver coerces bools in
            # numeric comparisons, so range postings venture no opinion.
            return self.entries()
        if not isinstance(value, (int, float)):
            # Non-numeric values can only satisfy trivial intervals, and
            # trivial intervals are never posted -- nothing matches.
            return []
        try:
            upper = float(value)
        except OverflowError:
            # int beyond float range: scan everything; the exact
            # containment filter below still decides precisely (Python
            # compares big ints against floats without converting).
            upper = float("inf")
        return [
            (key, entry)
            for key, interval, entry in self._scan(upper)
            if not _interval_excludes(interval, value)
        ]

    def probe_overlap(self, query: _Interval) -> List[Tuple[object, ViewEntry]]:
        """Entries whose interval overlaps *query*."""
        return [
            (key, entry)
            for key, interval, entry in self._scan(query.high)
            if not _intervals_disjoint(interval, query)
        ]

    def entries(self) -> List[Tuple[object, ViewEntry]]:
        """All live ``(key, entry)`` postings, in no particular order."""
        return [(key, entry) for key, (_, entry, _) in self._bounds.items()]

    def snapshot_rows(self) -> List[Tuple[str, str]]:
        """Canonical ``(interval repr, entry key)`` rows for the tests."""
        rows = []
        for key, (interval, _, _) in self._bounds.items():
            lo = "(" if interval.low_strict else "["
            hi = ")" if interval.high_strict else "]"
            rows.append((f"{lo}{interval.low}, {interval.high}{hi}", str(key)))
        return rows


class _ArgSlot:
    """Argument-index state of one argument position inside one shard.

    Bundling the per-position bound buckets, unbound bucket, range postings
    and sorted value window into one object gives lazy index builds an
    atomic publication point: a build constructs a *complete* replacement
    slot and swaps it in with a single assignment, so a concurrent reader
    holding the old slot object always sees a consistent (postings-free,
    unbound-complete) superset state.  Shared shards are read-only apart
    from these swaps -- writers always operate on a copy-on-write clone --
    which is what makes the stream scheduler's parallel units safe without
    per-probe locking.
    """

    __slots__ = ("bound", "unbound", "postings", "postings_gate", "window")

    def __init__(self) -> None:
        #: bound value -> {entry key -> entry}
        self.bound: Dict[object, Dict[object, ViewEntry]] = {}
        #: entry key -> entry (position not pinned, no posted interval)
        self.unbound: Dict[object, ViewEntry] = {}
        self.postings: Optional[_RangePostings] = None
        #: ``(evaluator, version token)`` the postings were built under.
        #: Kept on the slot -- not the shard -- so an evaluator change is
        #: handled per slot by one more atomic slot swap; shard-level gate
        #: fields would need a multi-step reset that a concurrent reader
        #: could observe half-done.
        self.postings_gate: Optional[Tuple[object, object]] = None
        self.window: Optional[_SortedValueWindow] = None

    def copy(self) -> "_ArgSlot":
        dup = _ArgSlot()
        dup.bound = {value: dict(members) for value, members in self.bound.items()}
        dup.unbound = dict(self.unbound)
        dup.postings = self.postings.copy() if self.postings is not None else None
        dup.postings_gate = self.postings_gate
        dup.window = self.window.copy() if self.window is not None else None
        return dup


class PredicateShard:
    """Entries and indexes of one predicate.

    Everything the monolithic view used to keep in global maps keyed by
    ``(predicate, ...)`` lives here scoped to a single predicate: the
    insertion-ordered entry sequence, the per-support groups, the
    child-support -> parent index, and the per-position argument slots
    (bound-value buckets, unbound bucket, range postings, sorted value
    window).  The façade owns the cross-predicate glue -- global sequence
    numbers (kept in ``_seq`` here, allocated by the façade) and the merge
    of per-shard answers for support lookups and snapshots.

    Mutating methods must only be called on shards the owning view has
    checked out (see :meth:`MaterializedView._writable_shard`); read paths
    may run concurrently on shared shards, and every lazy index build
    publishes fully-built state with a single atomic assignment.
    """

    __slots__ = (
        "predicate",
        "_entries",
        "_by_support",
        "_child_index",
        "_arg",
        "_seq",
        "_shared",
    )

    def __init__(self, predicate: str) -> None:
        self.predicate = predicate
        self._entries = _IndexedSlots()
        self._by_support: Dict[Support, _IndexedSlots] = {}
        #: ``None`` until the first :meth:`parents_of` probe builds it; after
        #: that it is maintained incrementally by every mutation.
        self._child_index: Optional[Dict[Support, _IndexedSlots]] = None
        self._arg: Dict[int, _ArgSlot] = {}
        #: entry key -> global sequence number (façade-allocated).
        self._seq: Dict[object, int] = {}
        #: Sanitizer flag: set (only while ``REPRO_SHARD_SANITIZER`` is on)
        #: when another view may reference this shard; armed shards refuse
        #: mutation until copy-on-write clones them.
        self._shared = False

    # ------------------------------------------------------------------
    # Container basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._entries)

    def contains_key(self, key: object) -> bool:
        return key in self._entries

    def to_tuple(self) -> Tuple[ViewEntry, ...]:
        return self._entries.to_tuple()

    def copy(self) -> "PredicateShard":
        dup = PredicateShard(self.predicate)
        dup._entries = self._entries.copy()
        dup._by_support = {
            support: group.copy() for support, group in self._by_support.items()
        }
        if self._child_index is not None:
            dup._child_index = {
                child: group.copy() for child, group in self._child_index.items()
            }
        dup._arg = {position: slot.copy() for position, slot in self._arg.items()}
        dup._seq = dict(self._seq)
        return dup

    def _reject_shared_write(self) -> None:
        """Sanitizer trip: a mutator ran on a shard another view references.

        Only reachable while ``REPRO_SHARD_SANITIZER`` armed the flag at
        share time: every legal write path goes through the façade's
        copy-on-write (:meth:`MaterializedView._writable_shard`), which
        clones a borrowed shard -- and the clone is private -- before
        mutating it.
        """
        raise ShardSanitizerError(
            f"mutation of shared shard {self.predicate!r}: the shard is "
            "referenced by a published view; writes must go through a "
            "checked-out copy (copy-on-write), not the shared pointer"
        )

    # ------------------------------------------------------------------
    # Mutation (writable shards only)
    # ------------------------------------------------------------------
    def add(self, key: object, entry: ViewEntry) -> None:
        if self._shared:
            self._reject_shared_write()
        self._entries.add(key, entry)
        group = self._by_support.get(entry.support)
        if group is None:
            group = self._by_support[entry.support] = _IndexedSlots()
        group.add(key, entry)
        if self._child_index is not None:
            for child in dict.fromkeys(entry.support.children):
                parents = self._child_index.get(child)
                if parents is None:
                    parents = self._child_index[child] = _IndexedSlots()
                parents.add(key, entry)
        self._index_arguments(key, entry)

    def remove(self, key: object, entry: ViewEntry) -> None:
        if self._shared:
            self._reject_shared_write()
        self._entries.remove(key)
        self._by_support[entry.support].remove(key)
        if self._child_index is not None:
            for child in dict.fromkeys(entry.support.children):
                self._child_index[child].remove(key)
        self._unindex_arguments(key, entry)

    def replace(
        self, old_key: object, new_key: object, old: ViewEntry, new: ViewEntry
    ) -> None:
        """Swap *old* for *new* in place (same predicate, slot preserved)."""
        if self._shared:
            self._reject_shared_write()
        self._entries.replace(old_key, new_key, new)
        group = self._by_support[old.support]
        if new.support == old.support:
            group.replace(old_key, new_key, new)
            if self._child_index is not None:
                for child in dict.fromkeys(old.support.children):
                    self._child_index[child].replace(old_key, new_key, new)
        else:  # pragma: no cover - algorithms never change the support
            group.remove(old_key)
            fresh = self._by_support.setdefault(new.support, _IndexedSlots())
            fresh.add(new_key, new)
            if self._child_index is not None:
                for child in dict.fromkeys(old.support.children):
                    self._child_index[child].remove(old_key)
                for child in dict.fromkeys(new.support.children):
                    self._child_index.setdefault(child, _IndexedSlots()).add(
                        new_key, new
                    )
        self._unindex_arguments(old_key, old)
        self._index_arguments(new_key, new)

    # ------------------------------------------------------------------
    # Support lookups
    # ------------------------------------------------------------------
    def first_by_support(self, support: Support) -> Optional[ViewEntry]:
        group = self._by_support.get(support)
        return group.first() if group is not None else None

    def all_by_support(self, support: Support) -> Tuple[ViewEntry, ...]:
        group = self._by_support.get(support)
        return group.to_tuple() if group is not None else ()

    def parents_of(self, support: Support) -> Tuple[ViewEntry, ...]:
        index = self._ensure_child_index()
        group = index.get(support)
        return group.to_tuple() if group is not None else ()

    def _ensure_child_index(self) -> Dict[Support, _IndexedSlots]:
        """Build the child-support index on first use (lazy, then live).

        The index is assembled fully before the single publishing
        assignment, so concurrent readers of a shared shard either see the
        complete index or build their own identical one.
        """
        index = self._child_index
        if index is None:
            index = {}
            for entry in self._entries:
                key = entry.key()
                for child in dict.fromkeys(entry.support.children):
                    parents = index.get(child)
                    if parents is None:
                        parents = index[child] = _IndexedSlots()
                    parents.add(key, entry)
            self._child_index = index
        return index

    # ------------------------------------------------------------------
    # Argument index
    # ------------------------------------------------------------------
    def _index_arguments(self, key: object, entry: ViewEntry) -> None:
        for position, value in enumerate(entry.bound_args()):
            slot = self._arg.get(position)
            if slot is None:
                slot = self._arg[position] = _ArgSlot()
            if value is UNBOUND:
                if slot.postings is not None:
                    gate = slot.postings_gate or (None, None)
                    interval = entry.arg_intervals(gate[0], gate[1])[position]
                    if interval is not None:
                        slot.postings.add(key, entry, interval)
                        continue
                slot.unbound[key] = entry
                continue
            try:
                slot.bound.setdefault(value, {})[key] = entry
                if slot.window is not None:
                    slot.window.add(value)
            except TypeError:  # unhashable constant: keep it probe-visible
                slot.unbound[key] = entry

    def _unindex_arguments(self, key: object, entry: ViewEntry) -> None:
        for position, value in enumerate(entry.bound_args()):
            slot = self._arg.get(position)
            if slot is None:  # pragma: no cover - slots exist for all positions
                continue
            if value is not UNBOUND:
                try:
                    members = slot.bound.get(value)
                    if members is not None and key in members:
                        del members[key]
                        if not members:
                            del slot.bound[value]
                            if slot.window is not None:
                                slot.window.discard(value)
                        continue
                except TypeError:
                    pass  # was filed under the unbound bucket on the way in
            if slot.unbound.pop(key, None) is not None:
                continue
            if slot.postings is not None:
                slot.postings.remove(key)

    def probe(self, position: int, value: object) -> Optional[Tuple[ViewEntry, ...]]:
        """Entries that can carry *value* at *position* (``None``: fall back).

        Returns ``None`` for unhashable values, telling the façade to fall
        back to the full per-predicate pool.
        """
        slot = self._arg.get(position)
        if slot is None:
            return ()
        try:
            matched = slot.bound.get(value)
        except TypeError:
            return None
        candidates = list(matched.items()) if matched else []
        if slot.unbound:
            candidates.extend(slot.unbound.items())
        if slot.postings is not None:
            # A range-unaware probe must stay a superset: posted entries are
            # returned unfiltered, exactly as if they still sat in the
            # unbound bucket.
            candidates.extend(slot.postings.entries())
        return self._ordered(candidates)

    def probe_range(
        self,
        position: int,
        query: object,
        evaluator: Optional[object],
        token: object,
    ) -> Optional[Tuple[ViewEntry, ...]]:
        """Range-aware probe (``None``: fall back to the full pool)."""
        if isinstance(query, IntervalQuery):
            interval = query.as_interval()
            slot = self._ensure_postings(position, evaluator, token)
            if slot is None:
                return ()
            candidates: List[Tuple[object, ViewEntry]] = []
            if slot.bound:
                # Bisected window over the slot's sorted distinct bound
                # values (plus the not-exactly-floatable stragglers,
                # screened exactly like the linear scan this replaced) --
                # logarithmic in the number of distinct values instead of
                # linear.
                window = self._ensure_window(slot)
                candidates.extend(window.candidate_values(interval, slot.bound))
            candidates.extend(slot.postings.probe_overlap(interval))
        else:
            probe_slot = self._arg.get(position)
            if probe_slot is None:
                return ()
            try:
                matched = probe_slot.bound.get(query)
            except TypeError:
                return None
            slot = self._ensure_postings(position, evaluator, token)
            candidates = list(matched.items()) if matched else []
            if slot is not None and slot.postings is not None:
                candidates.extend(slot.postings.probe_value(query))
            if slot is None:  # pragma: no cover - slot existed above
                slot = probe_slot
        if slot.unbound:
            candidates.extend(slot.unbound.items())
        return self._ordered(candidates)

    def _ordered(
        self, candidates: List[Tuple[object, ViewEntry]]
    ) -> Tuple[ViewEntry, ...]:
        # A sort (not a two-bucket merge) is required for correctness:
        # ``replace`` keeps the old sequence number but re-files the entry at
        # the end of its dict bucket, so bucket order alone is not sequence
        # order.  Timsort is adaptive, so the common nearly-sorted case
        # stays effectively linear.
        sequence = self._seq
        candidates.sort(key=lambda item: sequence[item[0]])
        return tuple(entry for _, entry in candidates)

    @staticmethod
    def _ensure_window(slot: _ArgSlot) -> _SortedValueWindow:
        """Build (or fetch) the slot's sorted bound-value window.

        Built fully, then published with one assignment; duplicate builds by
        concurrent readers produce identical windows (last write wins).
        """
        window = slot.window
        if window is None:
            window = _SortedValueWindow()
            for value in slot.bound:
                window.add(value)
            slot.window = window
        return window

    def _ensure_postings(
        self, position: int, evaluator: Optional[object], token: object = _NO_TOKEN
    ) -> Optional[_ArgSlot]:
        """Build (or fetch) the range postings of one argument slot.

        Gated on the evaluator's identity *and* its version token: a
        different evaluator could resolve ``index_interval`` hooks
        differently, and re-registering a function on the same registry
        installs a different hook (the token changes, exactly like the
        solver's external memo gating) -- either way the slot's postings
        rebuild from scratch before they can serve stale intervals.

        The gate lives on the slot itself (``postings_gate``), so both the
        first build and an evaluator-change rebuild are one and the same
        operation: construct a complete replacement ``_ArgSlot`` (stale
        postings dissolved, fresh postings populated, unbound bucket drained
        of posted entries, gate recorded) and swap it in with a single
        assignment.  Concurrent readers of a shared shard always see either
        the previous complete state or the new complete state -- never a
        half-drained bucket or a slot whose postings disagree with a
        shard-level gate field.
        """
        if token is _NO_TOKEN:
            token = evaluator_token(evaluator)
        slot = self._arg.get(position)
        if slot is None:
            return None
        if slot.postings is not None:
            gate = slot.postings_gate
            if gate is not None and gate[0] is evaluator and gate[1] == token:
                return slot
        unbound = dict(slot.unbound)
        if slot.postings is not None:
            # Stale evaluator/token: dissolve the old postings back into the
            # unbound pool and re-post under the new hooks.
            for key, entry in slot.postings.entries():
                unbound[key] = entry
        postings = _RangePostings()
        remaining: Dict[object, ViewEntry] = {}
        for key, entry in unbound.items():
            interval = entry.arg_intervals(evaluator, token)[position]
            if interval is not None:
                postings.add(key, entry, interval)
            else:
                remaining[key] = entry
        fresh = _ArgSlot()
        fresh.bound = slot.bound
        fresh.unbound = remaining
        fresh.postings = postings
        fresh.postings_gate = (evaluator, token)
        fresh.window = slot.window
        self._arg[position] = fresh
        return fresh

    # ------------------------------------------------------------------
    # Snapshot rows (merged and sorted by the façade)
    # ------------------------------------------------------------------
    def argument_rows(self) -> List[Tuple[str, int, str, Tuple[str, ...]]]:
        rows = []
        for position, slot in self._arg.items():
            for value, members in slot.bound.items():
                rows.append(
                    (
                        self.predicate,
                        position,
                        repr(value),
                        tuple(sorted(str(key) for key in members)),
                    )
                )
            # Entries moved into range postings still belong to the unbound
            # partition of the value index; merging them back here keeps the
            # snapshot independent of whether a slot's postings were built.
            unbound_keys = [str(key) for key in slot.unbound]
            if slot.postings is not None:
                unbound_keys.extend(str(key) for key, _ in slot.postings.entries())
            if unbound_keys:
                rows.append(
                    (self.predicate, position, "<unbound>", tuple(sorted(unbound_keys)))
                )
        return rows

    def posting_rows(self) -> List[Tuple[str, int, str, str]]:
        rows = []
        for position, slot in self._arg.items():
            if slot.postings is None:
                continue
            for interval_repr, key_repr in slot.postings.snapshot_rows():
                rows.append((self.predicate, position, interval_repr, key_repr))
        return rows

    def built_postings(self) -> Dict[int, _RangePostings]:
        """Positions with built range postings (tests and compat accessors)."""
        return {
            position: slot.postings
            for position, slot in self._arg.items()
            if slot.postings is not None
        }

    def built_windows(self) -> Dict[int, _SortedValueWindow]:
        """Positions with built value windows (tests and compat accessors)."""
        return {
            position: slot.window
            for position, slot in self._arg.items()
            if slot.window is not None
        }


class MaterializedView:
    """An insertion-ordered collection of :class:`ViewEntry` objects.

    The container deduplicates on ``(atom, canonical constraint, support)``;
    two entries with the same constrained atom but different supports are
    *both* kept, which is exactly the paper's duplicate semantics.

    Storage is a copy-on-write façade over per-predicate
    :class:`PredicateShard` objects.  ``copy()`` shares every shard pointer
    (both views mark their shards borrowed); the first mutation of a
    predicate clones just that predicate's shard, so a maintenance pass pays
    copy cost proportional to the predicates it touches, not the view.
    Global insertion order is preserved across shards through per-entry
    sequence numbers allocated by the façade.

    Four index families back each shard: the key index (membership,
    removal), the insertion-ordered entry sequence (the fixpoint operators'
    join pools), a per-support index (StDel's re-fetch of replaced entries)
    and a child-support index mapping each *direct premise* support to the
    parent entries whose derivation used it (StDel's upward propagation), so
    ``remove``, ``replace``, ``__contains__``, ``find_by_support`` and
    ``find_parents_of`` stay O(1) in the shard (support lookups merge the
    handful of shards).
    """

    def __init__(self, entries: Iterable[ViewEntry] = ()) -> None:
        self._shards: Dict[str, PredicateShard] = {}
        #: Predicates whose shard object may be shared with another view;
        #: writing one of these first clones it (copy-on-write).
        self._borrowed: Set[str] = set()
        #: When set (by :meth:`checkout`), writes outside these predicates
        #: raise -- the stream scheduler's guard that a parallel unit never
        #: writes a shard its publish step would not adopt.
        self._write_scope: Optional[FrozenSet[str]] = None
        self._next_seq = 0
        #: Shards cloned by copy-on-write since this lineage started
        #: (carried through ``copy()``; the scheduler reports deltas).
        self._shard_checkouts = 0
        #: Memoized global-order entry tuple; dropped by every mutation.
        self._entries_cache: Optional[Tuple[ViewEntry, ...]] = None
        #: Support -> owning predicate (``None`` = several predicates have
        #: carried it, e.g. the shared external support 0).  Shared *by
        #: reference* across the whole copy lineage and append-only, so it
        #: is a superset hint: a recorded predicate may no longer hold the
        #: support (harmless -- the shard probe answers), but a support
        #: carried by any entry of this lineage is always recorded.
        self._support_hints: Dict[Support, Optional[str]] = {}
        #: Child support -> predicates whose entries ever used it as a
        #: direct premise (same lineage-shared superset discipline).
        self._parent_hints: Dict[Support, Set[str]] = {}
        for entry in entries:
            self.add(entry)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._sorted_entries())

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    def __contains__(self, entry: ViewEntry) -> bool:
        shard = self._shards.get(entry.predicate)
        return shard is not None and shard.contains_key(entry.key())

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self)

    def copy(self) -> "MaterializedView":
        """Return an independent copy (copy-on-write: shards are shared
        until either side writes them)."""
        dup = MaterializedView.__new__(MaterializedView)
        dup._shards = dict(self._shards)
        dup._borrowed = set(self._shards)
        dup._write_scope = self._write_scope
        dup._next_seq = self._next_seq
        dup._shard_checkouts = self._shard_checkouts
        # Same entries, same order: the copy can start from the memo.
        dup._entries_cache = self._entries_cache
        # Hints are shared by reference across the lineage (append-only
        # supersets; see __init__), so copies stay O(#shards).
        dup._support_hints = self._support_hints
        dup._parent_hints = self._parent_hints
        # The original must treat its shards as shared from now on too:
        # a later write on either side clones before mutating.
        self._borrowed.update(self._shards)
        if sanitizer_enabled():
            for shard in self._shards.values():
                shard._shared = True
        return dup

    def checkout(self, predicates: Iterable[str]) -> "MaterializedView":
        """A copy-on-write copy whose writes are fenced to *predicates*.

        The stream scheduler checks out a unit's write closure before
        applying it: the unit's maintenance pass clones exactly the shards
        it touches (all inside the closure -- anything else raises
        :class:`~repro.errors.ProgramError`), and publishing adopts those
        shard pointers back into the next published view.  A write outside
        the closure would be silently dropped by that adoption, so the fence
        turns the bug into a loud failure.
        """
        dup = self.copy()
        dup._write_scope = frozenset(predicates)
        return dup

    def without_write_scope(self) -> "MaterializedView":
        """This view with the checkout fence removed (copy-on-write copy)."""
        if self._write_scope is None:
            return self
        dup = self.copy()
        dup._write_scope = None
        return dup

    @property
    def shard_checkouts(self) -> int:
        """Copy-on-write shard clones made by this view's lineage so far."""
        return self._shard_checkouts

    def _writable_shard(self, predicate: str) -> PredicateShard:
        if self._write_scope is not None and predicate not in self._write_scope:
            raise WriteScopeError(
                f"write to predicate {predicate!r} outside this view's "
                f"checkout scope {sorted(self._write_scope)}"
            )
        shard = self._shards.get(predicate)
        if shard is None:
            shard = self._shards[predicate] = PredicateShard(predicate)
            return shard
        if predicate in self._borrowed:
            shard = shard.copy()
            self._shards[predicate] = shard
            self._borrowed.discard(predicate)
            self._shard_checkouts += 1
        return shard

    def adopt_shards(
        self, source: "MaterializedView", predicates: Iterable[str]
    ) -> None:
        """Take *source*'s shard pointers for *predicates* (publish step).

        This is the stream scheduler's merge-free publication: a unit that
        rewrote its write closure hands the closure's shards over by
        pointer; untouched predicates keep the base shards.  Both views mark
        the adopted shards borrowed, and the sequence counter advances past
        *source*'s so later insertions cannot collide.
        """
        armed = sanitizer_enabled()
        for predicate in predicates:
            shard = source._shards.get(predicate)
            if shard is None:
                self._shards.pop(predicate, None)
                self._borrowed.discard(predicate)
                continue
            self._shards[predicate] = shard
            self._borrowed.add(predicate)
            source._borrowed.add(predicate)
            if armed:
                shard._shared = True
        if source._next_seq > self._next_seq:
            self._next_seq = source._next_seq
        if source._support_hints is not self._support_hints:
            # Foreign lineage: fold its hints into ours (supersets union).
            for support, predicate in source._support_hints.items():
                known = self._support_hints.setdefault(support, predicate)
                if known is not None and known != predicate:
                    self._support_hints[support] = None
            for support, owners in source._parent_hints.items():
                self._parent_hints.setdefault(support, set()).update(owners)
        self._entries_cache = None

    def assert_publish_scope(
        self, base: "MaterializedView", allowed: Iterable[str]
    ) -> None:
        """Sanitizer check: this view diverges from *base* only in *allowed*.

        Run by the stream scheduler immediately before a scoped
        ``adopt_shards`` publish.  A shard pointer that differs from the
        base's outside the unit's declared write closure is a torn publish
        in the making -- the adoption would silently drop that write -- so
        it raises :class:`~repro.errors.ShardSanitizerError` instead.
        """
        allowed_set = set(allowed)
        for predicate, shard in self._shards.items():
            if predicate in allowed_set:
                continue
            if base._shards.get(predicate) is not shard:
                raise ShardSanitizerError(
                    f"torn publish: shard {predicate!r} was rewritten outside "
                    f"the declared write closure {sorted(allowed_set)}"
                )
        for predicate in base._shards:
            if predicate not in allowed_set and predicate not in self._shards:
                raise ShardSanitizerError(
                    f"torn publish: shard {predicate!r} was dropped outside "
                    f"the declared write closure {sorted(allowed_set)}"
                )

    # ------------------------------------------------------------------
    # Shard export / import (the durability layer's codec surface)
    # ------------------------------------------------------------------
    def export_shard_rows(
        self, predicate: str
    ) -> Tuple[Tuple[ViewEntry, int], ...]:
        """One predicate's entries in insertion order with their global
        sequence numbers -- everything a shard codec needs to persist.
        Indexes are deliberately absent: they rebuild lazily on load."""
        shard = self._shards.get(predicate)
        if shard is None:
            return ()
        sequence = shard._seq
        return tuple((entry, sequence[entry.key()]) for entry in shard)

    def import_shard_rows(
        self, predicate: str, rows: Iterable[Tuple["ViewEntry", int]]
    ) -> int:
        """Rebuild one predicate's shard from exported ``(entry, seq)`` rows.

        The recovery path's inverse of :meth:`export_shard_rows`: entries
        are added in the stored order and keep their *original* sequence
        numbers, so the reloaded view's global iteration order -- and its
        re-encoded bytes -- are identical to the persisted ones.  The view
        must not already hold the predicate (recovery builds into an empty
        view); duplicate keys within the rows are rejected."""
        existing = self._shards.get(predicate)
        if existing is not None and len(existing):
            raise ProgramError(
                f"cannot import shard {predicate!r}: the view already holds "
                "entries for it"
            )
        shard = self._writable_shard(predicate)
        imported = 0
        for entry, seq in rows:
            if not isinstance(entry, ViewEntry):
                raise ProgramError(f"not a view entry: {entry!r}")
            if entry.predicate != predicate:
                raise ProgramError(
                    f"entry for {entry.predicate!r} cannot be imported into "
                    f"shard {predicate!r}"
                )
            if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
                raise ProgramError(
                    f"sequence number must be a non-negative int: {seq!r}"
                )
            key = entry.key()
            if shard.contains_key(key):
                raise ProgramError(
                    f"duplicate entry key in imported shard {predicate!r}: {entry}"
                )
            shard._seq[key] = seq
            shard.add(key, entry)
            self._record_support_hints(entry)
            if seq >= self._next_seq:
                self._next_seq = seq + 1
            imported += 1
        self._entries_cache = None
        return imported

    def next_sequence_number(self) -> int:
        """The façade's sequence counter (persisted in snapshot manifests)."""
        return self._next_seq

    def advance_sequence_number(self, floor: int) -> None:
        """Raise the sequence counter to at least *floor* (recovery only)."""
        if floor > self._next_seq:
            self._next_seq = floor

    def _sorted_entries(self) -> Tuple[ViewEntry, ...]:
        """All entries in global insertion order (sequence-number merge).

        Memoized until the next mutation: iteration runs on hot per-batch
        paths (working-copy snapshots, purges, instance queries) and the
        entry set only changes through ``add`` / ``remove`` / ``replace`` /
        ``adopt_shards``, each of which drops the cache.
        """
        cached = self._entries_cache
        if cached is not None:
            return cached
        self._entries_cache = merged = self._merge_entries()
        return merged

    def _merge_entries(self) -> Tuple[ViewEntry, ...]:
        shards = [shard for shard in self._shards.values() if len(shard)]
        if not shards:
            return ()
        if len(shards) == 1:
            return shards[0].to_tuple()
        decorated: List[Tuple[int, str, ViewEntry]] = []
        for shard in shards:
            sequence = shard._seq
            predicate = shard.predicate
            decorated.extend(
                (sequence[entry.key()], predicate, entry) for entry in shard
            )
        # Sequence numbers are unique within one lineage; after a parallel
        # publish adopted shards from sibling units they can collide across
        # predicates, so the predicate tiebreak keeps the order total and
        # deterministic.
        decorated.sort(key=lambda item: (item[0], item[1]))
        return tuple(item[2] for item in decorated)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, entry: ViewEntry) -> bool:
        """Add an entry; return False when an identical entry already exists."""
        if not isinstance(entry, ViewEntry):
            raise ProgramError(f"not a view entry: {entry!r}")
        key = entry.key()
        existing = self._shards.get(entry.predicate)
        if existing is not None and existing.contains_key(key):
            return False
        shard = self._writable_shard(entry.predicate)
        if key not in shard._seq:
            shard._seq[key] = self._next_seq
            self._next_seq += 1
        shard.add(key, entry)
        self._record_support_hints(entry)
        self._entries_cache = None
        return True

    def _record_support_hints(self, entry: ViewEntry) -> None:
        """File the entry's support (and premises) in the lineage hints.

        Individual dict/set operations are atomic under the GIL, so
        concurrent stratum units can record into the shared hints safely;
        a same-support race across predicates at worst records ``None``
        (the "several owners" sentinel), which only widens a later probe.
        """
        support = entry.support
        known = self._support_hints.setdefault(support, entry.predicate)
        if known is not None and known != entry.predicate:
            self._support_hints[support] = None
        children = support.children
        if children:
            parents = self._parent_hints
            for child in dict.fromkeys(children):
                owners = parents.get(child)
                if owners is None:
                    owners = parents.setdefault(child, set())
                owners.add(entry.predicate)

    def add_all(self, entries: Iterable[ViewEntry]) -> int:
        """Add several entries; return how many were actually new."""
        return sum(1 for entry in entries if self.add(entry))

    def remove(self, entry: ViewEntry) -> bool:
        """Remove an entry; return False when it was not present."""
        key = entry.key()
        existing = self._shards.get(entry.predicate)
        if existing is None or not existing.contains_key(key):
            return False
        shard = self._writable_shard(entry.predicate)
        shard.remove(key, entry)
        shard._seq.pop(key, None)
        self._entries_cache = None
        return True

    def replace(self, old: ViewEntry, new: ViewEntry) -> bool:
        """Replace *old* by *new* in place (preserving insertion order).

        Returns True when the slot was replaced.  When *new*'s key already
        belongs to a *different* entry the two entries are identical by the
        container's own dedup criterion (atom, canonical constraint and
        support all match), so they are merged instead: *old* is removed,
        the existing entry stays, and False is returned.  The previous
        implementation silently reused the key for two list positions, and
        a later ``remove`` of either entry dropped both from the key index.
        """
        old_key = old.key()
        existing = self._shards.get(old.predicate)
        if existing is None or not existing.contains_key(old_key):
            raise ProgramError(f"entry not in view: {old}")
        new_key = new.key()
        if new.predicate == old.predicate:
            if new_key != old_key and existing.contains_key(new_key):
                self.remove(old)
                return False
            shard = self._writable_shard(old.predicate)
            sequence = shard._seq.pop(old_key, None)
            if sequence is None:
                sequence = self._next_seq
                self._next_seq += 1
            shard._seq[new_key] = sequence
            shard.replace(old_key, new_key, old, new)
            self._record_support_hints(new)
            self._entries_cache = None
            return True
        else:  # pragma: no cover - algorithms never change the predicate
            target = self._shards.get(new.predicate)
            if target is not None and target.contains_key(new_key):
                self.remove(old)
                return False
            source = self._writable_shard(old.predicate)
            sequence = source._seq.pop(old_key, None)
            source.remove(old_key, old)
            shard = self._writable_shard(new.predicate)
            if sequence is None:
                sequence = self._next_seq
                self._next_seq += 1
            shard._seq[new_key] = sequence
            shard.add(new_key, new)
            self._record_support_hints(new)
            self._entries_cache = None
            return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Tuple[ViewEntry, ...]:
        """All entries in insertion order."""
        return self._sorted_entries()

    def entries_for(self, predicate: str) -> Tuple[ViewEntry, ...]:
        """Entries whose atom has the given predicate."""
        shard = self._shards.get(predicate)
        return shard.to_tuple() if shard is not None else ()

    def shard_for(self, predicate: str) -> Optional[PredicateShard]:
        """The predicate's shard, when it exists (read-only access)."""
        return self._shards.get(predicate)

    def predicates(self) -> Tuple[str, ...]:
        """Predicates that have at least one entry, sorted."""
        return tuple(
            sorted(name for name, shard in self._shards.items() if len(shard))
        )

    def constrained_atoms(self) -> Tuple[ConstrainedAtom, ...]:
        """All entries as constrained atoms (supports dropped)."""
        return tuple(entry.constrained_atom for entry in self)

    def find_by_support(self, support: Support) -> Optional[ViewEntry]:
        """Return the (first-inserted) entry carrying exactly this support.

        The lineage's support hints usually name the one shard that can
        hold the support, so the probe is O(1) instead of per-shard; the
        ``None`` sentinel (several predicates have carried the support,
        e.g. the shared external support) falls back to the full merge.
        """
        hint = self._support_hints.get(support, _NO_HINT)
        if hint is _NO_HINT:
            return None  # no entry of this lineage ever carried the support
        if hint is not None:
            shard = self._shards.get(hint)
            return shard.first_by_support(support) if shard is not None else None
        best: Optional[ViewEntry] = None
        best_rank: Optional[Tuple[int, str]] = None
        for shard in self._shards.values():
            entry = shard.first_by_support(support)
            if entry is None:
                continue
            rank = (shard._seq[entry.key()], shard.predicate)
            if best_rank is None or rank < best_rank:
                best, best_rank = entry, rank
        return best

    def find_all_by_support(self, support: Support) -> Tuple[ViewEntry, ...]:
        """Every entry carrying exactly this support, in insertion order.

        Supports are unique in a freshly-computed fixpoint view, but not in
        general: all externally inserted atoms share the reserved clause
        number 0, and DRed rederivation can add a rederived twin alongside a
        narrowed entry.  Callers that reason about *all* derivations touching
        a support (the delta-rederivation seed) must use this, not
        :meth:`find_by_support`.
        """
        hint = self._support_hints.get(support, _NO_HINT)
        if hint is _NO_HINT:
            return ()
        if hint is not None:
            shard = self._shards.get(hint)
            return shard.all_by_support(support) if shard is not None else ()
        decorated: List[Tuple[int, str, ViewEntry]] = []
        for shard in self._shards.values():
            group = shard.all_by_support(support)
            if not group:
                continue
            sequence = shard._seq
            predicate = shard.predicate
            decorated.extend(
                (sequence[entry.key()], predicate, entry) for entry in group
            )
        decorated.sort(key=lambda item: (item[0], item[1]))
        return tuple(item[2] for item in decorated)

    def find_parents_of(self, support: Support) -> Tuple[ViewEntry, ...]:
        """Entries whose derivation used *support* as a direct premise.

        This is StDel step 3's probe: instead of scanning the whole view per
        ``P_OUT`` pair, the propagation asks the child-support index for
        exactly the parents the pair can affect.  Results come back in
        insertion order; entries replaced in place keep their slot.  The
        first probe builds a shard's index from its current entries;
        mutations maintain it incrementally after that.

        The lineage's parent hints name the predicates whose entries ever
        used *support* as a premise (a superset -- removals leave stale
        names behind), so only those shards are probed; most supports have
        no parents at all and return without touching any shard.
        """
        recorded = self._parent_hints.get(support)
        if recorded is None:
            return ()
        # Snapshot before iterating: the set is lineage-shared and another
        # unit's thread may be appending to it (tuple() runs atomically
        # under the GIL; plain iteration would not).
        owners = tuple(recorded)
        if len(owners) == 1:
            shard = self._shards.get(owners[0])
            return shard.parents_of(support) if shard is not None else ()
        candidates = [
            shard
            for owner in owners
            if (shard := self._shards.get(owner)) is not None
        ]
        decorated: List[Tuple[int, str, ViewEntry]] = []
        for shard in candidates:
            group = shard.parents_of(support)
            if not group:
                continue
            sequence = shard._seq
            predicate = shard.predicate
            decorated.extend(
                (sequence[entry.key()], predicate, entry) for entry in group
            )
        decorated.sort(key=lambda item: (item[0], item[1]))
        return tuple(item[2] for item in decorated)

    def child_support_snapshot(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """A canonical, comparable rendering of the child-support index.

        Each row is ``(child support, sorted parent entry keys)``; the
        property tests compare this against a brute-force scan of
        ``entries`` after random mutation sequences.  Builds the index if
        it has not been probed yet.
        """
        merged: Dict[str, List[str]] = {}
        for shard in self._shards.values():
            for child, group in shard._ensure_child_index().items():
                if len(group):
                    merged.setdefault(str(child), []).extend(
                        str(entry.key()) for entry in group
                    )
        return tuple(
            sorted((child, tuple(sorted(keys))) for child, keys in merged.items())
        )

    # ------------------------------------------------------------------
    # Hash-join argument index
    # ------------------------------------------------------------------
    def probe(
        self, predicate: str, position: int, value: object
    ) -> Tuple[ViewEntry, ...]:
        """Entries of *predicate* that can carry *value* at argument *position*.

        Returns the entries whose constraint pins the position to *value*
        plus every entry whose constraint leaves the position unbound -- a
        superset of the entries that can join with that binding, and usually
        a small fraction of the predicate's full pool.  Results come back in
        insertion order (matching the positional pools).  An unhashable
        *value* falls back to the full pool.
        """
        shard = self._shards.get(predicate)
        if shard is None:
            return ()
        result = shard.probe(position, value)
        if result is None:
            return shard.to_tuple()
        return result

    def probe_range(
        self,
        predicate: str,
        position: int,
        query: object,
        evaluator: Optional[object] = None,
        token: object = _NO_TOKEN,
    ) -> Tuple[ViewEntry, ...]:
        """Range-aware probe: *query* is a pinned value or an :class:`IntervalQuery`.

        Like :meth:`probe`, but entries whose constraint bounds the position
        into a numeric interval are consulted through the slot's range
        postings: a pinned value only returns the postings whose interval
        admits it, an interval query only those whose interval overlaps it.
        Entries with no interval at the position remain in the plain unbound
        bucket and are returned by every probe.  The result is still a
        superset of the entries that can join -- the interval is a
        time-invariant over-approximation of the position's admissible
        values -- just a tighter one than the unbound-bucket fallback.

        The first range-aware probe of a slot builds its postings from the
        unbound bucket (using *evaluator*'s ``index_interval`` hooks, when
        present); later mutations maintain them incrementally.  ``W_P``
        materialization never calls this, so under ``W_P`` the postings are
        never populated (Theorem 4's byte-invariance is untouched).
        """
        shard = self._shards.get(predicate)
        if shard is None:
            return ()
        if token is _NO_TOKEN:
            token = evaluator_token(evaluator)
        result = shard.probe_range(position, query, evaluator, token)
        if result is None:
            return shard.to_tuple()
        return result

    # ------------------------------------------------------------------
    # Test / compatibility accessors over the sharded index state
    # ------------------------------------------------------------------
    @property
    def _range_postings(self) -> Dict[Tuple[str, int], _RangePostings]:
        """Built range postings keyed by ``(predicate, position)``.

        Read-only compatibility accessor (the tests assert build/identity
        behaviour through it); the authoritative state lives in the shards.
        """
        found: Dict[Tuple[str, int], _RangePostings] = {}
        for shard in self._shards.values():
            for position, postings in shard.built_postings().items():
                found[(shard.predicate, position)] = postings
        return found

    @property
    def _arg_value_windows(self) -> Dict[Tuple[str, int], _SortedValueWindow]:
        """Built value windows keyed by ``(predicate, position)`` (read-only)."""
        found: Dict[Tuple[str, int], _SortedValueWindow] = {}
        for shard in self._shards.values():
            for position, window in shard.built_windows().items():
                found[(shard.predicate, position)] = window
        return found

    def range_posting_snapshot(
        self,
    ) -> Tuple[Tuple[str, int, str, str], ...]:
        """A canonical rendering of the built range postings.

        Each row is ``(predicate, position, interval, entry key)``.  Empty
        until the first range-aware probe -- the W_P invariance tests assert
        it *stays* empty under ``W_P`` materialization and source changes.
        """
        rows: List[Tuple[str, int, str, str]] = []
        for shard in self._shards.values():
            rows.extend(shard.posting_rows())
        return tuple(sorted(rows))

    def argument_index_snapshot(self) -> Tuple[Tuple[str, int, str, Tuple[str, ...]], ...]:
        """A canonical, comparable rendering of the argument index.

        Each row is ``(predicate, position, value-or-"<unbound>", entry
        keys)``; the W_P invariance tests compare snapshots byte-for-byte
        across external source changes (Theorem 4 extended to the indexes).
        """
        rows: List[Tuple[str, int, str, Tuple[str, ...]]] = []
        for shard in self._shards.values():
            rows.extend(shard.argument_rows())
        return tuple(sorted(rows))

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def instances(
        self,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[str, Tuple[object, ...]]]:
        """The ground instance set ``[M]`` of the whole view."""
        universe_values = list(universe) if universe is not None else None
        collected = set()
        for entry in self:
            collected.update(
                entry.constrained_atom.instances(solver=solver, universe=universe_values)
            )
        return frozenset(collected)

    def instances_for(
        self,
        predicate: str,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[object, ...]]:
        """Ground instances of one predicate (tuples only)."""
        universe_values = list(universe) if universe is not None else None
        collected = set()
        for entry in self.entries_for(predicate):
            for _, values in entry.constrained_atom.instances(
                solver=solver, universe=universe_values
            ):
                collected.add(values)
        return frozenset(collected)

    def same_instances(
        self,
        other: "MaterializedView",
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> bool:
        """Semantic comparison ``[self] == [other]`` (the paper's theorems)."""
        return self.instances(solver=solver, universe=universe) == other.instances(
            solver=solver, universe=universe
        )

    def prune_unsolvable(
        self,
        solver: ConstraintSolver,
        predicates: Optional[Iterable[str]] = None,
    ) -> int:
        """Drop entries whose constraint is unsatisfiable; return the count.

        StDel's final step ("remove any constraint atom from M whose
        constraint is not solvable") and W_P's query-time evaluation both use
        this operation.  With *predicates*, only those predicates' entries
        are scanned -- the stream scheduler passes a batch's write closure,
        outside of which a solvability-purged input view cannot have gained
        unsolvable entries, making the purge proportional to the batch's
        propagation cone instead of the view.
        """
        if predicates is None:
            candidates: Iterable[ViewEntry] = self
        else:
            candidates = (
                entry
                for predicate in sorted(set(predicates))
                for entry in self.entries_for(predicate)
            )
        doomed = [
            entry for entry in candidates if not solver.is_satisfiable(entry.constraint)
        ]
        for entry in doomed:
            self.remove(entry)
        return len(doomed)

    def is_duplicate_free(
        self,
        solver: ConstraintSolver,
        fresh_factory: Optional[FreshVariableFactory] = None,
    ) -> bool:
        """Check the duplicate-freeness condition of Section 3.1.

        The Extended DRed algorithm is "efficient when the mediated view is
        duplicate-free", i.e. for all distinct entries ``A(X̄) <- φ1`` and
        ``A(Ȳ) <- φ2`` of the same predicate the instance sets are disjoint.
        Disjointness of two entries is checked as unsatisfiability of
        ``φ1 & φ2' & (X̄ = Ȳ')`` with the second entry renamed apart.
        """
        factory = fresh_factory or FreshVariableFactory(
            variable.name for entry in self for variable in entry.constrained_atom.variables()
        )
        for predicate in self.predicates():
            bucket = self.entries_for(predicate)
            for index, first in enumerate(bucket):
                for second in bucket[index + 1:]:
                    renamed, _ = second.constrained_atom.renamed_apart(factory)
                    overlap = conjoin(
                        first.constraint,
                        renamed.constraint,
                        tuple_equalities(first.atom.args, renamed.atom.args),
                    )
                    if solver.is_satisfiable(overlap):
                        return False
        return True

    def head_variables(self) -> FrozenSet[Variable]:
        """All variables used in entry atoms (not constraints)."""
        found: set = set()
        for entry in self:
            found.update(entry.atom.variables())
        return frozenset(found)

    def all_variable_names(
        self, predicates: Optional[Iterable[str]] = None
    ) -> FrozenSet[str]:
        """Names of every variable in the view (atoms and constraints).

        With *predicates* the collection walks only those predicates'
        shards.  Callers that combine fresh variables exclusively with
        entries of a known predicate set (a maintenance pass scoped to a
        read closure) can reserve against just that set: a name clash with
        an entry the pass never reads is harmless, because constraint
        variables are scoped per entry.
        """
        if predicates is None:
            entries: Iterable[ViewEntry] = self
        else:
            entries = (
                entry
                for predicate in sorted(set(predicates))
                for entry in self.entries_for(predicate)
            )
        names: set = set()
        for entry in entries:
            names.update(v.name for v in entry.constrained_atom.variables())
        return frozenset(names)
