"""Materialized views as sets of supported constrained atoms.

A materialized mediated view is a set of constrained atoms (paper Section
2.3), kept under *duplicate semantics*: one entry per derivation, each entry
indexed by the support of its derivation (Section 3.1.2).  This module
provides the container used by the fixpoint operators, the maintenance
algorithms and the mediator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.constraints.ast import Constraint, conjoin, tuple_equalities
from repro.constraints.simplify import canonical_form, extract_bindings
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import Constant, FreshVariableFactory, Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.datalog.support import Support
from repro.errors import ProgramError


class _UnboundArgument:
    """Sentinel: an atom argument not pinned to a constant by the constraint."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


#: Marks argument positions whose value the constraint does not determine.
UNBOUND = _UnboundArgument()


def bound_argument_values(
    args: Sequence[object], constraint: Constraint
) -> Tuple[object, ...]:
    """Per-position constant values pinned by *constraint* (or :data:`UNBOUND`).

    Constant arguments are their own value; variable arguments take the value
    the constraint's top-level equalities pin them to, when any.  This is the
    per-position generalization of
    :meth:`~repro.datalog.atoms.ConstrainedAtom.bound_tuple` and feeds the
    hash-join argument index.
    """
    bindings = extract_bindings(constraint)
    values = []
    for arg in args:
        if isinstance(arg, Constant):
            values.append(arg.value)
        elif isinstance(arg, Variable) and arg in bindings:
            values.append(bindings[arg].value)
        else:
            values.append(UNBOUND)
    return tuple(values)


@dataclass(frozen=True)
class ViewEntry:
    """One view element: a constrained atom plus the support of its derivation."""

    atom: Atom
    constraint: Constraint
    support: Support

    @property
    def predicate(self) -> str:
        """Predicate name of the entry's atom."""
        return self.atom.predicate

    @property
    def constrained_atom(self) -> ConstrainedAtom:
        """The entry viewed as a constrained atom (dropping the support).

        Cached: join pools and renamed-premise caches rely on this being the
        same object on every access.
        """
        cached = self.__dict__.get("_cached_atom")
        if cached is None:
            cached = ConstrainedAtom(self.atom, self.constraint)
            object.__setattr__(self, "_cached_atom", cached)
        return cached

    def with_constraint(self, constraint: Constraint) -> "ViewEntry":
        """Return a copy with the constraint replaced (same atom, same support)."""
        return ViewEntry(self.atom, constraint, self.support)

    def bound_args(self) -> Tuple[object, ...]:
        """Per-position pinned constants (or :data:`UNBOUND`), cached.

        Purely syntactic (top-level equalities only), so the result is
        time-invariant even when the constraint mentions external domain
        calls -- which is what lets the ``W_P`` view's hash indexes stay
        byte-identical across source changes (Theorem 4).
        """
        cached = self.__dict__.get("_cached_bound_args")
        if cached is None:
            cached = bound_argument_values(self.atom.args, self.constraint)
            object.__setattr__(self, "_cached_bound_args", cached)
        return cached

    def key(self) -> Tuple[Atom, Constraint, Support]:
        """Deduplication key: atom, canonical constraint, support.

        The canonical form is computed once and cached on the entry: every
        membership test, add and remove goes through the key, and entries are
        immutable, so recomputing it per lookup was pure waste.
        """
        cached = self.__dict__.get("_cached_key")
        if cached is None:
            cached = (self.atom, canonical_form(self.constraint), self.support)
            object.__setattr__(self, "_cached_key", cached)
        return cached

    def __str__(self) -> str:
        return f"{self.atom} <- {self.constraint}   {self.support}"


class _IndexedSlots:
    """An insertion-ordered entry sequence with O(1) add/remove/replace.

    Entries live in a slot list; removal tombstones the slot and the list is
    compacted once tombstones dominate, so amortized cost stays O(1) while
    insertion order (and the position of in-place replacements) is preserved.
    """

    __slots__ = ("_slots", "_pos", "_dead")

    def __init__(self) -> None:
        self._slots: List[Optional[ViewEntry]] = []
        self._pos: Dict[object, int] = {}
        self._dead = 0

    def __len__(self) -> int:
        return len(self._pos)

    def __iter__(self) -> Iterator[ViewEntry]:
        for entry in self._slots:
            if entry is not None:
                yield entry

    def __contains__(self, key: object) -> bool:
        return key in self._pos

    def add(self, key: object, entry: ViewEntry) -> None:
        self._pos[key] = len(self._slots)
        self._slots.append(entry)

    def remove(self, key: object) -> None:
        index = self._pos.pop(key)
        self._slots[index] = None
        self._dead += 1
        if self._dead > len(self._pos) and self._dead > 8:
            self._compact()

    def replace(self, old_key: object, new_key: object, entry: ViewEntry) -> None:
        index = self._pos.pop(old_key)
        self._pos[new_key] = index
        self._slots[index] = entry

    def first(self) -> Optional[ViewEntry]:
        for entry in self._slots:
            if entry is not None:
                return entry
        return None

    def to_tuple(self) -> Tuple[ViewEntry, ...]:
        if not self._dead:
            return tuple(self._slots)
        return tuple(entry for entry in self._slots if entry is not None)

    def _compact(self) -> None:
        live = [
            (key, self._slots[index])
            for key, index in sorted(self._pos.items(), key=lambda item: item[1])
        ]
        self._slots = [entry for _, entry in live]
        self._pos = {key: index for index, (key, _) in enumerate(live)}
        self._dead = 0


class MaterializedView:
    """An insertion-ordered collection of :class:`ViewEntry` objects.

    The container deduplicates on ``(atom, canonical constraint, support)``;
    two entries with the same constrained atom but different supports are
    *both* kept, which is exactly the paper's duplicate semantics.

    Three indexes back the container: the key index (membership, removal),
    a per-predicate index (the fixpoint operators' join pools) and a
    per-support index (StDel's upward propagation), so ``remove``,
    ``replace``, ``__contains__`` and ``find_by_support`` are all O(1).
    """

    def __init__(self, entries: Iterable[ViewEntry] = ()) -> None:
        self._index = _IndexedSlots()
        self._by_predicate: Dict[str, _IndexedSlots] = {}
        self._by_support: Dict[Support, _IndexedSlots] = {}
        # Hash-join argument index: (predicate, argument position) maps to
        # per-bound-value entry buckets plus an unbound bucket (entries whose
        # constraint does not pin that position).  A probe for a value must
        # return the value's bucket *and* the unbound bucket to stay a
        # superset of the entries that can join.
        self._arg_bound: Dict[Tuple[str, int], Dict[object, Dict[object, ViewEntry]]] = {}
        self._arg_unbound: Dict[Tuple[str, int], Dict[object, ViewEntry]] = {}
        # Global insertion sequence per key, so probe results can be returned
        # in the same deterministic (insertion) order the positional pools
        # use.  ``replace`` reuses the old sequence number, mirroring the
        # in-place semantics of ``_IndexedSlots.replace``.
        self._seq: Dict[object, int] = {}
        self._next_seq = 0
        for entry in entries:
            self.add(entry)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, entry: ViewEntry) -> bool:
        return entry.key() in self._index

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self)

    def copy(self) -> "MaterializedView":
        """Return an independent shallow copy."""
        return MaterializedView(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, entry: ViewEntry) -> bool:
        """Add an entry; return False when an identical entry already exists."""
        if not isinstance(entry, ViewEntry):
            raise ProgramError(f"not a view entry: {entry!r}")
        key = entry.key()
        if key in self._index:
            return False
        self._index.add(key, entry)
        bucket = self._by_predicate.get(entry.predicate)
        if bucket is None:
            bucket = self._by_predicate[entry.predicate] = _IndexedSlots()
        bucket.add(key, entry)
        group = self._by_support.get(entry.support)
        if group is None:
            group = self._by_support[entry.support] = _IndexedSlots()
        group.add(key, entry)
        if key not in self._seq:
            self._seq[key] = self._next_seq
            self._next_seq += 1
        self._index_arguments(key, entry)
        return True

    def add_all(self, entries: Iterable[ViewEntry]) -> int:
        """Add several entries; return how many were actually new."""
        return sum(1 for entry in entries if self.add(entry))

    def remove(self, entry: ViewEntry) -> bool:
        """Remove an entry; return False when it was not present."""
        key = entry.key()
        if key not in self._index:
            return False
        self._index.remove(key)
        self._by_predicate[entry.predicate].remove(key)
        self._by_support[entry.support].remove(key)
        self._unindex_arguments(key, entry)
        self._seq.pop(key, None)
        return True

    def replace(self, old: ViewEntry, new: ViewEntry) -> bool:
        """Replace *old* by *new* in place (preserving insertion order).

        Returns True when the slot was replaced.  When *new*'s key already
        belongs to a *different* entry the two entries are identical by the
        container's own dedup criterion (atom, canonical constraint and
        support all match), so they are merged instead: *old* is removed,
        the existing entry stays, and False is returned.  The previous
        implementation silently reused the key for two list positions, and
        a later ``remove`` of either entry dropped both from the key index.
        """
        old_key = old.key()
        if old_key not in self._index:
            raise ProgramError(f"entry not in view: {old}")
        new_key = new.key()
        if new_key != old_key and new_key in self._index:
            self.remove(old)
            return False
        self._index.replace(old_key, new_key, new)
        bucket = self._by_predicate[old.predicate]
        if new.predicate == old.predicate:
            bucket.replace(old_key, new_key, new)
        else:  # pragma: no cover - algorithms never change the predicate
            bucket.remove(old_key)
            fresh = self._by_predicate.setdefault(new.predicate, _IndexedSlots())
            fresh.add(new_key, new)
        group = self._by_support[old.support]
        if new.support == old.support:
            group.replace(old_key, new_key, new)
        else:  # pragma: no cover - algorithms never change the support
            group.remove(old_key)
            fresh = self._by_support.setdefault(new.support, _IndexedSlots())
            fresh.add(new_key, new)
        self._unindex_arguments(old_key, old)
        sequence = self._seq.pop(old_key, None)
        if sequence is None:
            sequence = self._next_seq
            self._next_seq += 1
        self._seq[new_key] = sequence
        self._index_arguments(new_key, new)
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Tuple[ViewEntry, ...]:
        """All entries in insertion order."""
        return self._index.to_tuple()

    def entries_for(self, predicate: str) -> Tuple[ViewEntry, ...]:
        """Entries whose atom has the given predicate."""
        bucket = self._by_predicate.get(predicate)
        return bucket.to_tuple() if bucket is not None else ()

    def predicates(self) -> Tuple[str, ...]:
        """Predicates that have at least one entry, sorted."""
        return tuple(sorted(p for p, bucket in self._by_predicate.items() if len(bucket)))

    def constrained_atoms(self) -> Tuple[ConstrainedAtom, ...]:
        """All entries as constrained atoms (supports dropped)."""
        return tuple(entry.constrained_atom for entry in self)

    def find_by_support(self, support: Support) -> Optional[ViewEntry]:
        """Return the (first-inserted) entry carrying exactly this support."""
        group = self._by_support.get(support)
        return group.first() if group is not None else None

    def find_all_by_support(self, support: Support) -> Tuple[ViewEntry, ...]:
        """Every entry carrying exactly this support, in insertion order.

        Supports are unique in a freshly-computed fixpoint view, but not in
        general: all externally inserted atoms share the reserved clause
        number 0, and DRed rederivation can add a rederived twin alongside a
        narrowed entry.  Callers that reason about *all* derivations touching
        a support (the delta-rederivation seed) must use this, not
        :meth:`find_by_support`.
        """
        group = self._by_support.get(support)
        return group.to_tuple() if group is not None else ()

    # ------------------------------------------------------------------
    # Hash-join argument index
    # ------------------------------------------------------------------
    def _index_arguments(self, key: object, entry: ViewEntry) -> None:
        for position, value in enumerate(entry.bound_args()):
            slot = (entry.predicate, position)
            if value is UNBOUND:
                self._arg_unbound.setdefault(slot, {})[key] = entry
                continue
            try:
                buckets = self._arg_bound.setdefault(slot, {})
                buckets.setdefault(value, {})[key] = entry
            except TypeError:  # unhashable constant: keep it probe-visible
                self._arg_unbound.setdefault(slot, {})[key] = entry

    def _unindex_arguments(self, key: object, entry: ViewEntry) -> None:
        for position, value in enumerate(entry.bound_args()):
            slot = (entry.predicate, position)
            unbound = self._arg_unbound.get(slot)
            if value is not UNBOUND:
                try:
                    buckets = self._arg_bound.get(slot)
                    if buckets is not None and key in buckets.get(value, ()):
                        del buckets[value][key]
                        if not buckets[value]:
                            del buckets[value]
                        continue
                except TypeError:
                    pass  # was filed under the unbound bucket on the way in
            if unbound is not None:
                unbound.pop(key, None)

    def probe(
        self, predicate: str, position: int, value: object
    ) -> Tuple[ViewEntry, ...]:
        """Entries of *predicate* that can carry *value* at argument *position*.

        Returns the entries whose constraint pins the position to *value*
        plus every entry whose constraint leaves the position unbound -- a
        superset of the entries that can join with that binding, and usually
        a small fraction of the predicate's full pool.  Results come back in
        insertion order (matching the positional pools).  An unhashable
        *value* falls back to the full pool.
        """
        slot = (predicate, position)
        try:
            matched = self._arg_bound.get(slot, {}).get(value)
        except TypeError:
            return self.entries_for(predicate)
        unbound = self._arg_unbound.get(slot)
        candidates = list(matched.items()) if matched else []
        if unbound:
            candidates.extend(unbound.items())
        # A sort (not a two-bucket merge) is required for correctness:
        # ``replace`` keeps the old sequence number but re-files the entry at
        # the end of its dict bucket, so bucket order alone is not sequence
        # order.  Timsort is adaptive, so the common nearly-sorted case
        # stays effectively linear.
        candidates.sort(key=lambda item: self._seq[item[0]])
        return tuple(entry for _, entry in candidates)

    def argument_index_snapshot(self) -> Tuple[Tuple[str, int, str, Tuple[str, ...]], ...]:
        """A canonical, comparable rendering of the argument index.

        Each row is ``(predicate, position, value-or-"<unbound>", entry
        keys)``; the W_P invariance tests compare snapshots byte-for-byte
        across external source changes (Theorem 4 extended to the indexes).
        """
        rows = []
        for (predicate, position), buckets in self._arg_bound.items():
            for value, members in buckets.items():
                rows.append(
                    (
                        predicate,
                        position,
                        repr(value),
                        tuple(sorted(str(key) for key in members)),
                    )
                )
        for (predicate, position), members in self._arg_unbound.items():
            if members:
                rows.append(
                    (
                        predicate,
                        position,
                        "<unbound>",
                        tuple(sorted(str(key) for key in members)),
                    )
                )
        return tuple(sorted(rows))

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def instances(
        self,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[str, Tuple[object, ...]]]:
        """The ground instance set ``[M]`` of the whole view."""
        universe_values = list(universe) if universe is not None else None
        collected = set()
        for entry in self:
            collected.update(
                entry.constrained_atom.instances(solver=solver, universe=universe_values)
            )
        return frozenset(collected)

    def instances_for(
        self,
        predicate: str,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[object, ...]]:
        """Ground instances of one predicate (tuples only)."""
        universe_values = list(universe) if universe is not None else None
        collected = set()
        for entry in self.entries_for(predicate):
            for _, values in entry.constrained_atom.instances(
                solver=solver, universe=universe_values
            ):
                collected.add(values)
        return frozenset(collected)

    def same_instances(
        self,
        other: "MaterializedView",
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> bool:
        """Semantic comparison ``[self] == [other]`` (the paper's theorems)."""
        return self.instances(solver=solver, universe=universe) == other.instances(
            solver=solver, universe=universe
        )

    def prune_unsolvable(self, solver: ConstraintSolver) -> int:
        """Drop entries whose constraint is unsatisfiable; return the count.

        StDel's final step ("remove any constraint atom from M whose
        constraint is not solvable") and W_P's query-time evaluation both use
        this operation.
        """
        doomed = [
            entry for entry in self if not solver.is_satisfiable(entry.constraint)
        ]
        for entry in doomed:
            self.remove(entry)
        return len(doomed)

    def is_duplicate_free(
        self,
        solver: ConstraintSolver,
        fresh_factory: Optional[FreshVariableFactory] = None,
    ) -> bool:
        """Check the duplicate-freeness condition of Section 3.1.

        The Extended DRed algorithm is "efficient when the mediated view is
        duplicate-free", i.e. for all distinct entries ``A(X̄) <- φ1`` and
        ``A(Ȳ) <- φ2`` of the same predicate the instance sets are disjoint.
        Disjointness of two entries is checked as unsatisfiability of
        ``φ1 & φ2' & (X̄ = Ȳ')`` with the second entry renamed apart.
        """
        factory = fresh_factory or FreshVariableFactory(
            variable.name for entry in self for variable in entry.constrained_atom.variables()
        )
        for predicate in self.predicates():
            bucket = self.entries_for(predicate)
            for index, first in enumerate(bucket):
                for second in bucket[index + 1:]:
                    renamed, _ = second.constrained_atom.renamed_apart(factory)
                    overlap = conjoin(
                        first.constraint,
                        renamed.constraint,
                        tuple_equalities(first.atom.args, renamed.atom.args),
                    )
                    if solver.is_satisfiable(overlap):
                        return False
        return True

    def head_variables(self) -> FrozenSet[Variable]:
        """All variables used in entry atoms (not constraints)."""
        found: set = set()
        for entry in self:
            found.update(entry.atom.variables())
        return frozenset(found)

    def all_variable_names(self) -> FrozenSet[str]:
        """Names of every variable in the view (atoms and constraints)."""
        names: set = set()
        for entry in self:
            names.update(v.name for v in entry.constrained_atom.variables())
        return frozenset(names)
