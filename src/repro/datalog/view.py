"""Materialized views as sets of supported constrained atoms.

A materialized mediated view is a set of constrained atoms (paper Section
2.3), kept under *duplicate semantics*: one entry per derivation, each entry
indexed by the support of its derivation (Section 3.1.2).  This module
provides the container used by the fixpoint operators, the maintenance
algorithms and the mediator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import bisect

from repro.constraints.ast import Constraint, conjoin, tuple_equalities
from repro.constraints.simplify import canonical_form, extract_bindings
from repro.constraints.solver import (
    ConstraintSolver,
    Interval as _Interval,
    PROFILE_UNKNOWN as _UNKNOWN,
    build_argument_profile,
    intersect_intervals as _intersect_intervals,
    interval_excludes as _interval_excludes,
    intervals_disjoint as _intervals_disjoint,
)
from repro.constraints.terms import Constant, FreshVariableFactory, Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.datalog.support import Support
from repro.errors import ProgramError


class _UnboundArgument:
    """Sentinel: an atom argument not pinned to a constant by the constraint."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


#: Marks argument positions whose value the constraint does not determine.
UNBOUND = _UnboundArgument()

#: Sentinel: "compute the evaluator's version token here".  Callers on the
#: hot join path (probe pairs, interval getters) fetch the token once per
#: round and pass it down, instead of rebuilding the registry's tuple on
#: every probe.
_NO_TOKEN = object()


def evaluator_token(evaluator: Optional[object]) -> Optional[object]:
    """The evaluator's hook-relevant version token (``None`` when absent).

    Prefers ``registration_version`` -- which changes only when the
    registered function set (and thus the ``index_interval`` hooks) can
    change -- over the full ``version`` token, which also moves on every
    external *data* change; hook results are contractually time-invariant,
    so gating them on the full token would rebuild the interval caches on
    every clock advance for nothing.
    """
    token = getattr(evaluator, "registration_version", None)
    if token is not None:
        return token
    return getattr(evaluator, "version", None)


def bound_argument_values(
    args: Sequence[object], constraint: Constraint
) -> Tuple[object, ...]:
    """Per-position constant values pinned by *constraint* (or :data:`UNBOUND`).

    Constant arguments are their own value; variable arguments take the value
    the constraint's top-level equalities pin them to, when any.  This is the
    per-position generalization of
    :meth:`~repro.datalog.atoms.ConstrainedAtom.bound_tuple` and feeds the
    hash-join argument index.
    """
    bindings = extract_bindings(constraint)
    values = []
    for arg in args:
        if isinstance(arg, Constant):
            values.append(arg.value)
        elif isinstance(arg, Variable) and arg in bindings:
            values.append(bindings[arg].value)
        else:
            values.append(UNBOUND)
    return tuple(values)


@dataclass(frozen=True)
class IntervalQuery:
    """A range query against the argument index (probe-by-overlap).

    Built from the interval an already-chosen join premise pins a shared
    variable into; the index answers with every entry that could carry a
    value inside it at the probed position.
    """

    low: float
    low_strict: bool
    high: float
    high_strict: bool

    def as_interval(self) -> _Interval:
        """The query as a solver interval (for overlap arithmetic)."""
        return _Interval(self.low, self.low_strict, self.high, self.high_strict)


def interval_query_from(interval: _Interval) -> IntervalQuery:
    """Wrap a solver interval as a probe query."""
    return IntervalQuery(
        interval.low, interval.low_strict, interval.high, interval.high_strict
    )


def argument_intervals(
    args: Sequence[object],
    constraint: Constraint,
    evaluator: Optional[object] = None,
) -> Tuple[Optional[_Interval], ...]:
    """Per-position numeric intervals implied by *constraint* (or ``None``).

    The interval at a position is a *time-invariant over-approximation* of
    the values the constraint admits there: it is assembled from the
    canonical form's top-level ordering conjuncts (via the solver's
    argument profile) intersected with the ``index_interval`` hook of every
    ground positive DCA-atom on that position, when *evaluator* exposes one
    (see :meth:`repro.domains.base.DomainFunction` -- hooks must return a
    superset interval valid at every time point, which is what keeps range
    postings sound under external source changes).  Positions the profile
    pins to a numeric constant get the point interval; non-numeric pins and
    unconstrained positions get ``None``.
    """
    profile = build_argument_profile(args, constraint)
    if profile.unsatisfiable:
        # No instances at all: the empty interval excludes every probe and
        # refutes every join binding.  This is a large share of the win on
        # deletion workloads -- DRed's over-estimate is full of entries
        # narrowed to ``false``, and every combination using one would be
        # enumerated only for the solvability check to kill it.
        empty = _Interval(float("inf"), False, float("-inf"), False)
        return tuple(empty for _ in args)
    hook = getattr(evaluator, "index_interval", None)
    intervals: List[Optional[_Interval]] = []
    for slot in profile.slots:
        interval: Optional[_Interval] = None
        if slot.value is not _UNKNOWN:
            value = slot.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                try:
                    point = float(value)
                except OverflowError:  # int beyond float range: no bound
                    intervals.append(None)
                    continue
                interval = _Interval(point, False, point, False)
            else:
                intervals.append(None)
                continue
        elif slot.interval is not None:
            interval = _Interval(
                slot.interval.low,
                slot.interval.low_strict,
                slot.interval.high,
                slot.interval.high_strict,
            )
        if hook is not None:
            for domain, function, call_args in slot.calls:
                try:
                    bounds = hook(domain, function, call_args)
                except Exception:  # hooks must never break indexing
                    bounds = None
                if bounds is None:
                    continue
                try:
                    low, low_strict, high, high_strict = bounds
                    called = _Interval(
                        float(low), bool(low_strict), float(high), bool(high_strict)
                    )
                except (OverflowError, TypeError, ValueError):
                    continue  # malformed or unrepresentable bound: no opinion
                interval = called if interval is None else _intersect_intervals(interval, called)
        if interval is not None and interval.is_trivial():
            interval = None
        intervals.append(interval)
    return tuple(intervals)


@dataclass(frozen=True)
class ViewEntry:
    """One view element: a constrained atom plus the support of its derivation."""

    atom: Atom
    constraint: Constraint
    support: Support

    @property
    def predicate(self) -> str:
        """Predicate name of the entry's atom."""
        return self.atom.predicate

    @property
    def constrained_atom(self) -> ConstrainedAtom:
        """The entry viewed as a constrained atom (dropping the support).

        Cached: join pools and renamed-premise caches rely on this being the
        same object on every access.
        """
        cached = self.__dict__.get("_cached_atom")
        if cached is None:
            cached = ConstrainedAtom(self.atom, self.constraint)
            object.__setattr__(self, "_cached_atom", cached)
        return cached

    def with_constraint(self, constraint: Constraint) -> "ViewEntry":
        """Return a copy with the constraint replaced (same atom, same support)."""
        return ViewEntry(self.atom, constraint, self.support)

    def bound_args(self) -> Tuple[object, ...]:
        """Per-position pinned constants (or :data:`UNBOUND`), cached.

        Purely syntactic (top-level equalities only), so the result is
        time-invariant even when the constraint mentions external domain
        calls -- which is what lets the ``W_P`` view's hash indexes stay
        byte-identical across source changes (Theorem 4).
        """
        cached = self.__dict__.get("_cached_bound_args")
        if cached is None:
            cached = bound_argument_values(self.atom.args, self.constraint)
            object.__setattr__(self, "_cached_bound_args", cached)
        return cached

    def arg_intervals(
        self, evaluator: Optional[object] = None, token: object = _NO_TOKEN
    ) -> Tuple[Optional[_Interval], ...]:
        """Per-position numeric intervals (see :func:`argument_intervals`).

        Cached per (evaluator identity, evaluator version token): the
        intervals are syntactic except for ``index_interval`` hook results,
        and while the hook *contract* makes a given hook's answers
        time-invariant, re-registering a function installs a different hook
        -- the registry's version token changes then, dropping the stale
        tuple (the same gating the solver's external memo uses).  Pass a
        pre-fetched *token* on hot paths; the token cannot change inside a
        single evaluation round.
        """
        if token is _NO_TOKEN:
            token = evaluator_token(evaluator)
        cached = self.__dict__.get("_cached_arg_intervals")
        if cached is not None:
            known, known_token, intervals = cached
            if known is evaluator and known_token == token:
                return intervals
        intervals = argument_intervals(self.atom.args, self.constraint, evaluator)
        # Single slot (most recent evaluator + token): entries are shared
        # across copied views and outlive solvers, so an unbounded per-
        # evaluator list would pin dead registries for the entry's lifetime.
        object.__setattr__(
            self, "_cached_arg_intervals", (evaluator, token, intervals)
        )
        return intervals

    def key(self) -> Tuple[Atom, Constraint, Support]:
        """Deduplication key: atom, canonical constraint, support.

        The canonical form is computed once and cached on the entry: every
        membership test, add and remove goes through the key, and entries are
        immutable, so recomputing it per lookup was pure waste.
        """
        cached = self.__dict__.get("_cached_key")
        if cached is None:
            cached = (self.atom, canonical_form(self.constraint), self.support)
            object.__setattr__(self, "_cached_key", cached)
        return cached

    def __str__(self) -> str:
        return f"{self.atom} <- {self.constraint}   {self.support}"


class _IndexedSlots:
    """An insertion-ordered entry sequence with O(1) add/remove/replace.

    Entries live in a slot list; removal tombstones the slot and the list is
    compacted once tombstones dominate, so amortized cost stays O(1) while
    insertion order (and the position of in-place replacements) is preserved.
    """

    __slots__ = ("_slots", "_pos", "_dead")

    def __init__(self) -> None:
        self._slots: List[Optional[ViewEntry]] = []
        self._pos: Dict[object, int] = {}
        self._dead = 0

    def __len__(self) -> int:
        return len(self._pos)

    def __iter__(self) -> Iterator[ViewEntry]:
        for entry in self._slots:
            if entry is not None:
                yield entry

    def __contains__(self, key: object) -> bool:
        return key in self._pos

    def add(self, key: object, entry: ViewEntry) -> None:
        self._pos[key] = len(self._slots)
        self._slots.append(entry)

    def remove(self, key: object) -> None:
        index = self._pos.pop(key)
        self._slots[index] = None
        self._dead += 1
        if self._dead > len(self._pos) and self._dead > 8:
            self._compact()

    def replace(self, old_key: object, new_key: object, entry: ViewEntry) -> None:
        index = self._pos.pop(old_key)
        self._pos[new_key] = index
        self._slots[index] = entry

    def first(self) -> Optional[ViewEntry]:
        for entry in self._slots:
            if entry is not None:
                return entry
        return None

    def to_tuple(self) -> Tuple[ViewEntry, ...]:
        if not self._dead:
            return tuple(self._slots)
        return tuple(entry for entry in self._slots if entry is not None)

    def _compact(self) -> None:
        live = [
            (key, self._slots[index])
            for key, index in sorted(self._pos.items(), key=lambda item: item[1])
        ]
        self._slots = [entry for _, entry in live]
        self._pos = {key: index for index, (key, _) in enumerate(live)}
        self._dead = 0


class _SortedValueWindow:
    """Sorted numeric bound values of one argument-index slot.

    ``probe_range``'s overlap path used to scan *every* distinct bound value
    of the slot linearly; this keeps the numeric values in a sorted list so
    an interval query bisects its window instead (the ROADMAP's "sorted
    value list with a bisected query window").  Values that are not plain
    numbers (strings, bools, tuples, ...) are kept aside and offered to
    every query -- ``_interval_excludes`` decides about them exactly as the
    linear scan did, so results are unchanged.

    Removals tombstone (the sorted list keeps the value until compaction);
    the live set is the authority, mirroring ``_RangePostings``.
    """

    __slots__ = ("_sorted", "_live", "_other", "_dead")

    def __init__(self) -> None:
        self._sorted: List[float] = []
        self._live: set = set()
        self._other: set = set()
        self._dead = 0

    @staticmethod
    def _is_numeric(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def add(self, value: object) -> None:
        if not self._is_numeric(value):
            self._other.add(value)
            return
        if value in self._live:
            return
        self._live.add(value)
        try:
            key = float(value)
        except OverflowError:  # int beyond float range: cannot be windowed
            self._live.discard(value)
            self._other.add(value)
            return
        bisect.insort(self._sorted, key)

    def discard(self, value: object) -> None:
        if not self._is_numeric(value):
            self._other.discard(value)
            return
        if value in self._live:
            self._live.discard(value)
            self._dead += 1
            if self._dead > len(self._live) and self._dead > 8:
                self._compact()

    def _compact(self) -> None:
        live_keys = {float(value) for value in self._live}
        self._sorted = sorted(live_keys)
        self._dead = 0

    def window(self, interval: _Interval) -> Iterator[object]:
        """Values the query *interval* could admit (superset; exact filter
        stays with the caller's ``_interval_excludes`` check)."""
        low = bisect.bisect_left(self._sorted, interval.low)
        high = bisect.bisect_right(self._sorted, interval.high)
        previous = None
        for key in self._sorted[low:high]:
            if key == previous:  # tombstoned duplicates collapse to one probe
                continue
            previous = key
            yield key
        yield from self._other

    def candidate_values(self, interval: _Interval, buckets: Dict[object, Dict]):
        """The slot's bound values admitted by *interval*, bucket-resolved.

        The sorted window yields float keys; the bucket dictionary's own
        hashing resolves them to the stored values (``3`` and ``3.0`` hash
        and compare alike), and every candidate -- windowed numerics and
        non-numeric leftovers -- is screened by ``_interval_excludes``
        exactly like the linear scan this replaces.
        """
        for value in self.window(interval):
            if _interval_excludes(interval, value):
                continue
            members = buckets.get(value)
            if members:
                yield from members.items()


class _RangePostings:
    """A sorted interval list for one ``(predicate, position)`` index slot.

    Holds the entries of the slot's *unbound* bucket that carry a numeric
    interval at the position, sorted by interval lower bound, so a probe for
    a value (or an overlap query) only scans the prefix whose lower bounds
    can admit it.  Entries without an interval stay in the plain unbound
    bucket and are returned by every probe, as before.  Removals tombstone;
    the list is compacted once tombstones dominate.
    """

    __slots__ = ("_items", "_bounds", "_dead", "_counter")

    def __init__(self) -> None:
        #: ``(low, low_strict_rank, tiebreak, key)`` sorted ascending.  The
        #: monotonic tiebreak keeps tuples comparable (keys never compared),
        #: makes the order deterministic for equal lower bounds, and -- held
        #: alongside the bounds entry -- identifies the one live item of a
        #: key, so stale items from remove/re-add cycles are recognized by
        #: both the scans and the compaction.
        self._items: List[Tuple[float, int, int, object]] = []
        self._bounds: Dict[object, Tuple[_Interval, ViewEntry, int]] = {}
        self._dead = 0
        self._counter = 0

    def __len__(self) -> int:
        return len(self._bounds)

    def __contains__(self, key: object) -> bool:
        return key in self._bounds

    def add(self, key: object, entry: ViewEntry, interval: _Interval) -> None:
        if key in self._bounds:
            self.remove(key)
        self._counter += 1
        self._bounds[key] = (interval, entry, self._counter)
        bisect.insort(
            self._items,
            (interval.low, int(interval.low_strict), self._counter, key),
        )

    def remove(self, key: object) -> None:
        if self._bounds.pop(key, None) is None:
            return
        self._dead += 1
        if self._dead > len(self._bounds) and self._dead > 8:
            self._compact()

    def _compact(self) -> None:
        live = {counter for _, _, counter in self._bounds.values()}
        self._items = [item for item in self._items if item[2] in live]
        self._dead = 0

    def _scan(self, upper: float) -> Iterator[Tuple[object, _Interval, ViewEntry]]:
        """Live postings whose lower bound is at most *upper*.

        A key removed and re-added leaves its old sort item as a tombstone
        next to the fresh one; matching the item's tiebreak against the
        live posting's yields each key exactly once, from the item carrying
        the authoritative interval.
        """
        limit = bisect.bisect_right(self._items, (upper, 2))
        for _, _, counter, key in self._items[:limit]:
            found = self._bounds.get(key)
            if found is None or found[2] != counter:
                continue
            yield key, found[0], found[1]

    def probe_value(self, value: object) -> List[Tuple[object, ViewEntry]]:
        """Entries whose interval can admit *value* (conservative for bools)."""
        if isinstance(value, bool):
            # Mirror the quick-reject pre-filter: the solver coerces bools in
            # numeric comparisons, so range postings venture no opinion.
            return self.entries()
        if not isinstance(value, (int, float)):
            # Non-numeric values can only satisfy trivial intervals, and
            # trivial intervals are never posted -- nothing matches.
            return []
        try:
            upper = float(value)
        except OverflowError:
            # int beyond float range: scan everything; the exact
            # containment filter below still decides precisely (Python
            # compares big ints against floats without converting).
            upper = float("inf")
        return [
            (key, entry)
            for key, interval, entry in self._scan(upper)
            if not _interval_excludes(interval, value)
        ]

    def probe_overlap(self, query: _Interval) -> List[Tuple[object, ViewEntry]]:
        """Entries whose interval overlaps *query*."""
        return [
            (key, entry)
            for key, interval, entry in self._scan(query.high)
            if not _intervals_disjoint(interval, query)
        ]

    def entries(self) -> List[Tuple[object, ViewEntry]]:
        """All live ``(key, entry)`` postings, in no particular order."""
        return [(key, entry) for key, (_, entry, _) in self._bounds.items()]

    def snapshot_rows(self) -> List[Tuple[str, str]]:
        """Canonical ``(interval repr, entry key)`` rows for the tests."""
        rows = []
        for key, (interval, _, _) in self._bounds.items():
            lo = "(" if interval.low_strict else "["
            hi = ")" if interval.high_strict else "]"
            rows.append((f"{lo}{interval.low}, {interval.high}{hi}", str(key)))
        return rows


class MaterializedView:
    """An insertion-ordered collection of :class:`ViewEntry` objects.

    The container deduplicates on ``(atom, canonical constraint, support)``;
    two entries with the same constrained atom but different supports are
    *both* kept, which is exactly the paper's duplicate semantics.

    Four indexes back the container: the key index (membership, removal),
    a per-predicate index (the fixpoint operators' join pools), a
    per-support index (StDel's re-fetch of replaced entries) and a
    child-support index mapping each *direct premise* support to the parent
    entries whose derivation used it (StDel's upward propagation), so
    ``remove``, ``replace``, ``__contains__``, ``find_by_support`` and
    ``find_parents_of`` are all O(1).
    """

    def __init__(self, entries: Iterable[ViewEntry] = ()) -> None:
        self._index = _IndexedSlots()
        self._by_predicate: Dict[str, _IndexedSlots] = {}
        self._by_support: Dict[Support, _IndexedSlots] = {}
        # Child-support index: the support of a direct premise maps to the
        # entries whose derivation used it.  StDel step 3 probes this with
        # each P_OUT pair's support instead of scanning the whole view.
        # Built lazily on the first probe (like the range postings): only
        # StDel consults it, so fixpoint materialization, over-estimates
        # and baseline copies pay nothing; once built it is maintained
        # incrementally by every mutation.
        self._by_child_support: Dict[Support, _IndexedSlots] = {}
        self._child_support_built = False
        # Interval range postings: per (predicate, position), a sorted
        # interval list of the unbound-bucket entries whose constraint
        # bounds the position numerically.  Built lazily on the first
        # range-aware probe of a slot (so W_P materialization, which never
        # probes, never populates them) and maintained incrementally after.
        self._range_postings: Dict[Tuple[str, int], _RangePostings] = {}
        self._range_evaluator: Optional[object] = None
        self._range_version: Optional[object] = None
        # Hash-join argument index: (predicate, argument position) maps to
        # per-bound-value entry buckets plus an unbound bucket (entries whose
        # constraint does not pin that position).  A probe for a value must
        # return the value's bucket *and* the unbound bucket to stay a
        # superset of the entries that can join.
        self._arg_bound: Dict[Tuple[str, int], Dict[object, Dict[object, ViewEntry]]] = {}
        self._arg_unbound: Dict[Tuple[str, int], Dict[object, ViewEntry]] = {}
        # Sorted bound-value windows: per slot, the distinct bound values in
        # sorted order so overlap probes bisect instead of scanning.  Built
        # lazily on a slot's first overlap probe, maintained incrementally
        # afterwards.
        self._arg_value_windows: Dict[Tuple[str, int], _SortedValueWindow] = {}
        # Global insertion sequence per key, so probe results can be returned
        # in the same deterministic (insertion) order the positional pools
        # use.  ``replace`` reuses the old sequence number, mirroring the
        # in-place semantics of ``_IndexedSlots.replace``.
        self._seq: Dict[object, int] = {}
        self._next_seq = 0
        for entry in entries:
            self.add(entry)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, entry: ViewEntry) -> bool:
        return entry.key() in self._index

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self)

    def copy(self) -> "MaterializedView":
        """Return an independent shallow copy."""
        return MaterializedView(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, entry: ViewEntry) -> bool:
        """Add an entry; return False when an identical entry already exists."""
        if not isinstance(entry, ViewEntry):
            raise ProgramError(f"not a view entry: {entry!r}")
        key = entry.key()
        if key in self._index:
            return False
        self._index.add(key, entry)
        bucket = self._by_predicate.get(entry.predicate)
        if bucket is None:
            bucket = self._by_predicate[entry.predicate] = _IndexedSlots()
        bucket.add(key, entry)
        group = self._by_support.get(entry.support)
        if group is None:
            group = self._by_support[entry.support] = _IndexedSlots()
        group.add(key, entry)
        if self._child_support_built:
            for child in dict.fromkeys(entry.support.children):
                parents = self._by_child_support.get(child)
                if parents is None:
                    parents = self._by_child_support[child] = _IndexedSlots()
                parents.add(key, entry)
        if key not in self._seq:
            self._seq[key] = self._next_seq
            self._next_seq += 1
        self._index_arguments(key, entry)
        return True

    def add_all(self, entries: Iterable[ViewEntry]) -> int:
        """Add several entries; return how many were actually new."""
        return sum(1 for entry in entries if self.add(entry))

    def remove(self, entry: ViewEntry) -> bool:
        """Remove an entry; return False when it was not present."""
        key = entry.key()
        if key not in self._index:
            return False
        self._index.remove(key)
        self._by_predicate[entry.predicate].remove(key)
        self._by_support[entry.support].remove(key)
        if self._child_support_built:
            for child in dict.fromkeys(entry.support.children):
                self._by_child_support[child].remove(key)
        self._unindex_arguments(key, entry)
        self._seq.pop(key, None)
        return True

    def replace(self, old: ViewEntry, new: ViewEntry) -> bool:
        """Replace *old* by *new* in place (preserving insertion order).

        Returns True when the slot was replaced.  When *new*'s key already
        belongs to a *different* entry the two entries are identical by the
        container's own dedup criterion (atom, canonical constraint and
        support all match), so they are merged instead: *old* is removed,
        the existing entry stays, and False is returned.  The previous
        implementation silently reused the key for two list positions, and
        a later ``remove`` of either entry dropped both from the key index.
        """
        old_key = old.key()
        if old_key not in self._index:
            raise ProgramError(f"entry not in view: {old}")
        new_key = new.key()
        if new_key != old_key and new_key in self._index:
            self.remove(old)
            return False
        self._index.replace(old_key, new_key, new)
        bucket = self._by_predicate[old.predicate]
        if new.predicate == old.predicate:
            bucket.replace(old_key, new_key, new)
        else:  # pragma: no cover - algorithms never change the predicate
            bucket.remove(old_key)
            fresh = self._by_predicate.setdefault(new.predicate, _IndexedSlots())
            fresh.add(new_key, new)
        group = self._by_support[old.support]
        if new.support == old.support:
            group.replace(old_key, new_key, new)
            if self._child_support_built:
                for child in dict.fromkeys(old.support.children):
                    self._by_child_support[child].replace(old_key, new_key, new)
        else:  # pragma: no cover - algorithms never change the support
            group.remove(old_key)
            fresh = self._by_support.setdefault(new.support, _IndexedSlots())
            fresh.add(new_key, new)
            if self._child_support_built:
                for child in dict.fromkeys(old.support.children):
                    self._by_child_support[child].remove(old_key)
                for child in dict.fromkeys(new.support.children):
                    self._by_child_support.setdefault(child, _IndexedSlots()).add(
                        new_key, new
                    )
        self._unindex_arguments(old_key, old)
        sequence = self._seq.pop(old_key, None)
        if sequence is None:
            sequence = self._next_seq
            self._next_seq += 1
        self._seq[new_key] = sequence
        self._index_arguments(new_key, new)
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Tuple[ViewEntry, ...]:
        """All entries in insertion order."""
        return self._index.to_tuple()

    def entries_for(self, predicate: str) -> Tuple[ViewEntry, ...]:
        """Entries whose atom has the given predicate."""
        bucket = self._by_predicate.get(predicate)
        return bucket.to_tuple() if bucket is not None else ()

    def predicates(self) -> Tuple[str, ...]:
        """Predicates that have at least one entry, sorted."""
        return tuple(sorted(p for p, bucket in self._by_predicate.items() if len(bucket)))

    def constrained_atoms(self) -> Tuple[ConstrainedAtom, ...]:
        """All entries as constrained atoms (supports dropped)."""
        return tuple(entry.constrained_atom for entry in self)

    def find_by_support(self, support: Support) -> Optional[ViewEntry]:
        """Return the (first-inserted) entry carrying exactly this support."""
        group = self._by_support.get(support)
        return group.first() if group is not None else None

    def find_all_by_support(self, support: Support) -> Tuple[ViewEntry, ...]:
        """Every entry carrying exactly this support, in insertion order.

        Supports are unique in a freshly-computed fixpoint view, but not in
        general: all externally inserted atoms share the reserved clause
        number 0, and DRed rederivation can add a rederived twin alongside a
        narrowed entry.  Callers that reason about *all* derivations touching
        a support (the delta-rederivation seed) must use this, not
        :meth:`find_by_support`.
        """
        group = self._by_support.get(support)
        return group.to_tuple() if group is not None else ()

    def find_parents_of(self, support: Support) -> Tuple[ViewEntry, ...]:
        """Entries whose derivation used *support* as a direct premise.

        This is StDel step 3's probe: instead of scanning the whole view per
        ``P_OUT`` pair, the propagation asks the child-support index for
        exactly the parents the pair can affect.  Results come back in
        insertion order; entries replaced in place keep their slot.  The
        first probe builds the index from the current entries; mutations
        maintain it incrementally after that.
        """
        self._ensure_child_support_index()
        group = self._by_child_support.get(support)
        return group.to_tuple() if group is not None else ()

    def _ensure_child_support_index(self) -> None:
        """Build the child-support index on first use (lazy, then live)."""
        if self._child_support_built:
            return
        self._child_support_built = True
        for entry in self._index:
            key = entry.key()
            for child in dict.fromkeys(entry.support.children):
                parents = self._by_child_support.get(child)
                if parents is None:
                    parents = self._by_child_support[child] = _IndexedSlots()
                parents.add(key, entry)

    def child_support_snapshot(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """A canonical, comparable rendering of the child-support index.

        Each row is ``(child support, sorted parent entry keys)``; the
        property tests compare this against a brute-force scan of
        ``entries`` after random mutation sequences.  Builds the index if
        it has not been probed yet.
        """
        self._ensure_child_support_index()
        rows = []
        for child, group in self._by_child_support.items():
            if len(group):
                rows.append(
                    (str(child), tuple(sorted(str(entry.key()) for entry in group)))
                )
        return tuple(sorted(rows))

    # ------------------------------------------------------------------
    # Hash-join argument index
    # ------------------------------------------------------------------
    def _index_arguments(self, key: object, entry: ViewEntry) -> None:
        for position, value in enumerate(entry.bound_args()):
            slot = (entry.predicate, position)
            if value is UNBOUND:
                postings = self._range_postings.get(slot)
                if postings is not None:
                    interval = entry.arg_intervals(
                        self._range_evaluator, self._range_version
                    )[position]
                    if interval is not None:
                        postings.add(key, entry, interval)
                        continue
                self._arg_unbound.setdefault(slot, {})[key] = entry
                continue
            try:
                buckets = self._arg_bound.setdefault(slot, {})
                buckets.setdefault(value, {})[key] = entry
                window = self._arg_value_windows.get(slot)
                if window is not None:
                    window.add(value)
            except TypeError:  # unhashable constant: keep it probe-visible
                self._arg_unbound.setdefault(slot, {})[key] = entry

    def _unindex_arguments(self, key: object, entry: ViewEntry) -> None:
        for position, value in enumerate(entry.bound_args()):
            slot = (entry.predicate, position)
            unbound = self._arg_unbound.get(slot)
            if value is not UNBOUND:
                try:
                    buckets = self._arg_bound.get(slot)
                    if buckets is not None and key in buckets.get(value, ()):
                        del buckets[value][key]
                        if not buckets[value]:
                            del buckets[value]
                            window = self._arg_value_windows.get(slot)
                            if window is not None:
                                window.discard(value)
                        continue
                except TypeError:
                    pass  # was filed under the unbound bucket on the way in
            if unbound is not None and unbound.pop(key, None) is not None:
                continue
            postings = self._range_postings.get(slot)
            if postings is not None:
                postings.remove(key)

    def probe(
        self, predicate: str, position: int, value: object
    ) -> Tuple[ViewEntry, ...]:
        """Entries of *predicate* that can carry *value* at argument *position*.

        Returns the entries whose constraint pins the position to *value*
        plus every entry whose constraint leaves the position unbound -- a
        superset of the entries that can join with that binding, and usually
        a small fraction of the predicate's full pool.  Results come back in
        insertion order (matching the positional pools).  An unhashable
        *value* falls back to the full pool.
        """
        slot = (predicate, position)
        try:
            matched = self._arg_bound.get(slot, {}).get(value)
        except TypeError:
            return self.entries_for(predicate)
        unbound = self._arg_unbound.get(slot)
        candidates = list(matched.items()) if matched else []
        if unbound:
            candidates.extend(unbound.items())
        postings = self._range_postings.get(slot)
        if postings is not None:
            # A range-unaware probe must stay a superset: posted entries are
            # returned unfiltered, exactly as if they still sat in the
            # unbound bucket.
            candidates.extend(postings.entries())
        # A sort (not a two-bucket merge) is required for correctness:
        # ``replace`` keeps the old sequence number but re-files the entry at
        # the end of its dict bucket, so bucket order alone is not sequence
        # order.  Timsort is adaptive, so the common nearly-sorted case
        # stays effectively linear.
        candidates.sort(key=lambda item: self._seq[item[0]])
        return tuple(entry for _, entry in candidates)

    def probe_range(
        self,
        predicate: str,
        position: int,
        query: object,
        evaluator: Optional[object] = None,
        token: object = _NO_TOKEN,
    ) -> Tuple[ViewEntry, ...]:
        """Range-aware probe: *query* is a pinned value or an :class:`IntervalQuery`.

        Like :meth:`probe`, but entries whose constraint bounds the position
        into a numeric interval are consulted through the slot's range
        postings: a pinned value only returns the postings whose interval
        admits it, an interval query only those whose interval overlaps it.
        Entries with no interval at the position remain in the plain unbound
        bucket and are returned by every probe.  The result is still a
        superset of the entries that can join -- the interval is a
        time-invariant over-approximation of the position's admissible
        values -- just a tighter one than the unbound-bucket fallback.

        The first range-aware probe of a slot builds its postings from the
        unbound bucket (using *evaluator*'s ``index_interval`` hooks, when
        present); later mutations maintain them incrementally.  ``W_P``
        materialization never calls this, so under ``W_P`` the postings are
        never populated (Theorem 4's byte-invariance is untouched).
        """
        slot = (predicate, position)
        if isinstance(query, IntervalQuery):
            interval = query.as_interval()
            postings = self._ensure_postings(slot, evaluator, token)
            candidates: List[Tuple[object, ViewEntry]] = []
            buckets = self._arg_bound.get(slot)
            if buckets:
                # Bisected window over the slot's sorted distinct bound
                # values (plus the non-numeric stragglers, screened exactly
                # like the linear scan this replaced) -- logarithmic in the
                # number of distinct values instead of linear.
                window = self._ensure_value_window(slot, buckets)
                candidates.extend(window.candidate_values(interval, buckets))
            candidates.extend(postings.probe_overlap(interval))
        else:
            try:
                matched = self._arg_bound.get(slot, {}).get(query)
            except TypeError:
                return self.entries_for(predicate)
            postings = self._ensure_postings(slot, evaluator, token)
            candidates = list(matched.items()) if matched else []
            candidates.extend(postings.probe_value(query))
        unbound = self._arg_unbound.get(slot)
        if unbound:
            candidates.extend(unbound.items())
        candidates.sort(key=lambda item: self._seq[item[0]])
        return tuple(entry for _, entry in candidates)

    def _ensure_value_window(
        self, slot: Tuple[str, int], buckets: Dict[object, Dict]
    ) -> _SortedValueWindow:
        """Build (or fetch) the sorted bound-value window of one index slot."""
        window = self._arg_value_windows.get(slot)
        if window is None:
            window = self._arg_value_windows[slot] = _SortedValueWindow()
            for value in buckets:
                window.add(value)
        return window

    def _ensure_postings(
        self, slot: Tuple[str, int], evaluator: Optional[object], token: object = _NO_TOKEN
    ) -> _RangePostings:
        """Build (or fetch) the range postings of one index slot.

        Gated on the evaluator's identity *and* its version token: a
        different evaluator could resolve ``index_interval`` hooks
        differently, and re-registering a function on the same registry
        installs a different hook (the token changes, exactly like the
        solver's external memo gating) -- either way the postings rebuild
        from scratch before they can serve stale intervals.
        """
        if token is _NO_TOKEN:
            token = evaluator_token(evaluator)
        if self._range_postings and (
            evaluator is not self._range_evaluator or token != self._range_version
        ):
            self._reset_range_postings()
        postings = self._range_postings.get(slot)
        if postings is None:
            self._range_evaluator = evaluator
            self._range_version = token
            postings = self._range_postings[slot] = _RangePostings()
            unbound = self._arg_unbound.get(slot)
            if unbound:
                position = slot[1]
                for key, entry in list(unbound.items()):
                    interval = entry.arg_intervals(evaluator, token)[position]
                    if interval is not None:
                        del unbound[key]
                        postings.add(key, entry, interval)
        return postings

    def _reset_range_postings(self) -> None:
        """Dissolve all postings back into the plain unbound buckets."""
        for slot, postings in self._range_postings.items():
            unbound = self._arg_unbound.setdefault(slot, {})
            for key, entry in postings.entries():
                unbound[key] = entry
        self._range_postings.clear()
        self._range_evaluator = None
        self._range_version = None

    def range_posting_snapshot(
        self,
    ) -> Tuple[Tuple[str, int, str, str], ...]:
        """A canonical rendering of the built range postings.

        Each row is ``(predicate, position, interval, entry key)``.  Empty
        until the first range-aware probe -- the W_P invariance tests assert
        it *stays* empty under ``W_P`` materialization and source changes.
        """
        rows = []
        for (predicate, position), postings in self._range_postings.items():
            for interval_repr, key_repr in postings.snapshot_rows():
                rows.append((predicate, position, interval_repr, key_repr))
        return tuple(sorted(rows))

    def argument_index_snapshot(self) -> Tuple[Tuple[str, int, str, Tuple[str, ...]], ...]:
        """A canonical, comparable rendering of the argument index.

        Each row is ``(predicate, position, value-or-"<unbound>", entry
        keys)``; the W_P invariance tests compare snapshots byte-for-byte
        across external source changes (Theorem 4 extended to the indexes).
        """
        rows = []
        for (predicate, position), buckets in self._arg_bound.items():
            for value, members in buckets.items():
                rows.append(
                    (
                        predicate,
                        position,
                        repr(value),
                        tuple(sorted(str(key) for key in members)),
                    )
                )
        # Entries moved into range postings still belong to the unbound
        # partition of the value index; merging them back here keeps the
        # snapshot independent of whether a slot's postings were built.
        unbound_keys: Dict[Tuple[str, int], List[str]] = {}
        for slot, members in self._arg_unbound.items():
            unbound_keys.setdefault(slot, []).extend(str(key) for key in members)
        for slot, postings in self._range_postings.items():
            unbound_keys.setdefault(slot, []).extend(
                str(key) for key, _ in postings.entries()
            )
        for (predicate, position), keys in unbound_keys.items():
            if keys:
                rows.append((predicate, position, "<unbound>", tuple(sorted(keys))))
        return tuple(sorted(rows))

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def instances(
        self,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[str, Tuple[object, ...]]]:
        """The ground instance set ``[M]`` of the whole view."""
        universe_values = list(universe) if universe is not None else None
        collected = set()
        for entry in self:
            collected.update(
                entry.constrained_atom.instances(solver=solver, universe=universe_values)
            )
        return frozenset(collected)

    def instances_for(
        self,
        predicate: str,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[object, ...]]:
        """Ground instances of one predicate (tuples only)."""
        universe_values = list(universe) if universe is not None else None
        collected = set()
        for entry in self.entries_for(predicate):
            for _, values in entry.constrained_atom.instances(
                solver=solver, universe=universe_values
            ):
                collected.add(values)
        return frozenset(collected)

    def same_instances(
        self,
        other: "MaterializedView",
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> bool:
        """Semantic comparison ``[self] == [other]`` (the paper's theorems)."""
        return self.instances(solver=solver, universe=universe) == other.instances(
            solver=solver, universe=universe
        )

    def prune_unsolvable(
        self,
        solver: ConstraintSolver,
        predicates: Optional[Iterable[str]] = None,
    ) -> int:
        """Drop entries whose constraint is unsatisfiable; return the count.

        StDel's final step ("remove any constraint atom from M whose
        constraint is not solvable") and W_P's query-time evaluation both use
        this operation.  With *predicates*, only those predicates' entries
        are scanned -- the stream scheduler passes a batch's write closure,
        outside of which a solvability-purged input view cannot have gained
        unsolvable entries, making the purge proportional to the batch's
        propagation cone instead of the view.
        """
        if predicates is None:
            candidates: Iterable[ViewEntry] = self
        else:
            candidates = (
                entry
                for predicate in sorted(set(predicates))
                for entry in self.entries_for(predicate)
            )
        doomed = [
            entry for entry in candidates if not solver.is_satisfiable(entry.constraint)
        ]
        for entry in doomed:
            self.remove(entry)
        return len(doomed)

    def is_duplicate_free(
        self,
        solver: ConstraintSolver,
        fresh_factory: Optional[FreshVariableFactory] = None,
    ) -> bool:
        """Check the duplicate-freeness condition of Section 3.1.

        The Extended DRed algorithm is "efficient when the mediated view is
        duplicate-free", i.e. for all distinct entries ``A(X̄) <- φ1`` and
        ``A(Ȳ) <- φ2`` of the same predicate the instance sets are disjoint.
        Disjointness of two entries is checked as unsatisfiability of
        ``φ1 & φ2' & (X̄ = Ȳ')`` with the second entry renamed apart.
        """
        factory = fresh_factory or FreshVariableFactory(
            variable.name for entry in self for variable in entry.constrained_atom.variables()
        )
        for predicate in self.predicates():
            bucket = self.entries_for(predicate)
            for index, first in enumerate(bucket):
                for second in bucket[index + 1:]:
                    renamed, _ = second.constrained_atom.renamed_apart(factory)
                    overlap = conjoin(
                        first.constraint,
                        renamed.constraint,
                        tuple_equalities(first.atom.args, renamed.atom.args),
                    )
                    if solver.is_satisfiable(overlap):
                        return False
        return True

    def head_variables(self) -> FrozenSet[Variable]:
        """All variables used in entry atoms (not constraints)."""
        found: set = set()
        for entry in self:
            found.update(entry.atom.variables())
        return frozenset(found)

    def all_variable_names(self) -> FrozenSet[str]:
        """Names of every variable in the view (atoms and constraints)."""
        names: set = set()
        for entry in self:
            names.update(v.name for v in entry.constrained_atom.variables())
        return frozenset(names)
