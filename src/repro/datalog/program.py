"""Constrained databases (programs).

A :class:`ConstrainedDatabase` is the ordered, numbered collection of
constrained clauses that defines a mediated view.  Clause numbers matter: the
supports of Section 3.1.2 are built from them, and the maintenance
algorithms rewrite individual clauses by number.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.clauses import Clause
from repro.errors import ProgramError


class ConstrainedDatabase:
    """An immutable, numbered set of constrained clauses.

    Clauses keep the numbers they were given; clauses without a number are
    assigned the next free one in order.  All rewriting operations return new
    databases, leaving the original untouched (the maintenance algorithms
    need to compare the before/after programs).
    """

    def __init__(self, clauses: Iterable[Clause] = ()) -> None:
        numbered: Dict[int, Clause] = {}
        pending: List[Clause] = []
        for clause in clauses:
            if not isinstance(clause, Clause):
                raise ProgramError(f"not a clause: {clause!r}")
            if clause.number is None:
                pending.append(clause)
            else:
                if clause.number in numbered:
                    raise ProgramError(f"duplicate clause number: {clause.number}")
                numbered[clause.number] = clause
        next_number = 1
        for clause in pending:
            while next_number in numbered:
                next_number += 1
            numbered[next_number] = clause.with_number(next_number)
            next_number += 1
        self._clauses: Dict[int, Clause] = dict(sorted(numbered.items()))
        self._by_predicate: Dict[str, Tuple[Clause, ...]] = {}
        self._by_body_predicate: Dict[str, Tuple[Clause, ...]] = {}
        self._rule_clauses: Tuple[Clause, ...] = tuple(
            clause for clause in self._clauses.values() if not clause.is_fact_clause
        )
        for clause in self._clauses.values():
            existing = self._by_predicate.get(clause.predicate, ())
            self._by_predicate[clause.predicate] = existing + (clause,)
            for body_predicate in dict.fromkeys(clause.body_predicates()):
                referencing = self._by_body_predicate.get(body_predicate, ())
                self._by_body_predicate[body_predicate] = referencing + (clause,)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses.values())

    def __len__(self) -> int:
        return len(self._clauses)

    def __contains__(self, clause: Clause) -> bool:
        return clause in self._clauses.values()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstrainedDatabase):
            return NotImplemented
        return self._clauses == other._clauses

    def __repr__(self) -> str:
        return f"ConstrainedDatabase({len(self._clauses)} clauses)"

    def __str__(self) -> str:
        return "\n".join(str(clause) for clause in self)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def clauses(self) -> Tuple[Clause, ...]:
        """All clauses in clause-number order."""
        return tuple(self._clauses.values())

    def clause(self, number: int) -> Clause:
        """Return the clause with the given number."""
        try:
            return self._clauses[number]
        except KeyError as exc:
            raise ProgramError(f"no clause numbered {number}") from exc

    def has_clause(self, number: int) -> bool:
        """True if a clause with this number exists."""
        return number in self._clauses

    def clauses_for(self, predicate: str) -> Tuple[Clause, ...]:
        """Clauses whose head predicate is *predicate* (may be empty)."""
        return self._by_predicate.get(predicate, ())

    def clauses_with_body_predicate(self, predicate: str) -> Tuple[Clause, ...]:
        """Clauses referencing *predicate* in their body, in number order.

        This is the dependency index the semi-naive fixpoint and the
        maintenance unfoldings use to skip clauses whose body predicates
        gained no new entries in a round.
        """
        return self._by_body_predicate.get(predicate, ())

    @property
    def rule_clauses(self) -> Tuple[Clause, ...]:
        """All clauses that have at least one body atom, in number order."""
        return self._rule_clauses

    def predicates(self) -> Tuple[str, ...]:
        """All predicates defined by some clause head, sorted."""
        return tuple(sorted(self._by_predicate))

    def body_predicates(self) -> Tuple[str, ...]:
        """All predicates referenced in some clause body, sorted."""
        referenced = set()
        for clause in self:
            referenced.update(clause.body_predicates())
        return tuple(sorted(referenced))

    def max_clause_number(self) -> int:
        """Largest clause number in use (0 when empty)."""
        return max(self._clauses, default=0)

    def is_recursive(self) -> bool:
        """True when the predicate dependency graph has a cycle."""
        graph: Dict[str, set] = {}
        for clause in self:
            graph.setdefault(clause.predicate, set()).update(clause.body_predicates())

        visited: Dict[str, int] = {}  # 0 = in progress, 1 = done

        def dfs(node: str) -> bool:
            state = visited.get(node)
            if state == 0:
                return True
            if state == 1:
                return False
            visited[node] = 0
            for successor in graph.get(node, ()):
                if dfs(successor):
                    return True
            visited[node] = 1
            return False

        return any(dfs(predicate) for predicate in graph)

    def predicate_dependency_edges(self) -> Dict[str, Tuple[str, ...]]:
        """Edges ``body predicate -> head predicates`` of the dependency graph.

        Derived from the clause -> body-predicate index the semi-naive
        fixpoint already maintains: an edge ``q -> p`` means some clause
        derives ``p`` using ``q`` in its body, i.e. an update to ``q`` can
        disturb ``p``'s entries.  Every predicate mentioned anywhere (head or
        body) appears as a key, so reachability walks need no special cases.
        """
        edges: Dict[str, set] = {}
        for clause in self:
            edges.setdefault(clause.predicate, set())
            for body_predicate in clause.body_predicates():
                edges.setdefault(body_predicate, set()).add(clause.predicate)
        return {
            predicate: tuple(sorted(heads)) for predicate, heads in edges.items()
        }

    def predicate_sccs(self) -> Tuple[Tuple[str, ...], ...]:
        """Strongly connected components of the predicate dependency graph.

        Components come back in bottom-up topological order (a component
        only depends on earlier ones); predicates inside a component are
        sorted.  This is the stratification the update-stream scheduler uses
        to recognize independent parts of a batch: recursion is confined to
        a component, so two updates whose reachable components are disjoint
        can be maintained as separate units.

        Iterative Tarjan over the same edges as
        :meth:`predicate_dependency_edges`, with sorted adjacency so the
        result is deterministic.
        """
        edges = self.predicate_dependency_edges()
        index_counter = 0
        indexes: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        components: List[Tuple[str, ...]] = []

        for root in sorted(edges):
            if root in indexes:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    indexes[node] = lowlinks[node] = index_counter
                    index_counter += 1
                    stack.append(node)
                    on_stack[node] = True
                successors = edges.get(node, ())
                advanced = False
                while child_index < len(successors):
                    successor = successors[child_index]
                    child_index += 1
                    if successor not in indexes:
                        work.append((node, child_index))
                        work.append((successor, 0))
                        advanced = True
                        break
                    if on_stack.get(successor):
                        lowlinks[node] = min(lowlinks[node], indexes[successor])
                if advanced:
                    continue
                if lowlinks[node] == indexes[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
        # Tarjan pops a component before the components it was reached from;
        # with body->head edges that is dependents-first, so reverse for the
        # bottom-up (dependencies-first) order the docstring promises.
        components.reverse()
        return tuple(components)

    def dependency_order(self) -> Tuple[str, ...]:
        """Predicates in a bottom-up order (callees before callers).

        Predicates involved in cycles are grouped arbitrarily within the
        order; the fixpoint operators do not rely on stratification, this is
        only used for reporting and workload generation.
        """
        graph: Dict[str, set] = {predicate: set() for predicate in self._by_predicate}
        for clause in self:
            for body_predicate in clause.body_predicates():
                if body_predicate in graph:
                    graph[clause.predicate].add(body_predicate)
        ordered: List[str] = []
        marked: Dict[str, int] = {}

        def visit(node: str) -> None:
            if marked.get(node):
                return
            marked[node] = 1
            for dependency in sorted(graph.get(node, ())):
                visit(dependency)
            ordered.append(node)

        for predicate in sorted(graph):
            visit(predicate)
        return tuple(ordered)

    # ------------------------------------------------------------------
    # Rewriting (all return new databases)
    # ------------------------------------------------------------------
    def with_clause_added(self, clause: Clause) -> "ConstrainedDatabase":
        """Return a database with one more clause (auto-numbered)."""
        return ConstrainedDatabase(self.clauses + (clause,))

    def with_clauses_added(self, clauses: Sequence[Clause]) -> "ConstrainedDatabase":
        """Return a database with several clauses appended."""
        return ConstrainedDatabase(self.clauses + tuple(clauses))

    def with_clause_replaced(self, number: int, replacement: Clause) -> "ConstrainedDatabase":
        """Return a database where clause *number* is swapped for *replacement*."""
        if number not in self._clauses:
            raise ProgramError(f"no clause numbered {number}")
        updated = [
            replacement.with_number(number) if clause.number == number else clause
            for clause in self
        ]
        return ConstrainedDatabase(updated)

    def without_clauses(self, numbers: Iterable[int]) -> "ConstrainedDatabase":
        """Return a database without the clauses whose numbers are given."""
        excluded = set(numbers)
        return ConstrainedDatabase(
            clause for clause in self if clause.number not in excluded
        )

    def map_clauses(
        self, transform: "callable[[Clause], Optional[Clause]]"
    ) -> "ConstrainedDatabase":
        """Apply *transform* to every clause; ``None`` results drop the clause."""
        updated = []
        for clause in self:
            result = transform(clause)
            if result is not None:
                updated.append(result if result.number is not None else result.with_number(clause.number))
        return ConstrainedDatabase(updated)
