"""A small text syntax for constrained clauses, atoms and constraints.

The examples, tests and workload generators build constrained databases from
readable rule text instead of assembling AST nodes by hand.  The syntax
follows the paper's notation closely::

    % the law-enforcement mediator (Example 1), abridged
    suspect(X, Y) <- swlndc(X, Y) &
                     in(T, dbase:select_eq('empl_abc', 'name', Y)).

    a(X) <- X >= 3.
    a(X) <- b(X).
    b(X) <- X >= 5.
    c(X) <- a(X).

Rules end with a period.  After ``<-`` the clause body is a ``&``/``,``
separated mixture of *constraint primitives* (comparisons, ``in(...)``
DCA-atoms, ``not(...)`` negated conjunctions, ``true``/``false``) and
*body atoms* (anything that looks like a predicate application).  The
paper's ``||`` separator between the two groups is also accepted and treated
like ``&``.  Identifiers starting with an uppercase letter or ``_`` are
variables; everything else (lower-case identifiers, quoted strings, numbers)
denotes constants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.constraints.ast import (
    Comparison,
    Constraint,
    DomainCall,
    FALSE,
    Membership,
    NegatedConjunction,
    TRUE,
    conjoin,
)
from repro.constraints.terms import Constant, Term, Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%\#][^\n]*)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><=|>=|!=|\|\||<-|=|<|>|\(|\)|,|\.|&|:)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"in", "not", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise ParseError(f"unexpected character {text[index]!r} at offset {index}")
        kind = match.lastgroup or ""
        value = match.group()
        index = match.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token stream helpers ------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[_Token]:
        position = self._index + offset
        if position < len(self._tokens):
            return self._tokens[position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} but found {token.text!r} at offset {token.position}"
            )
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar ---------------------------------------------------------
    def parse_program(self) -> ConstrainedDatabase:
        clauses = []
        while not self.at_end():
            clauses.append(self.parse_clause(require_period=True))
        return ConstrainedDatabase(clauses)

    def parse_clause(self, require_period: bool = False) -> Clause:
        head = self.parse_atom()
        constraint_parts: List[Constraint] = []
        body: List[Atom] = []
        if self._at("<-"):
            self._next()
            constraint_parts, body = self._parse_rule_body()
        if self._at("."):
            self._next()
        elif require_period:
            token = self._peek()
            where = f" at offset {token.position}" if token else " at end of input"
            raise ParseError(f"expected '.' to end the clause{where}")
        return Clause(head, conjoin(*constraint_parts), tuple(body))

    def _parse_rule_body(self) -> Tuple[List[Constraint], List[Atom]]:
        constraints: List[Constraint] = []
        body: List[Atom] = []
        while True:
            item = self._parse_body_item()
            if isinstance(item, Atom):
                body.append(item)
            else:
                constraints.append(item)
            if self._at("&") or self._at(",") or self._at("||"):
                self._next()
                continue
            break
        return constraints, body

    def _parse_body_item(self) -> Union[Constraint, Atom]:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in clause body")
        if token.kind == "name" and token.text == "in":
            return self._parse_membership()
        if token.kind == "name" and token.text == "not":
            return self._parse_negation()
        if token.kind == "name" and token.text == "true":
            self._next()
            return TRUE
        if token.kind == "name" and token.text == "false":
            self._next()
            return FALSE
        # Could be a comparison (term op term) or a body atom.
        if self._looks_like_atom():
            return self.parse_atom()
        left = self._parse_term()
        operator = self._next()
        if operator.text not in ("=", "!=", "<", "<=", ">", ">="):
            raise ParseError(
                f"expected a comparison operator at offset {operator.position}, "
                f"found {operator.text!r}"
            )
        right = self._parse_term()
        return Comparison(left, operator.text, right)

    def _looks_like_atom(self) -> bool:
        token = self._peek()
        following = self._peek(1)
        if token is None or token.kind != "name":
            return False
        if token.text in _KEYWORDS:
            return False
        if following is None or following.text != "(":
            return False
        # ``name(`` could still be a comparison operand only if the name were
        # a function call, which the term grammar does not have; treat as atom.
        return True

    def parse_atom(self) -> Atom:
        token = self._next()
        if token.kind != "name" or token.text in _KEYWORDS:
            raise ParseError(
                f"expected a predicate name at offset {token.position}, found {token.text!r}"
            )
        predicate = token.text
        args: List[Term] = []
        if self._at("("):
            self._next()
            if not self._at(")"):
                args.append(self._parse_term())
                while self._at(","):
                    self._next()
                    args.append(self._parse_term())
            self._expect(")")
        return Atom(predicate, tuple(args))

    def _parse_membership(self) -> Membership:
        self._expect("in")
        self._expect("(")
        element = self._parse_term()
        self._expect(",")
        call = self._parse_domain_call()
        self._expect(")")
        return Membership(element, call)

    def _parse_domain_call(self) -> DomainCall:
        domain_token = self._next()
        if domain_token.kind != "name":
            raise ParseError(
                f"expected a domain name at offset {domain_token.position}"
            )
        self._expect(":")
        function_token = self._next()
        if function_token.kind != "name":
            raise ParseError(
                f"expected a function name at offset {function_token.position}"
            )
        args: List[Term] = []
        self._expect("(")
        if not self._at(")"):
            args.append(self._parse_term())
            while self._at(","):
                self._next()
                args.append(self._parse_term())
        self._expect(")")
        return DomainCall(domain_token.text, function_token.text, tuple(args))

    def _parse_negation(self) -> Constraint:
        self._expect("not")
        self._expect("(")
        parts: List[Constraint] = []
        while True:
            item = self._parse_body_item()
            if isinstance(item, Atom):
                raise ParseError("not(...) may only contain constraints, not atoms")
            parts.append(item)
            if self._at("&") or self._at(","):
                self._next()
                continue
            break
        self._expect(")")
        return NegatedConjunction(tuple(parts))

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "number":
            text = token.text
            value: object = float(text) if "." in text else int(text)
            return Constant(value)
        if token.kind == "string":
            return Constant(token.text[1:-1])
        if token.kind == "name":
            if token.text in ("true", "false"):
                return Constant(token.text == "true")
            first = token.text[0]
            if first.isupper() or first == "_":
                return Variable(token.text)
            # Record field access such as ``A.streetnum`` is written with an
            # underscore-free dotted name in the paper; the parser keeps the
            # plain lower-case identifier as a symbolic constant.
            return Constant(token.text)
        raise ParseError(f"expected a term at offset {token.position}, found {token.text!r}")

    def parse_constraint(self) -> Constraint:
        parts: List[Constraint] = []
        while True:
            item = self._parse_body_item()
            if isinstance(item, Atom):
                raise ParseError("expected a constraint, found a body atom")
            parts.append(item)
            if self._at("&") or self._at(","):
                self._next()
                continue
            break
        return conjoin(*parts)

    def parse_constrained_atom(self) -> ConstrainedAtom:
        atom = self.parse_atom()
        constraint: Constraint = TRUE
        if self._at("<-"):
            self._next()
            constraint = self.parse_constraint()
        if self._at("."):
            self._next()
        return ConstrainedAtom(atom, constraint)


# ---------------------------------------------------------------------------
# Public helpers
# ---------------------------------------------------------------------------


def parse_program(text: str) -> ConstrainedDatabase:
    """Parse a multi-clause program into a :class:`ConstrainedDatabase`."""
    parser = _Parser(text)
    program = parser.parse_program()
    return program


def parse_clause(text: str) -> Clause:
    """Parse a single clause (trailing period optional)."""
    parser = _Parser(text)
    clause = parser.parse_clause()
    if not parser.at_end():
        raise ParseError(f"trailing input after clause: {text!r}")
    return clause


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``seenwith(X, 'Don Corleone')``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if not parser.at_end():
        raise ParseError(f"trailing input after atom: {text!r}")
    return atom


def parse_constraint(text: str) -> Constraint:
    """Parse a constraint expression such as ``X >= 3 & X != 6``."""
    parser = _Parser(text)
    constraint = parser.parse_constraint()
    if not parser.at_end():
        raise ParseError(f"trailing input after constraint: {text!r}")
    return constraint


def parse_constrained_atom(text: str) -> ConstrainedAtom:
    """Parse ``atom`` or ``atom <- constraint`` into a constrained atom."""
    parser = _Parser(text)
    catom = parser.parse_constrained_atom()
    if not parser.at_end():
        raise ParseError(f"trailing input after constrained atom: {text!r}")
    return catom
