"""Atoms and constrained atoms.

A *constrained atom* ``A(X̄) <- φ`` (paper Section 2.3) pairs an atom whose
arguments are terms with a constraint over (at least) the atom's variables.
Materialized mediated views are sets of constrained atoms; their semantics
``[A(X̄) <- φ]`` is the set of ground instances obtained from the solutions
of ``φ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.constraints.ast import Constraint, TRUE, conjoin
from repro.constraints.simplify import extract_bindings
from repro.constraints.solutions import solution_set
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import (
    Constant,
    FreshVariableFactory,
    Substitution,
    Term,
    Variable,
)
from repro.errors import ProgramError


@dataclass(frozen=True)
class Atom:
    """A predicate applied to a tuple of terms, e.g. ``seenwith(X, Y)``."""

    predicate: str
    args: Tuple[Term, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ProgramError("atoms need a predicate name")
        object.__setattr__(self, "args", tuple(self.args))
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise ProgramError(f"atom argument is not a term: {arg!r}")

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def signature(self) -> Tuple[str, int]:
        """The (predicate, arity) pair identifying the relation."""
        return (self.predicate, len(self.args))

    def variables(self) -> FrozenSet[Variable]:
        """Set of variables occurring in the arguments."""
        return frozenset(arg for arg in self.args if isinstance(arg, Variable))

    def substitute(self, subst: Substitution) -> "Atom":
        """Apply a substitution to the arguments.

        When no argument is bound, ``apply_all`` hands the argument tuple
        back unchanged and the atom itself is returned, preserving sharing
        (and any equality caches keyed on it) through no-op renamings.
        """
        args = subst.apply_all(self.args)
        if args is self.args:
            return self
        return Atom(self.predicate, args)

    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(isinstance(arg, Constant) for arg in self.args)

    def ground_values(self) -> Tuple[object, ...]:
        """Return the Python values of a ground atom's arguments."""
        if not self.is_ground():
            raise ProgramError(f"atom is not ground: {self}")
        return tuple(arg.value for arg in self.args)  # type: ignore[union-attr]

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.predicate}({rendered})"


@dataclass(frozen=True)
class ConstrainedAtom:
    """An atom together with the constraint restricting its variables."""

    atom: Atom
    constraint: Constraint = TRUE

    def __post_init__(self) -> None:
        if not isinstance(self.atom, Atom):
            raise ProgramError(f"not an atom: {self.atom!r}")
        if not isinstance(self.constraint, Constraint):
            raise ProgramError(f"not a constraint: {self.constraint!r}")

    @property
    def predicate(self) -> str:
        """Predicate name of the underlying atom."""
        return self.atom.predicate

    @property
    def signature(self) -> Tuple[str, int]:
        """The (predicate, arity) pair of the underlying atom."""
        return self.atom.signature

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the atom and its constraint."""
        return self.atom.variables() | self.constraint.variables()

    def substitute(self, subst: Substitution) -> "ConstrainedAtom":
        """Apply a substitution to atom and constraint.

        Both components detect no-op substitutions by identity (interned
        constraint nodes return themselves when no bound variable occurs),
        in which case this constrained atom is returned unchanged.
        """
        atom = self.atom.substitute(subst)
        constraint = self.constraint.substitute(subst)
        if atom is self.atom and constraint is self.constraint:
            return self
        return ConstrainedAtom(atom, constraint)

    def renamed_apart(
        self, factory: FreshVariableFactory
    ) -> Tuple["ConstrainedAtom", Substitution]:
        """Return a variant whose variables are fresh w.r.t. *factory*."""
        renaming = factory.renaming_for(self.variables())
        return self.substitute(renaming), renaming

    def with_constraint(self, constraint: Constraint) -> "ConstrainedAtom":
        """Return a copy with the constraint replaced."""
        return ConstrainedAtom(self.atom, constraint)

    def conjoined_with(self, extra: Constraint) -> "ConstrainedAtom":
        """Return a copy whose constraint is ``constraint & extra``."""
        return ConstrainedAtom(self.atom, conjoin(self.constraint, extra))

    def instances(
        self,
        solver: Optional[ConstraintSolver] = None,
        universe: Optional[Iterable[object]] = None,
    ) -> FrozenSet[Tuple[str, Tuple[object, ...]]]:
        """Return the ground instances ``[A(X̄) <- φ]``.

        Each instance is a ``(predicate, value-tuple)`` pair.  Constant
        arguments are kept as-is; variable arguments take every value allowed
        by the constraint (clipped to *universe* when the constraint alone
        does not determine a finite set).  Auxiliary variables occurring only
        in the constraint are existentially quantified: solutions are
        enumerated over all variables and projected onto the atom arguments.
        """
        atom_variables = list(
            dict.fromkeys(
                arg for arg in self.atom.args if isinstance(arg, Variable)
            )
        )
        solutions = solution_set(
            self.constraint, atom_variables, solver=solver, universe=universe
        )
        instances = set()
        for solution in solutions:
            assignment = dict(zip(atom_variables, solution))
            values = tuple(
                arg.value if isinstance(arg, Constant) else assignment[arg]
                for arg in self.atom.args
            )
            instances.add((self.atom.predicate, values))
        return frozenset(instances)

    def bound_tuple(self) -> Optional[Tuple[object, ...]]:
        """Return the single ground tuple this atom denotes, if determined.

        A constrained atom like ``P(X, Y) <- X = a & Y = b`` denotes exactly
        one ground fact; this helper extracts it (``None`` when some argument
        is not pinned to a constant by the constraint's equalities).
        """
        bindings = extract_bindings(self.constraint)
        values = []
        for arg in self.atom.args:
            if isinstance(arg, Constant):
                values.append(arg.value)
            elif arg in bindings:
                values.append(bindings[arg].value)
            else:
                return None
        return tuple(values)

    def __str__(self) -> str:
        return f"{self.atom} <- {self.constraint}"


def make_atom(predicate: str, *args: object) -> Atom:
    """Convenience constructor: non-term arguments become constants."""
    terms = tuple(
        arg if isinstance(arg, (Variable, Constant)) else Constant(arg)  # type: ignore[arg-type]
        for arg in args
    )
    return Atom(predicate, terms)


def ground_atom(predicate: str, values: Sequence[object]) -> Atom:
    """Build a ground atom from raw Python values."""
    return Atom(predicate, tuple(Constant(value) for value in values))
