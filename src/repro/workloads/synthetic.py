"""Synthetic constrained databases for benchmarks and stress tests.

The paper contains no benchmark workloads; these generators produce the
families of constrained databases the benchmark harness sweeps over:

* *layered* acyclic programs -- ground base facts at layer 0 and derived
  predicates whose clauses join the layer below (the classical shape for
  view-maintenance measurements, and duplicate-free by construction),
* *chain* programs -- one long derivation path, which isolates propagation
  depth (this is where DRed's rederivation is most expensive relative to
  StDel's support chasing),
* *transitive closure* programs over generated graphs (recursive views;
  cyclic graphs are the case where the counting baseline diverges),
* *interval* programs -- the numeric constraint shape of the paper's
  Examples 4/5 scaled up to many predicates and intervals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.constraints.ast import TRUE, compare, conjoin, equals
from repro.constraints.terms import Variable
from repro.datalog.atoms import Atom
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """A generated program plus the handles benchmarks need."""

    program: ConstrainedDatabase
    #: Predicates at the base layer (targets for deletions/insertions).
    base_predicates: Tuple[str, ...]
    #: Ground tuples of base facts, keyed by predicate.
    base_facts: Dict[str, Tuple[Tuple[object, ...], ...]]
    #: Predicates of the top (most derived) layer.
    top_predicates: Tuple[str, ...]
    #: Human-readable description used in benchmark reports.
    description: str = ""


def make_layered_program(
    base_facts: int = 20,
    layers: int = 3,
    predicates_per_layer: int = 2,
    fanin: int = 2,
    seed: int = 0,
) -> WorkloadSpec:
    """An acyclic, layered program with ground base facts.

    Layer 0 holds ``predicates_per_layer`` base predicates with
    ``base_facts`` unary facts each; every predicate of layer ``k+1`` is
    defined by clauses joining ``fanin`` predicates of layer ``k`` on their
    single argument.  Views over such programs are duplicate-free, which is
    the Extended DRed sweet spot.
    """
    if layers < 1 or base_facts < 1 or predicates_per_layer < 1:
        raise WorkloadError("layered programs need positive parameters")
    rng = random.Random(seed)
    clauses: List[Clause] = []
    base_fact_map: Dict[str, Tuple[Tuple[object, ...], ...]] = {}
    layer_predicates: List[List[str]] = []

    base_layer = [f"base{i}" for i in range(predicates_per_layer)]
    layer_predicates.append(base_layer)
    variable = Variable("X")
    for predicate in base_layer:
        facts = tuple((value,) for value in range(base_facts))
        base_fact_map[predicate] = facts
        for (value,) in facts:
            clauses.append(Clause(Atom(predicate, (variable,)), equals(variable, value), ()))

    for layer in range(1, layers + 1):
        previous = layer_predicates[-1]
        current = [f"layer{layer}_{i}" for i in range(predicates_per_layer)]
        layer_predicates.append(current)
        for predicate in current:
            chosen = [previous[rng.randrange(len(previous))] for _ in range(fanin)]
            body = tuple(Atom(name, (variable,)) for name in chosen)
            clauses.append(Clause(Atom(predicate, (variable,)), TRUE, body))

    return WorkloadSpec(
        program=ConstrainedDatabase(clauses),
        base_predicates=tuple(base_layer),
        base_facts=base_fact_map,
        top_predicates=tuple(layer_predicates[-1]),
        description=(
            f"layered(base_facts={base_facts}, layers={layers}, "
            f"predicates_per_layer={predicates_per_layer}, fanin={fanin})"
        ),
    )


def make_chain_program(base_facts: int = 20, depth: int = 6) -> WorkloadSpec:
    """A single chain ``p0 -> p1 -> ... -> p_depth`` of unary predicates."""
    if depth < 1 or base_facts < 1:
        raise WorkloadError("chain programs need positive parameters")
    variable = Variable("X")
    clauses: List[Clause] = []
    facts = tuple((value,) for value in range(base_facts))
    for (value,) in facts:
        clauses.append(Clause(Atom("p0", (variable,)), equals(variable, value), ()))
    for level in range(1, depth + 1):
        clauses.append(
            Clause(
                Atom(f"p{level}", (variable,)),
                TRUE,
                (Atom(f"p{level - 1}", (variable,)),),
            )
        )
    return WorkloadSpec(
        program=ConstrainedDatabase(clauses),
        base_predicates=("p0",),
        base_facts={"p0": facts},
        top_predicates=(f"p{depth}",),
        description=f"chain(base_facts={base_facts}, depth={depth})",
    )


def make_transitive_closure_program(
    edges: Sequence[Tuple[object, object]],
) -> WorkloadSpec:
    """The recursive ``path``/``edge`` program over an explicit edge list."""
    if not edges:
        raise WorkloadError("transitive closure needs at least one edge")
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    clauses: List[Clause] = []
    for source, target in edges:
        clauses.append(
            Clause(
                Atom("edge", (x, y)),
                conjoin(equals(x, source), equals(y, target)),
                (),
            )
        )
    clauses.append(Clause(Atom("path", (x, y)), TRUE, (Atom("edge", (x, y)),)))
    clauses.append(
        Clause(Atom("path", (x, y)), TRUE, (Atom("edge", (x, z)), Atom("path", (z, y))))
    )
    return WorkloadSpec(
        program=ConstrainedDatabase(clauses),
        base_predicates=("edge",),
        base_facts={"edge": tuple((s, t) for s, t in edges)},
        top_predicates=("path",),
        description=f"transitive_closure(edges={len(edges)})",
    )


def make_path_graph_edges(length: int) -> Tuple[Tuple[str, str], ...]:
    """Edges of a simple path ``n0 -> n1 -> ... -> n_length`` (acyclic)."""
    return tuple((f"n{i}", f"n{i + 1}") for i in range(length))


def make_cycle_graph_edges(length: int) -> Tuple[Tuple[str, str], ...]:
    """Edges of a directed cycle of the given length (recursive + cyclic)."""
    if length < 2:
        raise WorkloadError("a cycle needs at least two nodes")
    edges = [(f"n{i}", f"n{(i + 1) % length}") for i in range(length)]
    return tuple(edges)


def make_random_graph_edges(
    nodes: int, edges: int, seed: int = 0, acyclic: bool = True
) -> Tuple[Tuple[str, str], ...]:
    """A random edge list; with ``acyclic=True`` edges only go "forward"."""
    if nodes < 2:
        raise WorkloadError("graphs need at least two nodes")
    rng = random.Random(seed)
    result = set()
    attempts = 0
    while len(result) < edges and attempts < edges * 20:
        attempts += 1
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a == b:
            continue
        if acyclic and a > b:
            a, b = b, a
        result.add((f"n{a}", f"n{b}"))
    return tuple(sorted(result))


def make_interval_program(
    predicates: int = 4,
    intervals_per_predicate: int = 3,
    width: int = 50,
    seed: int = 0,
) -> WorkloadSpec:
    """A scaled-up version of the paper's Example 4/5 numeric database.

    Each base predicate holds several interval facts ``p(X) <- X >= lo`` and
    derived predicates union/intersect them through rule chains, so views
    contain overlapping (duplicate) non-ground entries -- the situation where
    DRed needs duplicate handling and StDel does not.
    """
    if predicates < 2:
        raise WorkloadError("interval programs need at least two predicates")
    rng = random.Random(seed)
    variable = Variable("X")
    clauses: List[Clause] = []
    base_facts: Dict[str, Tuple[Tuple[object, ...], ...]] = {}
    for index in range(predicates):
        name = f"iv{index}"
        bounds = sorted(rng.randrange(0, width) for _ in range(intervals_per_predicate))
        base_facts[name] = tuple((bound,) for bound in bounds)
        for bound in bounds:
            clauses.append(
                Clause(Atom(name, (variable,)), compare(variable, ">=", bound), ())
            )
        if index > 0:
            clauses.append(
                Clause(Atom(name, (variable,)), TRUE, (Atom(f"iv{index - 1}", (variable,)),))
            )
    clauses.append(
        Clause(Atom("top", (variable,)), TRUE, (Atom(f"iv{predicates - 1}", (variable,)),))
    )
    return WorkloadSpec(
        program=ConstrainedDatabase(clauses),
        base_predicates=tuple(f"iv{index}" for index in range(predicates)),
        base_facts=base_facts,
        top_predicates=("top",),
        description=(
            f"intervals(predicates={predicates}, "
            f"intervals_per_predicate={intervals_per_predicate}, width={width})"
        ),
    )


def make_interval_join_program(
    ground_facts: int = 6,
    intervals_per_predicate: int = 3,
    pairs: int = 2,
    width: int = 40,
    seed: int = 0,
) -> WorkloadSpec:
    """Joins of ground facts against *bounded*-interval predicates.

    The workload the argument index's range postings are for: every join
    clause has at least one interval-constrained body position, and the
    ``pair`` clauses have arithmetic constraints on **two** body positions.

    * ``g{i}`` -- ground unary base facts (``X = v``),
    * ``iv{i}`` -- base facts bounded into closed intervals
      (``X >= lo & X <= hi``),
    * ``j{i}(X) <- g{i}(X), iv{i}(X)`` -- a pinned value probing an
      interval-constrained pool,
    * ``pair{i}(X) <- iv{i}(X), iv{i+1}(X)`` -- interval × interval, probed
      by overlap,
    * ``top(X) <- j0(X), iv0(X)``.

    Views contain overlapping non-ground entries (DRed's duplicate regime),
    many distinct supports per deleted base fact (StDel's child-support
    index regime) and interval-heavy pools (range-posting regime) at once.
    """
    if pairs < 1 or ground_facts < 1 or intervals_per_predicate < 1:
        raise WorkloadError("interval-join programs need positive parameters")
    if ground_facts > width + width // 2:
        raise WorkloadError(
            "interval-join programs draw distinct ground facts from "
            f"[0, width * 1.5): ground_facts={ground_facts} needs width >= "
            f"{(2 * ground_facts + 2) // 3}"
        )
    rng = random.Random(seed)
    variable = Variable("X")
    clauses: List[Clause] = []
    base_facts: Dict[str, Tuple[Tuple[object, ...], ...]] = {}
    interval_count = pairs + 1
    for index in range(interval_count):
        name = f"iv{index}"
        # Deletion targets are *points* inside the intervals (the atoms are
        # unary), one per interval fact -- deleting one carves a hole out of
        # every overlapping entry, the duplicate regime StDel is built for.
        points: List[Tuple[object, ...]] = []
        for _ in range(intervals_per_predicate):
            low = rng.randrange(0, width)
            high = low + rng.randrange(2, max(3, width // 4))
            points.append((rng.randrange(low, high + 1),))
            clauses.append(
                Clause(
                    Atom(name, (variable,)),
                    conjoin(compare(variable, ">=", low), compare(variable, "<=", high)),
                    (),
                )
            )
        base_facts[name] = tuple(points)
    for index in range(interval_count):
        name = f"g{index}"
        values = sorted(rng.sample(range(0, width + width // 2), ground_facts))
        base_facts[name] = tuple((value,) for value in values)
        for value in values:
            clauses.append(Clause(Atom(name, (variable,)), equals(variable, value), ()))
        clauses.append(
            Clause(
                Atom(f"j{index}", (variable,)),
                TRUE,
                (Atom(name, (variable,)), Atom(f"iv{index}", (variable,))),
            )
        )
    for index in range(pairs):
        clauses.append(
            Clause(
                Atom(f"pair{index}", (variable,)),
                TRUE,
                (Atom(f"iv{index}", (variable,)), Atom(f"iv{index + 1}", (variable,))),
            )
        )
    clauses.append(
        Clause(
            Atom("top", (variable,)),
            TRUE,
            (Atom("j0", (variable,)), Atom("iv0", (variable,))),
        )
    )
    return WorkloadSpec(
        program=ConstrainedDatabase(clauses),
        base_predicates=tuple(
            [f"iv{index}" for index in range(interval_count)]
            + [f"g{index}" for index in range(interval_count)]
        ),
        base_facts=base_facts,
        top_predicates=("top",) + tuple(f"pair{index}" for index in range(pairs)),
        description=(
            f"interval_join(ground_facts={ground_facts}, "
            f"intervals_per_predicate={intervals_per_predicate}, "
            f"pairs={pairs}, width={width})"
        ),
    )
