"""The law-enforcement scenario (paper Example 1 and Figure 1).

Builds the full running example of the paper as an executable mediator:

* a ``facextract`` domain (face extraction from surveillance photographs),
* a ``facedb`` domain (background face database with known identities),
* a ``paradox`` relational source holding the phone/address book,
* a ``spatialdb`` domain (geocoding + "within 100 miles of Washington DC"),
* a ``dbase`` relational source holding the employees of "ABC Corp", and
* the three mediator clauses defining ``seenwith``, ``swlndc`` and
  ``suspect``.

The original external packages are proprietary; the synthetic generator
controls exactly who appears on which photograph, who lives near DC and who
works for the front company, so the expected answer set is known and the
scenario can be scaled for benchmarks.

Two small, documented deviations from the paper's rule text (both preserve
the semantics):

* record field access ``A.streetnum`` is expressed through the relational
  domain's ``field(row, column)`` function, and the shared-origin test
  ``=(P1.origin, P2.origin)`` through ``facextract:origin_of``;
* ``seenwith`` additionally constrains ``X`` by ``in(X, facedb:people())``
  so the rule is range-restricted (the paper binds ``X`` only through the
  query ``suspect('Don Corleone', Y)``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.domains.face import FaceDbDomain, FaceExtractDomain, FaceScenario, make_face_scenario
from repro.domains.relational import RelationalDomain, make_relational_domain
from repro.domains.spatial import SpatialDomain, make_spatial_domain
from repro.errors import WorkloadError
from repro.mediator.builder import MediatorBuilder
from repro.mediator.mediator import Mediator

#: Reference point of the DC-area map (synthetic coordinates in miles).
DC_CENTER = (0.0, 0.0)

#: The radius used by the paper's query ("within a hundred mile radius").
DC_RADIUS_MILES = 100

#: The mediator rules of Example 1 (see the module docstring for deviations).
LAW_ENFORCEMENT_RULES = """
seenwith(X, Y) <- in(X, facedb:people()) &
                  in(P1, facextract:segmentface('surveillancedata')) &
                  in(P2, facextract:segmentface('surveillancedata')) &
                  in(O, facextract:origin_of(P1)) &
                  in(O, facextract:origin_of(P2)) &
                  P1 != P2 &
                  in(P3, facedb:findface(X)) &
                  in(true, facextract:matchface(P1, P3)) &
                  in(Y, facedb:findname(P2)) &
                  X != Y.

swlndc(X, Y) <- in(A, paradox:select_eq('phonebook', 'name', Y)) &
                in(SN, paradox:field(A, 'streetnum')) &
                in(ST, paradox:field(A, 'streetname')) &
                in(CT, paradox:field(A, 'cityname')) &
                in(SA, paradox:field(A, 'statename')) &
                in(ZP, paradox:field(A, 'zipcode')) &
                in(PT, spatialdb:locateaddress(SN, ST, CT, SA, ZP)) &
                in(PX, spatialdb:point_x(PT)) &
                in(PY, spatialdb:point_y(PT)) &
                in(true, spatialdb:range('dcareamap', PX, PY, 100))
                || seenwith(X, Y).

suspect(X, Y) <- in(T, dbase:select_eq('empl_abc', 'name', Y)) || swlndc(X, Y).
"""


@dataclass
class LawEnforcementScenario:
    """All the moving parts of one generated law-enforcement instance."""

    mediator: Mediator
    face_scenario: FaceScenario
    facextract: FaceExtractDomain
    facedb: FaceDbDomain
    paradox: RelationalDomain
    dbase: RelationalDomain
    spatialdb: SpatialDomain
    kingpin: str
    people: Tuple[str, ...]
    near_dc: Tuple[str, ...]
    abc_employees: Tuple[str, ...]

    def expected_suspects(self) -> Tuple[Tuple[str, str], ...]:
        """Ground truth: every ``suspect(X, Y)`` pair the mediator should derive.

        ``Y`` is a suspect w.r.t. ``X`` when the two appear together on at
        least one surveillance photograph, ``Y`` lives within the DC radius,
        and ``Y`` works for ABC Corp.  (The paper's query then binds ``X`` to
        the kingpin; see :meth:`expected_kingpin_suspects`.)
        """
        near = set(self.near_dc)
        employed = set(self.abc_employees)
        pairs = set()
        for photos in self.face_scenario.appearances.values():
            for visible in photos:
                for witness in visible:
                    for person in visible:
                        if person == witness:
                            continue
                        if person in near and person in employed:
                            pairs.add((witness, person))
        return tuple(sorted(pairs))

    def expected_kingpin_suspects(self) -> Tuple[Tuple[str, str], ...]:
        """Ground truth restricted to the paper's query ``suspect(kingpin, Y)``."""
        return tuple(
            pair for pair in self.expected_suspects() if pair[0] == self.kingpin
        )


def person_name(index: int) -> str:
    """Deterministic synthetic person names (``person00``, ``person01``, ...)."""
    return f"person{index:02d}"


def make_law_enforcement_scenario(
    num_people: int = 12,
    photo_count: int = 8,
    people_per_photo: int = 3,
    near_dc_fraction: float = 0.5,
    abc_fraction: float = 0.5,
    kingpin: str = "Don Corleone",
    seed: int = 7,
) -> LawEnforcementScenario:
    """Generate a complete, internally consistent scenario.

    The kingpin is always part of the population and appears on roughly half
    of the photographs; the remaining parameters control how many people
    live near DC and how many work for the front company.
    """
    if num_people < 3:
        raise WorkloadError("the scenario needs at least three people")
    rng = random.Random(seed)
    others = [person_name(index) for index in range(num_people - 1)]
    people = [kingpin] + others

    # Surveillance photographs: the kingpin shows up on every other photo.
    photos: List[List[str]] = []
    for photo_index in range(photo_count):
        size = min(people_per_photo, len(others))
        visible = rng.sample(others, size)
        if photo_index % 2 == 0:
            visible = [kingpin] + visible[: max(size - 1, 1)]
        photos.append(visible)
    face_scenario = make_face_scenario(people, photos=photos)
    facextract = FaceExtractDomain(face_scenario)
    facedb = FaceDbDomain(face_scenario)

    # Addresses: roughly `near_dc_fraction` of the others live near DC.
    near_dc: List[str] = []
    addresses: Dict[Tuple[object, object, object, object, object], Tuple[float, float]] = {}
    phonebook_rows = []
    for index, person in enumerate(others):
        streetnum = 100 + index
        address = (streetnum, "main st", "cityville", "MD", 20700 + index)
        if rng.random() < near_dc_fraction:
            location = (rng.uniform(-60.0, 60.0), rng.uniform(-60.0, 60.0))
            near_dc.append(person)
        else:
            location = (rng.uniform(150.0, 400.0), rng.uniform(150.0, 400.0))
        addresses[address] = location
        phonebook_rows.append((person,) + address)
    spatialdb = make_spatial_domain(
        addresses=addresses, maps={"dcareamap": DC_CENTER}
    )

    paradox = make_relational_domain(
        "paradox",
        {
            "phonebook": (
                ("name", "streetnum", "streetname", "cityname", "statename", "zipcode"),
                phonebook_rows,
            )
        },
        description="PARADOX phone/address book",
    )

    abc_employees = sorted(rng.sample(others, max(1, int(len(others) * abc_fraction))))
    dbase = make_relational_domain(
        "dbase",
        {
            "empl_abc": (
                ("name", "title"),
                [(person, "analyst") for person in abc_employees],
            )
        },
        description="DBASE employee list of ABC Corp",
    )

    mediator = (
        MediatorBuilder()
        .with_rules(LAW_ENFORCEMENT_RULES)
        .with_domain(facextract)
        .with_domain(facedb)
        .with_domain(paradox)
        .with_domain(dbase)
        .with_domain(spatialdb)
        .build()
    )
    return LawEnforcementScenario(
        mediator=mediator,
        face_scenario=face_scenario,
        facextract=facextract,
        facedb=facedb,
        paradox=paradox,
        dbase=dbase,
        spatialdb=spatialdb,
        kingpin=kingpin,
        people=tuple(people),
        near_dc=tuple(sorted(near_dc)),
        abc_employees=tuple(abc_employees),
    )
