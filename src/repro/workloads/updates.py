"""Update-stream generators.

Benchmarks replay streams of deletions / insertions / source changes against
a materialized view; the generators here pick the update targets
deterministically (seeded) from a :class:`~repro.workloads.synthetic.
WorkloadSpec` so every algorithm is measured on exactly the same stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.constraints.ast import conjoin, equals
from repro.constraints.terms import Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.errors import WorkloadError
from repro.maintenance.requests import DeletionRequest, InsertionRequest
from repro.workloads.synthetic import WorkloadSpec

UpdateRequest = Union[DeletionRequest, InsertionRequest]


def ground_request_atom(predicate: str, values: Sequence[object]) -> ConstrainedAtom:
    """Build ``p(X1, ..., Xn) <- X1 = v1 & ... & Xn = vn``.

    Update requests are expressed in the paper's non-ground style (variables
    in the atom, bindings in the constraint) so the algorithms exercise their
    general code path even for ground updates.
    """
    variables = tuple(Variable(f"X{index + 1}") for index in range(len(values)))
    constraint = conjoin(*(equals(var, value) for var, value in zip(variables, values)))
    return ConstrainedAtom(Atom(predicate, variables), constraint)


def deletion_stream(
    spec: WorkloadSpec,
    count: int,
    seed: int = 0,
    predicate: Optional[str] = None,
) -> Tuple[DeletionRequest, ...]:
    """Pick *count* distinct base facts of *spec* to delete."""
    rng = random.Random(seed)
    candidates: List[Tuple[str, Tuple[object, ...]]] = []
    for base_predicate, facts in spec.base_facts.items():
        if predicate is not None and base_predicate != predicate:
            continue
        candidates.extend((base_predicate, fact) for fact in facts)
    if count > len(candidates):
        raise WorkloadError(
            f"cannot delete {count} facts, only {len(candidates)} base facts exist"
        )
    chosen = rng.sample(candidates, count)
    return tuple(
        DeletionRequest(ground_request_atom(base_predicate, fact))
        for base_predicate, fact in chosen
    )


def insertion_stream(
    spec: WorkloadSpec,
    count: int,
    seed: int = 0,
    predicate: Optional[str] = None,
    value_offset: int = 1_000_000,
) -> Tuple[InsertionRequest, ...]:
    """Generate *count* fresh base facts to insert (values outside the base range)."""
    rng = random.Random(seed)
    predicates = [
        name
        for name in spec.base_predicates
        if predicate is None or name == predicate
    ]
    if not predicates:
        raise WorkloadError(f"no base predicate matches {predicate!r}")
    requests: List[InsertionRequest] = []
    for index in range(count):
        target = predicates[rng.randrange(len(predicates))]
        arity = len(spec.base_facts[target][0]) if spec.base_facts.get(target) else 1
        values = tuple(value_offset + index * arity + position for position in range(arity))
        requests.append(InsertionRequest(ground_request_atom(target, values)))
    return tuple(requests)


@dataclass(frozen=True)
class MixedStream:
    """A deterministic interleaving of deletions and insertions."""

    requests: Tuple[UpdateRequest, ...]

    def deletions(self) -> Tuple[DeletionRequest, ...]:
        """The deletion requests in stream order."""
        return tuple(r for r in self.requests if isinstance(r, DeletionRequest))

    def insertions(self) -> Tuple[InsertionRequest, ...]:
        """The insertion requests in stream order."""
        return tuple(r for r in self.requests if isinstance(r, InsertionRequest))


def mixed_stream(
    spec: WorkloadSpec,
    deletions: int,
    insertions: int,
    seed: int = 0,
) -> MixedStream:
    """Interleave deletions and insertions deterministically."""
    delete_requests = list(deletion_stream(spec, deletions, seed=seed))
    insert_requests = list(insertion_stream(spec, insertions, seed=seed + 1))
    rng = random.Random(seed + 2)
    combined: List[UpdateRequest] = delete_requests + insert_requests
    rng.shuffle(combined)
    return MixedStream(tuple(combined))
