"""Update-stream generators.

Benchmarks replay streams of deletions / insertions / source changes against
a materialized view; the generators here pick the update targets
deterministically (seeded) from a :class:`~repro.workloads.synthetic.
WorkloadSpec` so every algorithm is measured on exactly the same stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.constraints.ast import conjoin, equals
from repro.constraints.terms import Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.errors import WorkloadError
from repro.maintenance.requests import DeletionRequest, InsertionRequest
from repro.workloads.synthetic import WorkloadSpec

UpdateRequest = Union[DeletionRequest, InsertionRequest]


def ground_request_atom(predicate: str, values: Sequence[object]) -> ConstrainedAtom:
    """Build ``p(X1, ..., Xn) <- X1 = v1 & ... & Xn = vn``.

    Update requests are expressed in the paper's non-ground style (variables
    in the atom, bindings in the constraint) so the algorithms exercise their
    general code path even for ground updates.
    """
    variables = tuple(Variable(f"X{index + 1}") for index in range(len(values)))
    constraint = conjoin(*(equals(var, value) for var, value in zip(variables, values)))
    return ConstrainedAtom(Atom(predicate, variables), constraint)


def deletion_stream(
    spec: WorkloadSpec,
    count: int,
    seed: int = 0,
    predicate: Optional[str] = None,
) -> Tuple[DeletionRequest, ...]:
    """Pick *count* distinct base facts of *spec* to delete."""
    rng = random.Random(seed)
    candidates: List[Tuple[str, Tuple[object, ...]]] = []
    for base_predicate, facts in spec.base_facts.items():
        if predicate is not None and base_predicate != predicate:
            continue
        candidates.extend((base_predicate, fact) for fact in facts)
    if count > len(candidates):
        raise WorkloadError(
            f"cannot delete {count} facts, only {len(candidates)} base facts exist"
        )
    chosen = rng.sample(candidates, count)
    return tuple(
        DeletionRequest(ground_request_atom(base_predicate, fact))
        for base_predicate, fact in chosen
    )


def insertion_stream(
    spec: WorkloadSpec,
    count: int,
    seed: int = 0,
    predicate: Optional[str] = None,
    value_offset: int = 1_000_000,
) -> Tuple[InsertionRequest, ...]:
    """Generate *count* fresh base facts to insert (values outside the base range)."""
    rng = random.Random(seed)
    predicates = [
        name
        for name in spec.base_predicates
        if predicate is None or name == predicate
    ]
    if not predicates:
        raise WorkloadError(f"no base predicate matches {predicate!r}")
    requests: List[InsertionRequest] = []
    for index in range(count):
        target = predicates[rng.randrange(len(predicates))]
        arity = len(spec.base_facts[target][0]) if spec.base_facts.get(target) else 1
        values = tuple(value_offset + index * arity + position for position in range(arity))
        requests.append(InsertionRequest(ground_request_atom(target, values)))
    return tuple(requests)


@dataclass(frozen=True)
class MixedStream:
    """A deterministic interleaving of deletions and insertions."""

    requests: Tuple[UpdateRequest, ...]

    def deletions(self) -> Tuple[DeletionRequest, ...]:
        """The deletion requests in stream order."""
        return tuple(r for r in self.requests if isinstance(r, DeletionRequest))

    def insertions(self) -> Tuple[InsertionRequest, ...]:
        """The insertion requests in stream order."""
        return tuple(r for r in self.requests if isinstance(r, InsertionRequest))


def mixed_stream(
    spec: WorkloadSpec,
    deletions: int,
    insertions: int,
    seed: int = 0,
) -> MixedStream:
    """Interleave deletions and insertions deterministically."""
    delete_requests = list(deletion_stream(spec, deletions, seed=seed))
    insert_requests = list(insertion_stream(spec, insertions, seed=seed + 1))
    rng = random.Random(seed + 2)
    combined: List[UpdateRequest] = delete_requests + insert_requests
    rng.shuffle(combined)
    return MixedStream(tuple(combined))


def stream_batches(
    spec: WorkloadSpec,
    batches: int,
    deletions: int = 2,
    insertions: int = 2,
    seed: int = 0,
    duplicates: int = 0,
    cancellations: int = 0,
) -> Tuple[MixedStream, ...]:
    """A deterministic sequence of update batches for the stream scheduler.

    Each batch interleaves *deletions* of distinct base facts (sampled
    without replacement across the whole sequence, so every deletion is
    effective) with *insertions* of fresh facts (value ranges disjoint per
    batch).  On top of that, per batch:

    * *duplicates* requests are repeated verbatim later in the batch --
      coalescing fodder (the repeat is a sequential no-op);
    * *cancellations* insert a fresh atom and delete exactly that atom later
      in the same batch -- the insert-then-delete pair the coalescer
      cancels outright via ``subsumes_instances``.

    The same seed always produces the same batches, so every scheduler
    configuration (coalescing on/off, sequential/parallel strata, either
    deletion algorithm) is measured on an identical stream.
    """
    rng = random.Random(seed)
    candidates: List[Tuple[str, Tuple[object, ...]]] = []
    for base_predicate, facts in sorted(spec.base_facts.items()):
        candidates.extend((base_predicate, fact) for fact in facts)
    rng.shuffle(candidates)
    predicates = sorted(spec.base_facts)
    if not predicates:
        raise WorkloadError("workload has no base facts to build a stream from")

    result: List[MixedStream] = []
    for batch_index in range(batches):
        requests: List[UpdateRequest] = []
        for _ in range(deletions):
            if not candidates:
                break
            base_predicate, fact = candidates.pop()
            requests.append(DeletionRequest(ground_request_atom(base_predicate, fact)))
        requests.extend(
            insertion_stream(
                spec,
                insertions,
                seed=seed + 31 * batch_index + 1,
                value_offset=1_000_000 + 10_000 * batch_index,
            )
        )
        rng.shuffle(requests)
        for _ in range(duplicates):
            if not requests:
                break
            position = rng.randrange(len(requests))
            requests.insert(
                rng.randrange(position, len(requests)) + 1, requests[position]
            )
        for cancel_index in range(cancellations):
            target = predicates[rng.randrange(len(predicates))]
            arity = (
                len(spec.base_facts[target][0]) if spec.base_facts.get(target) else 1
            )
            values = tuple(
                5_000_000 + 10_000 * batch_index + cancel_index * arity + position
                for position in range(arity)
            )
            atom = ground_request_atom(target, values)
            insert_at = rng.randrange(len(requests) + 1)
            requests.insert(insert_at, InsertionRequest(atom))
            requests.insert(
                rng.randrange(insert_at + 1, len(requests) + 1),
                DeletionRequest(atom),
            )
        result.append(MixedStream(tuple(requests)))
    return tuple(result)
