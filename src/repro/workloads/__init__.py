"""Workload generators for examples, tests and benchmarks."""

from repro.workloads.law_enforcement import (
    DC_RADIUS_MILES,
    LAW_ENFORCEMENT_RULES,
    LawEnforcementScenario,
    make_law_enforcement_scenario,
    person_name,
)
from repro.workloads.synthetic import (
    WorkloadSpec,
    make_chain_program,
    make_cycle_graph_edges,
    make_interval_join_program,
    make_interval_program,
    make_layered_program,
    make_path_graph_edges,
    make_random_graph_edges,
    make_transitive_closure_program,
)
from repro.workloads.updates import (
    MixedStream,
    deletion_stream,
    ground_request_atom,
    insertion_stream,
    mixed_stream,
    stream_batches,
)

__all__ = [
    "DC_RADIUS_MILES",
    "LAW_ENFORCEMENT_RULES",
    "LawEnforcementScenario",
    "MixedStream",
    "WorkloadSpec",
    "deletion_stream",
    "ground_request_atom",
    "insertion_stream",
    "make_chain_program",
    "make_cycle_graph_edges",
    "make_interval_join_program",
    "make_interval_program",
    "make_law_enforcement_scenario",
    "make_layered_program",
    "make_path_graph_edges",
    "make_random_graph_edges",
    "make_transitive_closure_program",
    "mixed_stream",
    "person_name",
    "stream_batches",
]
