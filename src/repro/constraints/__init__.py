"""Constraint language substrate.

This subpackage provides the building blocks of the paper's constrained
atoms and constrained clauses:

* :mod:`repro.constraints.terms` -- variables, constants, substitutions,
* :mod:`repro.constraints.ast` -- the constraint expressions themselves
  (comparisons, DCA-atoms, conjunctions and negated conjunctions),
* :mod:`repro.constraints.intern` -- the hash-consing substrate: every term
  and constraint node is interned at construction, so structural equality
  is pointer identity (see ``README.md`` in this package),
* :mod:`repro.constraints.solver` -- satisfiability / entailment checking,
* :mod:`repro.constraints.simplify` -- redundancy removal,
* :mod:`repro.constraints.solutions` -- instance enumeration,
* :mod:`repro.constraints.interfaces` -- the protocol the external-domain
  layer implements so the solver can evaluate domain calls.
"""

from repro.constraints.ast import (
    Comparison,
    Conjunction,
    Constraint,
    DomainCall,
    FALSE,
    FalseConstraint,
    Membership,
    NegatedConjunction,
    TRUE,
    TrueConstraint,
    bindings_constraint,
    compare,
    conjoin,
    equals,
    member,
    negate,
    not_equals,
    tuple_equalities,
)
from repro.constraints.intern import InternTable, intern_stats
from repro.constraints.interfaces import (
    CallEvaluator,
    EMPTY_RESULT_SET,
    FrozenResultSet,
    ResultSetLike,
)
from repro.constraints.projection import eliminate_variables
from repro.constraints.simplify import canonical_form, extract_bindings, simplify
from repro.constraints.solutions import (
    enumerate_solutions,
    equivalent_on_universe,
    solution_set,
)
from repro.constraints.solver import ConstraintSolver, SolverOptions
from repro.constraints.terms import (
    Constant,
    FreshVariableFactory,
    Substitution,
    Term,
    Variable,
    is_constant,
    is_variable,
    make_term,
)

__all__ = [
    "CallEvaluator",
    "Comparison",
    "Conjunction",
    "Constant",
    "Constraint",
    "ConstraintSolver",
    "DomainCall",
    "EMPTY_RESULT_SET",
    "FALSE",
    "FalseConstraint",
    "FreshVariableFactory",
    "FrozenResultSet",
    "InternTable",
    "Membership",
    "NegatedConjunction",
    "ResultSetLike",
    "SolverOptions",
    "Substitution",
    "TRUE",
    "Term",
    "TrueConstraint",
    "Variable",
    "bindings_constraint",
    "canonical_form",
    "compare",
    "conjoin",
    "eliminate_variables",
    "enumerate_solutions",
    "equals",
    "equivalent_on_universe",
    "extract_bindings",
    "intern_stats",
    "is_constant",
    "is_variable",
    "make_term",
    "member",
    "negate",
    "not_equals",
    "simplify",
    "solution_set",
    "tuple_equalities",
]
