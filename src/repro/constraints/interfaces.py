"""Interfaces between the constraint solver and the external-domain layer.

The solver has to evaluate DCA-atoms ``in(X, domain:function(args))`` against
whatever sources the mediator integrates, but the :mod:`repro.constraints`
package must not depend on :mod:`repro.domains` (which depends back on the
constraint AST).  These small protocol classes break that cycle: the domain
layer implements them, and the solver consumes them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Protocol, Tuple, runtime_checkable


@runtime_checkable
class ResultSetLike(Protocol):
    """The set of values returned by one domain call.

    A result set may be *finite* (fully enumerable) or *intensional*
    (possibly infinite, e.g. ``arith:greater(2)``); intensional sets must
    still answer membership queries and say whether they are known to be
    empty.
    """

    def contains(self, value: object) -> bool:
        """Return True if *value* is a member of the result set."""

    def is_finite(self) -> bool:
        """Return True if the set can be enumerated by :meth:`iter_values`."""

    def is_empty(self) -> bool:
        """Return True if the set is known to be empty."""

    def iter_values(self) -> Iterator[object]:
        """Iterate the members (only valid when :meth:`is_finite` is True)."""

    def size_hint(self) -> Optional[int]:
        """Return the cardinality when finite and known, else ``None``."""


@runtime_checkable
class CallEvaluator(Protocol):
    """Evaluates ground domain calls; implemented by the domain registry.

    Beyond the two required methods, the solver discovers two *optional*
    members by ``getattr`` (so ad-hoc evaluators need not provide them):

    * ``version`` -- a comparable token that changes whenever any source's
      behaviour may have changed; its presence makes memoization of
      DCA-dependent satisfiability results safe by default (the solver drops
      stale entries on token change).
    * ``quick_reject(domain, function, args, value) -> bool`` -- a cheap
      membership refuter consulted by the quick-reject pre-filter; True only
      when *value* is definitely not in ``domain:function(args)``.
    """

    def evaluate_call(
        self, domain: str, function: str, args: Tuple[object, ...]
    ) -> ResultSetLike:
        """Execute ``domain:function(args)`` and return its result set.

        Implementations raise :class:`repro.errors.UnknownDomainError` or
        :class:`repro.errors.UnknownFunctionError` for unknown targets and
        :class:`repro.errors.EvaluationError` for runtime failures.
        """

    def has_domain(self, domain: str) -> bool:
        """Return True if a domain with this name is registered."""


class FrozenResultSet:
    """A simple finite, immutable result set usable by tests and domains."""

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[object] = ()) -> None:
        self._values = frozenset(values)

    def contains(self, value: object) -> bool:
        return value in self._values

    def is_finite(self) -> bool:
        return True

    def is_empty(self) -> bool:
        return not self._values

    def iter_values(self) -> Iterator[object]:
        return iter(self._values)

    def size_hint(self) -> Optional[int]:
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __contains__(self, value: object) -> bool:
        return value in self._values

    def __repr__(self) -> str:
        return f"FrozenResultSet({sorted(map(repr, self._values))})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenResultSet):
            return self._values == other._values
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)


EMPTY_RESULT_SET = FrozenResultSet()
