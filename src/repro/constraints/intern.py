"""Hash-consing substrate for the constraint language.

Every term and constraint node is *interned* at construction: the class's
``__new__`` builds a structural key (whose elements are themselves already
interned, so hashing is a few cached-int mixes and equality is pointer
comparison) and consults a per-class :class:`InternTable`.  Structurally
equal nodes therefore ARE the same Python object, ``__eq__`` degenerates to
identity, and every hash is computed exactly once, at construction.

This is the discipline decision-diagram libraries (the ddd/sdd CTL-checker
exemplar) use to make fixpoint comparison O(1); here it makes view-entry
keys, solver memo probes and maintenance dedup pointer lookups.

Thread-safety and lifetime:

* Each table holds a :class:`weakref.WeakValueDictionary` guarded by one
  lock.  The critical section is a dict probe plus, on a miss, allocating
  the node -- builders never re-enter the same table (children are interned
  *before* the key exists), so the lock order is trivially acyclic and the
  ``max_workers=4`` pipelined scheduler can construct from any thread.
* Entries are weak: a node lives exactly as long as something outside the
  table references it.  Per-node memo slots (canonical form, satisfiability,
  simplification -- see :mod:`repro.constraints.ast`) share that lifetime,
  which is the size policy that replaced the old module-global
  ``_CANONICAL_CACHE``: drop the last reference to a constraint and every
  cached fact about it goes too.

Statistics: each table counts hits/misses under its lock (exact); the
module-level :data:`EVENTS` counters (identity short-circuits, canonical
memo traffic) are plain ints bumped without a lock -- under the GIL a rare
lost increment is acceptable for telemetry, and the benchmark harness runs
single-threaded where they are exact.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Dict, Hashable, TypeVar

_NodeT = TypeVar("_NodeT")


class InternTable:
    """One weak-valued hash-consing table (one per node class)."""

    __slots__ = ("name", "_lock", "_nodes", "hits", "misses")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._nodes: "weakref.WeakValueDictionary[Hashable, object]" = (
            weakref.WeakValueDictionary()
        )
        self.hits = 0
        self.misses = 0

    def intern(self, key: Hashable, build: Callable[[], _NodeT]) -> _NodeT:
        """Return the canonical node for *key*, building it on first use.

        *build* must allocate the node and fully initialise its slots; it is
        called under the table lock (it performs no interning itself -- the
        key's children are interned before the call) so that two threads
        racing on the same key observe exactly one canonical node.
        """
        with self._lock:
            node = self._nodes.get(key)
            if node is not None:
                self.hits += 1
                return node  # type: ignore[return-value]
            node = build()
            self._nodes[key] = node
            self.misses += 1
            return node

    def __len__(self) -> int:
        return len(self._nodes)


#: Registry of every intern table, keyed by its metrics label.
_TABLES: Dict[str, InternTable] = {}
_TABLES_LOCK = threading.Lock()


def table(name: str) -> InternTable:
    """Create-or-get the intern table labelled *name* (import-time only)."""
    with _TABLES_LOCK:
        existing = _TABLES.get(name)
        if existing is None:
            existing = _TABLES[name] = InternTable(name)
        return existing


class _EventCounters:
    """Lock-free telemetry for identity fast paths and canonical memos."""

    __slots__ = (
        "identity_subsumptions",
        "identity_subtractions",
        "canonical_hits",
        "canonical_misses",
        "sat_node_hits",
        "simplify_node_hits",
    )

    def __init__(self) -> None:
        self.identity_subsumptions = 0
        self.identity_subtractions = 0
        self.canonical_hits = 0
        self.canonical_misses = 0
        self.sat_node_hits = 0
        self.simplify_node_hits = 0

    def as_dict(self) -> Dict[str, int]:
        return {slot: getattr(self, slot) for slot in self.__slots__}


#: Process-global event counters (see module docstring for accuracy notes).
EVENTS = _EventCounters()


def intern_stats() -> Dict[str, object]:
    """Snapshot of every intern table plus the event counters.

    Shape::

        {"tables": {name: {"hits": int, "misses": int, "size": int}},
         "events": {...},
         "hits": int, "misses": int, "size": int}   # totals
    """
    tables: Dict[str, Dict[str, int]] = {}
    total_hits = total_misses = total_size = 0
    with _TABLES_LOCK:
        registry = dict(_TABLES)
    for name, entry in sorted(registry.items()):
        with entry._lock:
            hits, misses, size = entry.hits, entry.misses, len(entry)
        tables[name] = {"hits": hits, "misses": misses, "size": size}
        total_hits += hits
        total_misses += misses
        total_size += size
    return {
        "tables": tables,
        "events": EVENTS.as_dict(),
        "hits": total_hits,
        "misses": total_misses,
        "size": total_size,
    }
