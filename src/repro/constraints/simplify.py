"""Constraint simplification.

The Straight Delete algorithm (Section 3.1.2) repeatedly replaces a view
entry's constraint ``φ`` by ``φ & bindings & not(ψ)``; the paper notes that
"the constraints that are created in step 3 of the algorithm will often
contain redundancy.  But ... in many cases the redundancy can be removed by
simplification of the constraints" (its Example 5 turns
``X <= 5 & not(X <= 5 & X = 6)`` into ``X <= 5 & X != 6``).

This module implements exactly that simplification:

* duplicate conjuncts are removed,
* negated conjunctions are reduced against the positive context: inner
  conjuncts entailed by the context disappear, inner conjuncts contradicted
  by the context make the whole negation trivially true, a singleton residue
  is replaced by the dual primitive literal, and an empty residue collapses
  the constraint to ``false``,
* (optionally) comparison conjuncts entailed by the rest are dropped.

Membership (DCA) atoms are never dropped, even when the current domain
contents make them redundant: under the ``W_P`` reading of Section 4 their
truth may change over time, so removing them would change the view's
semantics at later time points.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.constraints.ast import (
    Comparison,
    Constraint,
    FALSE,
    FalseConstraint,
    NegatedConjunction,
    TRUE,
    TrueConstraint,
    conjoin,
    negate,
)
from repro.constraints.intern import EVENTS
from repro.constraints.projection import scope_negations
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import Constant, Variable


def simplify(
    constraint: Constraint,
    solver: Optional[ConstraintSolver] = None,
    drop_redundant_comparisons: bool = False,
) -> Constraint:
    """Return an equivalent but syntactically smaller constraint.

    Parameters
    ----------
    constraint:
        The constraint to simplify.
    solver:
        Solver used for entailment checks.  When omitted a registry-free
        solver is used, which still handles all comparison reasoning.
    drop_redundant_comparisons:
        When True, comparison conjuncts entailed by the remaining conjuncts
        are removed (e.g. ``X = 2 & X >= 1`` becomes ``X = 2``).  Membership
        atoms are never dropped.
    """
    solver = solver or ConstraintSolver()
    if isinstance(constraint, (TrueConstraint, FalseConstraint)):
        return constraint

    cached = solver.cached_simplification(constraint, drop_redundant_comparisons)
    if cached is not None:
        return cached
    original = constraint

    constraint = scope_negations(constraint)
    if isinstance(constraint, (TrueConstraint, FalseConstraint)):
        solver.cache_simplification(original, drop_redundant_comparisons, constraint)
        return constraint

    result = _simplify_conjuncts(constraint, solver, drop_redundant_comparisons)
    solver.cache_simplification(original, drop_redundant_comparisons, result)
    return result


def _simplify_conjuncts(
    constraint: Constraint,
    solver: ConstraintSolver,
    drop_redundant_comparisons: bool,
) -> Constraint:
    conjuncts = _dedupe(list(constraint.conjuncts()))
    if any(isinstance(part, FalseConstraint) for part in conjuncts):
        return FALSE

    positives = [part for part in conjuncts if part.is_primitive()]
    context = conjoin(*positives)

    reduced: List[Constraint] = []
    for part in conjuncts:
        if isinstance(part, NegatedConjunction):
            replacement = _reduce_negation(part, context, solver)
            if isinstance(replacement, FalseConstraint):
                return FALSE
            if isinstance(replacement, TrueConstraint):
                continue
            reduced.append(replacement)
        else:
            reduced.append(part)

    reduced = _dedupe(reduced)

    if drop_redundant_comparisons:
        reduced = _drop_redundant_comparisons(reduced, solver)

    return conjoin(*reduced)


def canonical_form(constraint: Constraint) -> Constraint:
    """Return a canonical ordering of conjuncts for duplicate detection.

    Equalities are oriented variable-first / alphabetically and the conjuncts
    are sorted by their textual rendering; this gives a stable, purely
    syntactic normal form (no solver reasoning), adequate for detecting
    literally repeated view entries.  Every view-entry key, solver memo hit
    and maintenance dedup goes through here.

    The memo lives *on the node* (the ``_canonical`` slot of the interned
    constraint): the form is purely syntactic, so it can never go stale --
    in particular ``invalidate_external_functions`` rightly leaves it alone
    -- and because nodes are hash-consed into weak tables, the memo's size
    policy is the node's own lifetime.  This replaced the old module-global
    ``_CANONICAL_CACHE`` dict, which a long-lived serve process could grow
    to its 200k cap and whose wholesale clears threw away every form at
    once.  A canonical result is also its *own* canonical form, so repeated
    canonicalization is one slot read.
    """
    if isinstance(constraint, (TrueConstraint, FalseConstraint)):
        return constraint
    cached = constraint._canonical
    if cached is not None:
        EVENTS.canonical_hits += 1
        return cached
    EVENTS.canonical_misses += 1
    oriented = [_orient(part) for part in constraint.conjuncts()]
    unique = _dedupe(oriented)
    ordered = sorted(unique, key=str)
    result = conjoin(*ordered)
    if not isinstance(result, (TrueConstraint, FalseConstraint)):
        # The fixpoint: canonical_form(canonical_form(c)) is a pointer read.
        object.__setattr__(result, "_canonical", result)
    object.__setattr__(constraint, "_canonical", result)
    return result


def extract_bindings(constraint: Constraint) -> "dict[Variable, Constant]":
    """Return variable-to-constant bindings implied by top-level equalities.

    Equality chains through intermediate variables are chased, so a
    constraint ``X = Y & Y = 3`` yields ``{X: 3, Y: 3}``.  Only *positive*
    top-level equalities are considered.
    """
    parent: "dict[object, object]" = {}

    def find(node: object) -> object:
        parent.setdefault(node, node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(left: object, right: object) -> None:
        root_left, root_right = find(left), find(right)
        if root_left == root_right:
            return
        # Prefer constants as class representatives.
        if isinstance(root_left, Constant):
            parent[root_right] = root_left
        else:
            parent[root_left] = root_right

    for part in constraint.conjuncts():
        if isinstance(part, Comparison) and part.op == "=":
            union(part.left, part.right)

    bindings: "dict[Variable, Constant]" = {}
    for node in list(parent):
        if isinstance(node, Variable):
            root = find(node)
            if isinstance(root, Constant):
                bindings[node] = root
    return bindings


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------


def _dedupe(parts: Sequence[Constraint]) -> List[Constraint]:
    seen = set()
    result: List[Constraint] = []
    for part in parts:
        if isinstance(part, TrueConstraint):
            continue
        key = _orient(part) if part.is_primitive() else part
        if key in seen:
            continue
        seen.add(key)
        result.append(part)
    return result


def _orient(part: Constraint) -> Constraint:
    """Orient symmetric comparisons into a canonical operand order."""
    if not isinstance(part, Comparison):
        return part
    if part.op in ("=", "!="):
        left, right = part.left, part.right
        if isinstance(left, Constant) and isinstance(right, Variable):
            return Comparison(right, part.op, left)
        if isinstance(left, Variable) and isinstance(right, Variable):
            if left.name > right.name:
                return Comparison(right, part.op, left)
        if isinstance(left, Constant) and isinstance(right, Constant):
            if str(left) > str(right):
                return Comparison(right, part.op, left)
        return part
    if part.op in (">", ">="):
        return part.flipped()
    return part


def _reduce_negation(
    negation: NegatedConjunction,
    context: Constraint,
    solver: ConstraintSolver,
) -> Constraint:
    """Reduce ``not(p1 & ... & pk)`` relative to the positive *context*."""
    residue: List[Constraint] = []
    for part in negation.parts:
        if isinstance(part, FalseConstraint):
            # The inner conjunction is false, so the negation is true.
            return TRUE
        if solver.entails(context, part):
            # Under the context this inner conjunct always holds; the
            # negation reduces to the negation of the remaining conjuncts.
            continue
        if not solver.is_satisfiable(conjoin(context, part)):
            # The inner conjunct can never hold together with the context,
            # so the negated conjunction is always true here.
            return TRUE
        residue.append(part)
    if not residue:
        return FALSE
    if len(residue) == 1:
        return negate(residue[0])
    return NegatedConjunction(tuple(residue))


def _drop_redundant_comparisons(
    parts: List[Constraint], solver: ConstraintSolver
) -> List[Constraint]:
    result = list(parts)
    index = 0
    while index < len(result):
        part = result[index]
        if isinstance(part, Comparison):
            rest = result[:index] + result[index + 1:]
            rest_constraint = conjoin(*rest)
            # Keep equalities that define a variable otherwise unconstrained:
            # dropping them would lose binding information used for display
            # and for solution enumeration even though the solution set over
            # mentioned variables is preserved.
            defines_variable = part.op == "=" and any(
                isinstance(term, Variable)
                and not any(term in other.variables() for other in rest)
                for term in (part.left, part.right)
            )
            if not defines_variable and rest and solver.entails(rest_constraint, part):
                result.pop(index)
                continue
        index += 1
    return result
