"""Terms of the constraint language: variables, constants and substitutions.

The paper's constrained atoms ``A(X̄) <- φ`` and mediator clauses are built
from *terms*.  A term is either a :class:`Variable` or a :class:`Constant`
wrapping an arbitrary hashable Python value (strings, numbers, tuples used as
records, ...).

Terms are **hash-consed** (see :mod:`repro.constraints.intern`): ``__new__``
interns every construction, so two structurally equal terms are the same
object, equality is pointer identity, and the hash is computed once.  The
classes stay immutable; ``copy``/``deepcopy`` return the receiver and
unpickling re-interns.

Substitutions map variables to terms and are used for unification-free
parameter passing: the fixpoint operators of the paper never unify -- they add
explicit equality constraints ``X = t`` instead -- but renaming-apart and
binding application still need substitutions.
"""

from __future__ import annotations

import itertools
import re
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple, Union

from repro.constraints.intern import table
from repro.errors import TermError

_VARIABLE_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_']*$")

_VARIABLES = table("variable")
_CONSTANTS = table("constant")


class _InternedTerm:
    """Shared machinery of interned term nodes.

    Subclasses intern in ``__new__``; equality is the default pointer
    identity, the structural hash is cached in ``_hash`` at construction,
    and instances are deeply immutable (``__setattr__`` raises).
    """

    __slots__ = ("_hash", "__weakref__")

    def __hash__(self) -> int:
        return self._hash

    def __setattr__(self, name: str, value: object) -> None:
        raise TermError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name: str) -> None:
        raise TermError(f"{type(self).__name__} is immutable")

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


class Variable(_InternedTerm):
    """A logical variable, identified by its name.

    Variables are immutable and hashable; two variables with the same name
    are the *same object*.  Names must look like identifiers (optionally
    with a prime suffix such as ``X'`` which the paper uses when
    standardizing apart).  Variables order by name, matching the old
    dataclass ``order=True`` behaviour.
    """

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "Variable":
        if not isinstance(name, str) or not _VARIABLE_NAME_RE.match(name):
            raise TermError(f"invalid variable name: {name!r}")

        def build() -> "Variable":
            self = object.__new__(cls)
            object.__setattr__(self, "name", name)
            object.__setattr__(self, "_hash", hash(("var", name)))
            return self

        return _VARIABLES.intern(name, build)

    def __reduce__(self):
        return (Variable, (self.name,))

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    # Ordering (by name), as the frozen dataclass's order=True provided.
    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name

    def __le__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name <= other.name

    def __gt__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name > other.name

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name >= other.name


class Constant(_InternedTerm):
    """A constant term wrapping a hashable Python value.

    The intern key is ``(type(value), value)``: ``Constant(1)``,
    ``Constant(True)`` and ``Constant(1.0)`` are distinct nodes (they render
    differently and the solver compares *values* where numeric equality
    matters, see ``_values_equal``).
    """

    __slots__ = ("value",)

    def __new__(cls, value: Hashable) -> "Constant":
        try:
            value_hash = hash(value)
        except TypeError as exc:
            raise TermError(
                f"constant value must be hashable: {value!r}"
            ) from exc
        key = (value.__class__, value)

        def build() -> "Constant":
            self = object.__new__(cls)
            object.__setattr__(self, "value", value)
            object.__setattr__(
                self, "_hash", hash(("const", value.__class__.__name__, value_hash))
            )
            return self

        return _CONSTANTS.intern(key, build)

    def __reduce__(self):
        return (Constant, (self.value,))

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return _sort_key(self.value) < _sort_key(other.value)


Term = Union[Variable, Constant]


def _sort_key(value: Hashable) -> Tuple[str, str]:
    """Total order over heterogeneous constant values (for stable output)."""
    return (type(value).__name__, repr(value))


def is_variable(term: object) -> bool:
    """Return True if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: object) -> bool:
    """Return True if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def make_term(value: object) -> Term:
    """Coerce *value* into a term.

    Existing terms are passed through.  Strings that start with an uppercase
    letter or an underscore are *not* treated specially here -- explicit
    construction or the parser decide what is a variable.  Everything else
    becomes a :class:`Constant`.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)


def constant_value(term: Term) -> Hashable:
    """Return the Python value wrapped by a constant term."""
    if not isinstance(term, Constant):
        raise TermError(f"expected a constant, got {term!r}")
    return term.value


def term_variables(terms: Iterable[Term]) -> "set[Variable]":
    """Collect the set of variables occurring in *terms*."""
    result: "set[Variable]" = set()
    for term in terms:
        if isinstance(term, Variable):
            result.add(term)
    return result


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    Application is *not* recursive: a binding ``X -> Y`` followed by
    ``Y -> a`` is not chased; compose substitutions explicitly with
    :meth:`compose` if chasing is required.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[Variable, Term] | None = None) -> None:
        items: Dict[Variable, Term] = {}
        if bindings:
            for var, term in bindings.items():
                if not isinstance(var, Variable):
                    raise TermError(f"substitution keys must be variables: {var!r}")
                if not isinstance(term, (Variable, Constant)):
                    raise TermError(f"substitution values must be terms: {term!r}")
                items[var] = term
        self._bindings = items

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, key: Variable) -> Term:
        return self._bindings[key]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        inner = ", ".join(f"{var}: {term}" for var, term in sorted(
            self._bindings.items(), key=lambda item: item[0].name))
        return f"Substitution({{{inner}}})"

    # -- operations --------------------------------------------------------
    def apply(self, term: Term) -> Term:
        """Apply the substitution to a single term."""
        if isinstance(term, Variable):
            return self._bindings.get(term, term)
        return term

    def apply_all(self, terms: Iterable[Term]) -> Tuple[Term, ...]:
        """Apply the substitution to a sequence of terms.

        When nothing is bound -- the common renamed-apart no-op case -- the
        input tuple is returned unchanged, so callers can detect "no change"
        by pointer identity and keep sharing the original structure.
        """
        if not isinstance(terms, tuple):
            terms = tuple(terms)
        bindings = self._bindings
        if not bindings or not any(term in bindings for term in terms):
            return terms
        return tuple(bindings.get(term, term) for term in terms)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``self`` followed by *other* (``other`` applied after)."""
        merged: Dict[Variable, Term] = {
            var: other.apply(term) for var, term in self._bindings.items()
        }
        for var, term in other.items():
            merged.setdefault(var, term)
        return Substitution(merged)

    def restricted_to(self, variables: Iterable[Variable]) -> "Substitution":
        """Return the sub-substitution whose domain is limited to *variables*."""
        wanted = set(variables)
        return Substitution({
            var: term for var, term in self._bindings.items() if var in wanted
        })

    def extended(self, var: Variable, term: Term) -> "Substitution":
        """Return a copy with one extra binding."""
        updated = dict(self._bindings)
        updated[var] = term
        return Substitution(updated)


EMPTY_SUBSTITUTION = Substitution()


class FreshVariableFactory:
    """Produce fresh variables that cannot clash with a set of used names.

    The fixpoint operators and maintenance algorithms repeatedly need clause
    copies whose variables "share no variables" with the view (the paper's
    phrasing); this factory implements that standardizing-apart step.
    """

    def __init__(self, reserved: Iterable[str] = ()) -> None:
        self._reserved = set(reserved)
        self._counter = itertools.count(1)

    def reserve(self, names: Iterable[str]) -> None:
        """Mark additional names as unavailable for fresh variables."""
        self._reserved.update(names)

    def fresh(self, base: str = "V") -> Variable:
        """Return a variable whose name has not been produced or reserved."""
        stem = base.rstrip("0123456789_") or "V"
        while True:
            candidate = f"{stem}_{next(self._counter)}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return Variable(candidate)

    def renaming_for(self, variables: Iterable[Variable]) -> Substitution:
        """Return a substitution renaming *variables* to fresh ones."""
        bindings: Dict[Variable, Term] = {}
        for var in sorted(set(variables), key=lambda v: v.name):
            bindings[var] = self.fresh(var.name)
        return Substitution(bindings)
