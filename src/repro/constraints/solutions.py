"""Enumerating the solutions of a constraint.

The paper's semantics of a constrained atom ``A(X̄) <- φ`` is its set of
instances ``[A(X̄) <- φ] = {A(X̄)θ | θ is a solution of φ}``.  Tests, the
query layer and the examples need to *materialize* these instance sets (over
finite domains, or clipped to a caller-supplied universe when a constraint
like ``Y >= X`` has infinitely many solutions).

Enumeration is a backtracking search:

1. at every step the "cheapest" still-unassigned variable is picked -- one
   pinned by an equality first, then one whose finite DCA result set can be
   evaluated under the partial assignment (this is what makes chained domain
   calls such as the law-enforcement mediator's
   ``in(A, paradox:select_eq(...)) & in(P, spatialdb:locateaddress(A, ...))``
   enumerable), then one with a bounded integer interval, then one drawing
   from the caller-supplied universe;
2. candidate values are filtered eagerly against the conjuncts that have
   become fully ground;
3. complete assignments are checked with the solver's exact ground
   evaluator, so negated conjunctions and negative memberships are honoured.

Because negations and memberships only ever *remove* solutions, generating
candidates from the positive conjuncts alone is complete.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.constraints.ast import (
    Comparison,
    Constraint,
    FalseConstraint,
    Membership,
    NegatedConjunction,
)
from repro.constraints.solver import ConstraintSolver
from repro.constraints.terms import Constant, Term, Variable
from repro.errors import SolverError

#: Widest integer interval that is enumerated without an explicit universe.
DEFAULT_MAX_INTERVAL_WIDTH = 10_000

#: Default cap on the number of solutions produced by one enumeration.
DEFAULT_MAX_SOLUTIONS = 1_000_000


def enumerate_solutions(
    constraint: Constraint,
    variables: Sequence[Variable],
    solver: Optional[ConstraintSolver] = None,
    universe: Optional[Iterable[object]] = None,
    max_interval_width: int = DEFAULT_MAX_INTERVAL_WIDTH,
    max_solutions: int = DEFAULT_MAX_SOLUTIONS,
) -> Iterator[Dict[Variable, object]]:
    """Yield assignments (dicts) of *variables* that satisfy *constraint*.

    Raises :class:`~repro.errors.SolverError` when a variable's candidate set
    cannot be determined and no *universe* was supplied, or when more than
    *max_solutions* assignments would be produced.
    """
    solver = solver or ConstraintSolver()
    if isinstance(constraint, FalseConstraint):
        return
    wanted = list(dict.fromkeys(variables))
    # Auxiliary constraint variables must be assigned too (they are
    # existentially quantified); include them in the search but project them
    # away from the yielded assignments.  Variables occurring *only* inside
    # negated conjunctions are excluded: the ground evaluator treats them as
    # quantified inside the negation (``not(ψ)`` holds iff ψ has no witness).
    positively_occurring: set = set()
    for part in constraint.conjuncts():
        if not isinstance(part, NegatedConjunction):
            positively_occurring.update(part.variables())
    auxiliary = sorted(
        positively_occurring - set(wanted), key=lambda v: v.name
    )
    search_vars = wanted + auxiliary
    universe_values = list(universe) if universe is not None else None

    produced = 0
    seen: set = set()
    for assignment in _search(
        constraint, search_vars, {}, solver, universe_values, max_interval_width
    ):
        projected = {var: assignment[var] for var in wanted}
        key = tuple(projected[var] for var in wanted)
        if key in seen:
            continue
        seen.add(key)
        produced += 1
        if produced > max_solutions:
            raise SolverError(
                f"solution enumeration exceeded {max_solutions} assignments"
            )
        yield projected


def solution_set(
    constraint: Constraint,
    variables: Sequence[Variable],
    solver: Optional[ConstraintSolver] = None,
    universe: Optional[Iterable[object]] = None,
    max_interval_width: int = DEFAULT_MAX_INTERVAL_WIDTH,
) -> FrozenSet[Tuple[object, ...]]:
    """Return the set of solution tuples, ordered like *variables*."""
    wanted = list(dict.fromkeys(variables))
    tuples = set()
    for assignment in enumerate_solutions(
        constraint,
        wanted,
        solver=solver,
        universe=universe,
        max_interval_width=max_interval_width,
    ):
        tuples.add(tuple(assignment[var] for var in wanted))
    return frozenset(tuples)


def equivalent_on_universe(
    left: Constraint,
    right: Constraint,
    variables: Sequence[Variable],
    universe: Iterable[object],
    solver: Optional[ConstraintSolver] = None,
) -> bool:
    """Check that two constraints admit the same solutions over *universe*.

    This is the semantic comparison used by the correctness tests: the paper's
    theorems state equality of instance sets ``[·]``, not syntactic equality.
    """
    universe_values = list(universe)
    left_solutions = solution_set(left, variables, solver=solver, universe=universe_values)
    right_solutions = solution_set(right, variables, solver=solver, universe=universe_values)
    return left_solutions == right_solutions


# ---------------------------------------------------------------------------
# Backtracking search
# ---------------------------------------------------------------------------


def _search(
    constraint: Constraint,
    unassigned: List[Variable],
    partial: Dict[Variable, object],
    solver: ConstraintSolver,
    universe: Optional[List[object]],
    max_interval_width: int,
) -> Iterator[Dict[Variable, object]]:
    if not unassigned:
        if solver.evaluate_ground(constraint, partial):
            yield dict(partial)
        return

    variable, candidates = _pick_variable(
        constraint, unassigned, partial, solver, universe, max_interval_width
    )
    remaining = [var for var in unassigned if var != variable]
    for value in candidates:
        partial[variable] = value
        if _partial_consistent(constraint, partial, solver):
            yield from _search(
                constraint, remaining, partial, solver, universe, max_interval_width
            )
        del partial[variable]


def _pick_variable(
    constraint: Constraint,
    unassigned: List[Variable],
    partial: Dict[Variable, object],
    solver: ConstraintSolver,
    universe: Optional[List[object]],
    max_interval_width: int,
) -> Tuple[Variable, List[object]]:
    """Choose the next variable and its candidate values.

    Preference: equality-pinned variables, then finite membership sets, then
    bounded integer intervals, then the universe.  Raises
    :class:`SolverError` when nothing applies and no universe is available.
    """
    best: Optional[Tuple[int, int, Variable, List[object]]] = None
    for variable in unassigned:
        pinned = _pinned_value(variable, constraint, partial)
        if pinned is not _NO_VALUE:
            return variable, [pinned]
        membership_values = _membership_candidates(variable, constraint, partial, solver)
        if membership_values is not None:
            candidate = (1, len(membership_values), variable, membership_values)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
            continue
        interval = _integer_interval(variable, constraint, partial)
        if interval is not None and interval[1] - interval[0] + 1 <= max_interval_width:
            values = list(range(interval[0], interval[1] + 1))
            candidate = (2, len(values), variable, values)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
    if best is not None:
        return best[2], best[3]
    variable = unassigned[0]
    if universe is None:
        raise SolverError(
            f"cannot enumerate candidate values for variable {variable}; "
            "supply a universe"
        )
    return variable, list(universe)


class _NoValue:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no value>"


_NO_VALUE = _NoValue()


def _resolve(term: Term, partial: Dict[Variable, object]) -> object:
    if isinstance(term, Constant):
        return term.value
    return partial.get(term, _NO_VALUE)


def _pinned_value(
    variable: Variable, constraint: Constraint, partial: Dict[Variable, object]
) -> object:
    """Value forced on *variable* by a positive equality, if any."""
    for part in constraint.conjuncts():
        if not isinstance(part, Comparison) or part.op != "=":
            continue
        for this, other in ((part.left, part.right), (part.right, part.left)):
            if this != variable:
                continue
            value = _resolve(other, partial)
            if value is not _NO_VALUE:
                return value
    return _NO_VALUE


def _membership_candidates(
    variable: Variable,
    constraint: Constraint,
    partial: Dict[Variable, object],
    solver: ConstraintSolver,
) -> Optional[List[object]]:
    """Finite candidate values from positive DCA-atoms over *variable*."""
    evaluator = solver.evaluator
    if evaluator is None:
        return None
    collected: Optional[set] = None
    for part in constraint.conjuncts():
        if not isinstance(part, Membership) or not part.positive:
            continue
        if part.element != variable:
            continue
        args = [_resolve(arg, partial) for arg in part.call.args]
        if any(arg is _NO_VALUE for arg in args):
            continue
        if not evaluator.has_domain(part.call.domain):
            continue
        result = evaluator.evaluate_call(
            part.call.domain, part.call.function, tuple(args)
        )
        if not result.is_finite():
            continue
        values = set(result.iter_values())
        collected = values if collected is None else (collected & values)
    if collected is None:
        return None
    return sorted(collected, key=_sort_key)


def _integer_interval(
    variable: Variable,
    constraint: Constraint,
    partial: Dict[Variable, object],
) -> Optional[Tuple[int, int]]:
    """Bounded integer interval implied by comparisons on *variable*."""
    low: float = -math.inf
    high: float = math.inf
    for part in constraint.conjuncts():
        if not isinstance(part, Comparison) or variable not in part.variables():
            continue
        comparison = part
        if comparison.right == variable:
            comparison = comparison.flipped()
        if comparison.left != variable:
            continue
        value = _resolve(comparison.right, partial)
        if value is _NO_VALUE or isinstance(value, bool):
            continue
        if not isinstance(value, (int, float)):
            continue
        if comparison.op == "=":
            low = max(low, float(value))
            high = min(high, float(value))
        elif comparison.op == "<":
            bound = math.ceil(value) - 1 if float(value).is_integer() else math.floor(value)
            high = min(high, bound)
        elif comparison.op == "<=":
            high = min(high, math.floor(value))
        elif comparison.op == ">":
            bound = math.floor(value) + 1 if float(value).is_integer() else math.ceil(value)
            low = max(low, bound)
        elif comparison.op == ">=":
            low = max(low, math.ceil(value))
    if low == -math.inf or high == math.inf:
        return None
    if low > high:
        return (0, -1)  # empty interval
    return (int(low), int(high))


def _partial_consistent(
    constraint: Constraint, partial: Dict[Variable, object], solver: ConstraintSolver
) -> bool:
    """Evaluate the conjuncts that are fully ground under *partial*."""
    for part in constraint.conjuncts():
        if isinstance(part, NegatedConjunction):
            # Deferred to the final full evaluation: a negation may become
            # true again once more variables are assigned only if some inner
            # conjunct turns false, which cannot be decided partially in
            # general -- but if *all* its variables are assigned we can.
            if not all(var in partial for var in part.variables()):
                continue
            if not solver.evaluate_ground(part, partial):
                return False
            continue
        if not all(var in partial for var in part.variables()):
            continue
        try:
            if not solver.evaluate_ground(part, partial):
                return False
        except SolverError:
            # A membership over an unknown domain: leave it to the caller.
            continue
    return True


def _sort_key(value: object) -> Tuple[str, str]:
    return (type(value).__name__, repr(value))
