"""Abstract syntax of the constraint language used in mediated views.

The paper (Section 2.3) defines constraints as:

* any DCA-atom ``in(X, domain:function(args))`` is a constraint,
* ``X = T`` and ``X != T`` (T a variable or constant) are constraints,
* any conjunction of constraints is a constraint.

For the arithmetic domain the paper also freely writes ordering constraints
such as ``X <= 5`` ("a more common way of writing" the corresponding
DCA-atoms), and the deletion/insertion rewrites of Sections 3.1/3.2 introduce
*negated* constraints ``not(φ)`` where ``φ`` is a conjunction of the above.
The AST below covers exactly these forms:

* :class:`Comparison` -- ``t1 op t2`` with ``op`` in ``= != < <= > >=``,
* :class:`Membership` -- ``in(X, d:f(args))`` or its negation,
* :class:`NegatedConjunction` -- ``not(c1 & ... & cn)``,
* :class:`Conjunction` -- flattened conjunction,
* :data:`TRUE` / :data:`FALSE` -- the trivial constraints.

Every node is immutable, hashable and **hash-consed** (see
:mod:`repro.constraints.intern`): construction normalises, validates and
interns, so structurally equal nodes are the *same object* and equality is
pointer identity.  Each node also carries memo slots -- canonical form,
scoped form, pure satisfiability/simplification, cached variable set --
whose lifetime is the node's own weak-table lifetime; they replace the old
module-global caches in ``simplify.py``/``projection.py`` and the solver's
pure dictionaries with pointer-keyed per-node lookups.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Tuple

from repro.constraints.intern import table
from repro.constraints.terms import (
    Constant,
    Substitution,
    Term,
    Variable,
)
from repro.errors import ConstraintError

#: The comparison operators supported by the constraint language.
COMPARISON_OPERATORS: Tuple[str, ...] = ("=", "!=", "<", "<=", ">", ">=")

#: Negation of each comparison operator, used when pushing ``not`` inwards.
NEGATED_OPERATOR = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

#: Mirror image of each operator, used to orient comparisons.
FLIPPED_OPERATOR = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}

_COMPARISONS = table("comparison")
_CALLS = table("domain_call")
_MEMBERSHIPS = table("membership")
_NEGATIONS = table("negation")
_CONJUNCTIONS = table("conjunction")

#: Per-node memo slots initialised to None by :func:`_prime`.  ``_canonical``
#: and ``_scoped`` are written by ``simplify``/``projection``; ``_sat`` /
#: ``_simplify0`` / ``_simplify1`` by the solver's pure paths; ``_vars`` and
#: ``_str`` lazily by the node itself; ``_elim`` holds a small bounded dict
#: of projection results.  All writes are idempotent (the value is a pure
#: function of the node), so racing threads are benign.
_MEMO_SLOTS = (
    "_str",
    "_vars",
    "_canonical",
    "_scoped",
    "_sat",
    "_simplify0",
    "_simplify1",
    "_elim",
)


class Constraint:
    """Base class of every constraint node (interned, immutable)."""

    __slots__ = ("_hash", "_membership") + _MEMO_SLOTS + ("__weakref__",)

    def variables(self) -> FrozenSet[Variable]:
        """Return the set of variables occurring in the constraint."""
        cached = self._vars
        if cached is None:
            cached = self._compute_variables()
            object.__setattr__(self, "_vars", cached)
        return cached

    def _compute_variables(self) -> FrozenSet[Variable]:
        raise NotImplementedError

    def substitute(self, subst: Substitution) -> "Constraint":
        """Return a copy with *subst* applied to every term.

        Every node returns ``self`` unchanged when the substitution binds
        none of its terms, so renaming-apart against disjoint variables is
        a pointer-preserving no-op.
        """
        raise NotImplementedError

    def mentions_membership(self) -> bool:
        """True when a DCA-atom occurs anywhere in the constraint.

        Computed once at construction (children are already interned), this
        is the solver's pure-versus-external cache discriminator.
        """
        return self._membership

    def conjuncts(self) -> Tuple["Constraint", ...]:
        """Return the top-level conjuncts (a non-conjunction is its own)."""
        return (self,)

    def is_primitive(self) -> bool:
        """True for comparison and membership literals."""
        return False

    def __and__(self, other: "Constraint") -> "Constraint":
        return conjoin(self, other)

    def __hash__(self) -> int:
        return self._hash

    def __setattr__(self, name: str, value: object) -> None:
        raise ConstraintError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name: str) -> None:
        raise ConstraintError(f"{type(self).__name__} is immutable")

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


def _prime(node: Constraint, hash_value: int, membership: bool) -> None:
    """Initialise the base slots of a freshly allocated node."""
    object.__setattr__(node, "_hash", hash_value)
    object.__setattr__(node, "_membership", membership)
    for slot in _MEMO_SLOTS:
        object.__setattr__(node, slot, None)


class TrueConstraint(Constraint):
    """The always-satisfied constraint (empty conjunction).  A singleton."""

    __slots__ = ()
    _instance: "TrueConstraint | None" = None

    def __new__(cls) -> "TrueConstraint":
        inst = cls._instance
        if inst is None:
            inst = object.__new__(cls)
            _prime(inst, hash(("true",)), False)
            cls._instance = inst
        return inst

    def __reduce__(self):
        return (TrueConstraint, ())

    def _compute_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def substitute(self, subst: Substitution) -> "Constraint":
        return self

    def conjuncts(self) -> Tuple[Constraint, ...]:
        return ()

    def __str__(self) -> str:
        return "true"

    def __repr__(self) -> str:
        return "TrueConstraint()"


class FalseConstraint(Constraint):
    """The unsatisfiable constraint.  A singleton."""

    __slots__ = ()
    _instance: "FalseConstraint | None" = None

    def __new__(cls) -> "FalseConstraint":
        inst = cls._instance
        if inst is None:
            inst = object.__new__(cls)
            _prime(inst, hash(("false",)), False)
            cls._instance = inst
        return inst

    def __reduce__(self):
        return (FalseConstraint, ())

    def _compute_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def substitute(self, subst: Substitution) -> "Constraint":
        return self

    def __str__(self) -> str:
        return "false"

    def __repr__(self) -> str:
        return "FalseConstraint()"


TRUE = TrueConstraint()
FALSE = FalseConstraint()


class Comparison(Constraint):
    """A binary comparison ``left op right`` between two terms."""

    __slots__ = ("left", "op", "right")

    def __new__(cls, left: Term, op: str, right: Term) -> "Comparison":
        if op not in COMPARISON_OPERATORS:
            raise ConstraintError(f"unknown comparison operator: {op!r}")
        for term in (left, right):
            if not isinstance(term, (Variable, Constant)):
                raise ConstraintError(f"comparison operand is not a term: {term!r}")
        key = ("cmp", left, op, right)

        def build() -> "Comparison":
            self = object.__new__(cls)
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "op", op)
            object.__setattr__(self, "right", right)
            _prime(self, hash(key), False)
            return self

        return _COMPARISONS.intern(key, build)

    def __reduce__(self):
        return (Comparison, (self.left, self.op, self.right))

    def _compute_variables(self) -> FrozenSet[Variable]:
        found = set()
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                found.add(term)
        return frozenset(found)

    def substitute(self, subst: Substitution) -> "Comparison":
        left = subst.apply(self.left)
        right = subst.apply(self.right)
        if left is self.left and right is self.right:
            return self
        return Comparison(left, self.op, right)

    def is_primitive(self) -> bool:
        return True

    def negated(self) -> "Comparison":
        """Return the comparison expressing the negation of this one."""
        return Comparison(self.left, NEGATED_OPERATOR[self.op], self.right)

    def flipped(self) -> "Comparison":
        """Return the same constraint with operands swapped."""
        return Comparison(self.right, FLIPPED_OPERATOR[self.op], self.left)

    def is_equality(self) -> bool:
        return self.op == "="

    def is_disequality(self) -> bool:
        return self.op == "!="

    def is_ordering(self) -> bool:
        return self.op in ("<", "<=", ">", ">=")

    def __str__(self) -> str:
        cached = self._str
        if cached is None:
            cached = f"{self.left} {self.op} {self.right}"
            object.__setattr__(self, "_str", cached)
        return cached

    def __repr__(self) -> str:
        return (
            f"Comparison(left={self.left!r}, op={self.op!r}, "
            f"right={self.right!r})"
        )


class DomainCall:
    """A call ``domain:function(arg1, ..., argn)`` into an external source.

    The call itself is not a constraint; it only appears as the second
    argument of the ``in`` predicate (:class:`Membership`).  Interned like
    every other node.
    """

    __slots__ = ("domain", "function", "args", "_hash", "_str", "__weakref__")

    def __new__(
        cls, domain: str, function: str, args: Iterable[Term] = ()
    ) -> "DomainCall":
        if not domain or not function:
            raise ConstraintError("domain calls need a domain and a function name")
        args = tuple(args)
        for arg in args:
            if not isinstance(arg, (Variable, Constant)):
                raise ConstraintError(f"domain-call argument is not a term: {arg!r}")
        key = ("call", domain, function, args)

        def build() -> "DomainCall":
            self = object.__new__(cls)
            object.__setattr__(self, "domain", domain)
            object.__setattr__(self, "function", function)
            object.__setattr__(self, "args", args)
            object.__setattr__(self, "_hash", hash(key))
            object.__setattr__(self, "_str", None)
            return self

        return _CALLS.intern(key, build)

    def __reduce__(self):
        return (DomainCall, (self.domain, self.function, self.args))

    def __hash__(self) -> int:
        return self._hash

    def __setattr__(self, name: str, value: object) -> None:
        raise ConstraintError("DomainCall is immutable")

    def __delattr__(self, name: str) -> None:
        raise ConstraintError("DomainCall is immutable")

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(arg for arg in self.args if isinstance(arg, Variable))

    def substitute(self, subst: Substitution) -> "DomainCall":
        args = subst.apply_all(self.args)
        if args is self.args:
            return self
        return DomainCall(self.domain, self.function, args)

    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(isinstance(arg, Constant) for arg in self.args)

    def ground_args(self) -> Tuple[object, ...]:
        """Return the Python values of the (ground) arguments."""
        if not self.is_ground():
            raise ConstraintError(f"domain call is not ground: {self}")
        return tuple(arg.value for arg in self.args)  # type: ignore[union-attr]

    def __str__(self) -> str:
        cached = self._str
        if cached is None:
            rendered = ", ".join(str(arg) for arg in self.args)
            cached = f"{self.domain}:{self.function}({rendered})"
            object.__setattr__(self, "_str", cached)
        return cached

    def __repr__(self) -> str:
        return (
            f"DomainCall(domain={self.domain!r}, function={self.function!r}, "
            f"args={self.args!r})"
        )


class Membership(Constraint):
    """The DCA-atom ``in(element, call)`` or its negation.

    ``positive=False`` represents ``not in(element, call)``; negative
    membership literals arise when deletion rewrites push ``not`` through a
    conjunction that contains DCA-atoms.
    """

    __slots__ = ("element", "call", "positive")

    def __new__(
        cls, element: Term, call: DomainCall, positive: bool = True
    ) -> "Membership":
        if not isinstance(element, (Variable, Constant)):
            raise ConstraintError(f"membership element is not a term: {element!r}")
        if not isinstance(call, DomainCall):
            raise ConstraintError(f"membership target is not a domain call: {call!r}")
        positive = bool(positive)
        key = ("in", element, call, positive)

        def build() -> "Membership":
            self = object.__new__(cls)
            object.__setattr__(self, "element", element)
            object.__setattr__(self, "call", call)
            object.__setattr__(self, "positive", positive)
            _prime(self, hash(key), True)
            return self

        return _MEMBERSHIPS.intern(key, build)

    def __reduce__(self):
        return (Membership, (self.element, self.call, self.positive))

    def _compute_variables(self) -> FrozenSet[Variable]:
        found = set(self.call.variables())
        if isinstance(self.element, Variable):
            found.add(self.element)
        return frozenset(found)

    def substitute(self, subst: Substitution) -> "Membership":
        element = subst.apply(self.element)
        call = self.call.substitute(subst)
        if element is self.element and call is self.call:
            return self
        return Membership(element, call, self.positive)

    def is_primitive(self) -> bool:
        return True

    def negated(self) -> "Membership":
        """Return the membership literal with opposite polarity."""
        return Membership(self.element, self.call, not self.positive)

    def __str__(self) -> str:
        cached = self._str
        if cached is None:
            literal = f"in({self.element}, {self.call})"
            cached = literal if self.positive else f"not {literal}"
            object.__setattr__(self, "_str", cached)
        return cached

    def __repr__(self) -> str:
        return (
            f"Membership(element={self.element!r}, call={self.call!r}, "
            f"positive={self.positive!r})"
        )


class NegatedConjunction(Constraint):
    """``not(c1 & ... & cn)`` over primitive constraints.

    The deletion rewrites of Section 3.1 produce constraints of the form
    ``φ & not(ψ)`` where ``ψ`` is the conjunction of the constraint of the
    deleted atom with binding equalities.  The negation is kept as a single
    node (rather than eagerly expanded to a disjunction) so that views remain
    flat conjunctions of constraint *literals*; the solver expands it lazily.

    Nested negations are allowed (``not(p & not(q))``): they arise when a
    view that has already been maintained once is maintained again, because
    the earlier rewrite left ``not(...)`` conjuncts inside view constraints.

    **Quantification convention.**  A variable that occurs *only* inside a
    negated conjunction (neither in any positive conjunct of the enclosing
    constraint nor among the atom arguments the constraint is attached to)
    is quantified *inside* the negation: ``not(ψ)`` holds iff ψ has no
    witness for those variables.  This matches the maintenance rewrites of
    the paper, where the deleted atom's (renamed-apart) variables appear only
    under ``not(...)`` together with the binding equalities that tie them to
    the entry's own variables.  All other variables are free (top-level
    existential, as in the paper's ``[A(X̄) <- φ]`` instance semantics).

    Construction flattens inner conjunctions and drops ``true`` conjuncts
    *before* interning, so the table only ever sees the normal form.
    """

    __slots__ = ("parts",)

    def __new__(cls, parts: Iterable[Constraint]) -> "NegatedConjunction":
        flattened: list[Constraint] = []
        for part in tuple(parts):
            if isinstance(part, Conjunction):
                flattened.extend(part.parts)
            elif isinstance(part, TrueConstraint):
                continue
            else:
                flattened.append(part)
        for part in flattened:
            if not isinstance(part, Constraint) or not (
                part.is_primitive()
                or isinstance(part, (FalseConstraint, NegatedConjunction))
            ):
                raise ConstraintError(
                    "negated conjunctions may only contain primitive constraints "
                    f"or nested negations, got: {part!r}"
                )
        normal = tuple(flattened)
        key = ("not", normal)

        def build() -> "NegatedConjunction":
            self = object.__new__(cls)
            object.__setattr__(self, "parts", normal)
            _prime(self, hash(key), any(part._membership for part in normal))
            return self

        return _NEGATIONS.intern(key, build)

    def __reduce__(self):
        return (NegatedConjunction, (self.parts,))

    def _compute_variables(self) -> FrozenSet[Variable]:
        found: set[Variable] = set()
        for part in self.parts:
            found.update(part.variables())
        return frozenset(found)

    def substitute(self, subst: Substitution) -> "Constraint":
        parts = tuple(part.substitute(subst) for part in self.parts)
        if all(new is old for new, old in zip(parts, self.parts)):
            return self
        return NegatedConjunction(parts)

    def inner(self) -> Constraint:
        """Return the conjunction being negated."""
        return conjoin(*self.parts)

    def __str__(self) -> str:
        # Canonicalization sorts conjuncts by their rendering, so deep
        # negation nodes get stringified over and over; cache once.
        cached = self._str
        if cached is None:
            inner = " & ".join(str(part) for part in self.parts) or "true"
            cached = f"not({inner})"
            object.__setattr__(self, "_str", cached)
        return cached

    def __repr__(self) -> str:
        return f"NegatedConjunction(parts={self.parts!r})"


class Conjunction(Constraint):
    """A flattened conjunction of constraints.

    Use :func:`conjoin` to build conjunctions; it flattens nested
    conjunctions, drops ``true`` and collapses to ``false`` eagerly.
    """

    __slots__ = ("parts",)

    def __new__(cls, parts: Iterable[Constraint]) -> "Conjunction":
        parts = tuple(parts)
        for part in parts:
            if isinstance(part, (Conjunction, TrueConstraint)):
                raise ConstraintError(
                    "Conjunction must be flat; build it with conjoin()"
                )
            if not isinstance(part, Constraint):
                raise ConstraintError(f"not a constraint: {part!r}")
        key = ("and", parts)

        def build() -> "Conjunction":
            self = object.__new__(cls)
            object.__setattr__(self, "parts", parts)
            _prime(self, hash(key), any(part._membership for part in parts))
            return self

        return _CONJUNCTIONS.intern(key, build)

    def __reduce__(self):
        return (Conjunction, (self.parts,))

    def _compute_variables(self) -> FrozenSet[Variable]:
        found: set[Variable] = set()
        for part in self.parts:
            found.update(part.variables())
        return frozenset(found)

    def substitute(self, subst: Substitution) -> "Constraint":
        parts = tuple(part.substitute(subst) for part in self.parts)
        if all(new is old for new, old in zip(parts, self.parts)):
            return self
        return conjoin(*parts)

    def conjuncts(self) -> Tuple[Constraint, ...]:
        return self.parts

    def __str__(self) -> str:
        cached = self._str
        if cached is None:
            cached = " & ".join(str(part) for part in self.parts)
            object.__setattr__(self, "_str", cached)
        return cached

    def __repr__(self) -> str:
        return f"Conjunction(parts={self.parts!r})"


def conjoin(*constraints: Constraint) -> Constraint:
    """Conjoin constraints, flattening and normalising trivial cases.

    ``conjoin()`` with no arguments returns ``TRUE``.  Any ``FALSE`` operand
    collapses the result to ``FALSE``.  Duplicate conjuncts are kept (the
    simplifier removes them); order is preserved.
    """
    flat: list[Constraint] = []
    for constraint in constraints:
        if constraint is None:  # pragma: no cover - defensive
            raise ConstraintError("cannot conjoin None")
        if isinstance(constraint, TrueConstraint):
            continue
        if isinstance(constraint, FalseConstraint):
            return FALSE
        if isinstance(constraint, Conjunction):
            flat.extend(constraint.parts)
        else:
            flat.append(constraint)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Conjunction(tuple(flat))


def negate(constraint: Constraint) -> Constraint:
    """Return the negation of *constraint* within the supported fragment.

    Primitives negate to their dual literal.  Conjunctions negate to a
    :class:`NegatedConjunction`.  ``true``/``false`` swap.  Negating a
    :class:`NegatedConjunction` returns the inner conjunction (double
    negation elimination).
    """
    if isinstance(constraint, TrueConstraint):
        return FALSE
    if isinstance(constraint, FalseConstraint):
        return TRUE
    if isinstance(constraint, Comparison):
        return constraint.negated()
    if isinstance(constraint, Membership):
        return constraint.negated()
    if isinstance(constraint, NegatedConjunction):
        return constraint.inner()
    if isinstance(constraint, Conjunction):
        return NegatedConjunction(constraint.parts)
    raise ConstraintError(f"cannot negate constraint: {constraint!r}")


def equals(left: object, right: object) -> Comparison:
    """Convenience constructor for an equality constraint between terms."""
    return Comparison(_as_term(left), "=", _as_term(right))


def not_equals(left: object, right: object) -> Comparison:
    """Convenience constructor for a disequality constraint between terms."""
    return Comparison(_as_term(left), "!=", _as_term(right))


def compare(left: object, op: str, right: object) -> Comparison:
    """Convenience constructor for an arbitrary comparison."""
    return Comparison(_as_term(left), op, _as_term(right))


def member(element: object, domain: str, function: str, *args: object) -> Membership:
    """Convenience constructor for ``in(element, domain:function(args))``."""
    call = DomainCall(domain, function, tuple(_as_term(arg) for arg in args))
    return Membership(_as_term(element), call)


def bindings_constraint(pairs: Iterable[Tuple[Term, Term]]) -> Constraint:
    """Build the conjunction of equalities ``{X1 = t1, ..., Xn = tn}``.

    This is the ``{X̄ = t̄}`` notation used throughout the paper's definition
    of ``T_P`` and of the maintenance algorithms.
    """
    return conjoin(*(Comparison(left, "=", right) for left, right in pairs))


def tuple_equalities(lefts: Sequence[Term], rights: Sequence[Term]) -> Constraint:
    """Build ``{X̄ = t̄}`` for two equal-length tuples of terms."""
    if len(lefts) != len(rights):
        raise ConstraintError(
            f"tuple length mismatch: {len(lefts)} vs {len(rights)} terms"
        )
    return bindings_constraint(zip(lefts, rights))


def _as_term(value: object) -> Term:
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)  # type: ignore[arg-type]
