"""Abstract syntax of the constraint language used in mediated views.

The paper (Section 2.3) defines constraints as:

* any DCA-atom ``in(X, domain:function(args))`` is a constraint,
* ``X = T`` and ``X != T`` (T a variable or constant) are constraints,
* any conjunction of constraints is a constraint.

For the arithmetic domain the paper also freely writes ordering constraints
such as ``X <= 5`` ("a more common way of writing" the corresponding
DCA-atoms), and the deletion/insertion rewrites of Sections 3.1/3.2 introduce
*negated* constraints ``not(φ)`` where ``φ`` is a conjunction of the above.
The AST below covers exactly these forms:

* :class:`Comparison` -- ``t1 op t2`` with ``op`` in ``= != < <= > >=``,
* :class:`Membership` -- ``in(X, d:f(args))`` or its negation,
* :class:`NegatedConjunction` -- ``not(c1 & ... & cn)``,
* :class:`Conjunction` -- flattened conjunction,
* :data:`TRUE` / :data:`FALSE` -- the trivial constraints.

Every node is immutable and hashable, supports variable collection,
substitution, and pretty printing matching the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Sequence, Tuple

from repro.constraints.terms import (
    Constant,
    Substitution,
    Term,
    Variable,
)
from repro.errors import ConstraintError

#: The comparison operators supported by the constraint language.
COMPARISON_OPERATORS: Tuple[str, ...] = ("=", "!=", "<", "<=", ">", ">=")

#: Negation of each comparison operator, used when pushing ``not`` inwards.
NEGATED_OPERATOR = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

#: Mirror image of each operator, used to orient comparisons.
FLIPPED_OPERATOR = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


class Constraint:
    """Base class of every constraint node."""

    def variables(self) -> FrozenSet[Variable]:
        """Return the set of variables occurring in the constraint."""
        raise NotImplementedError

    def substitute(self, subst: Substitution) -> "Constraint":
        """Return a copy with *subst* applied to every term."""
        raise NotImplementedError

    def conjuncts(self) -> Tuple["Constraint", ...]:
        """Return the top-level conjuncts (a non-conjunction is its own)."""
        return (self,)

    def is_primitive(self) -> bool:
        """True for comparison and membership literals."""
        return False

    def __and__(self, other: "Constraint") -> "Constraint":
        return conjoin(self, other)


@dataclass(frozen=True)
class TrueConstraint(Constraint):
    """The always-satisfied constraint (empty conjunction)."""

    def variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def substitute(self, subst: Substitution) -> "Constraint":
        return self

    def conjuncts(self) -> Tuple[Constraint, ...]:
        return ()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseConstraint(Constraint):
    """The unsatisfiable constraint."""

    def variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def substitute(self, subst: Substitution) -> "Constraint":
        return self

    def __str__(self) -> str:
        return "false"


TRUE = TrueConstraint()
FALSE = FalseConstraint()


@dataclass(frozen=True)
class Comparison(Constraint):
    """A binary comparison ``left op right`` between two terms."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPERATORS:
            raise ConstraintError(f"unknown comparison operator: {self.op!r}")
        for term in (self.left, self.right):
            if not isinstance(term, (Variable, Constant)):
                raise ConstraintError(f"comparison operand is not a term: {term!r}")

    def variables(self) -> FrozenSet[Variable]:
        found = set()
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                found.add(term)
        return frozenset(found)

    def substitute(self, subst: Substitution) -> "Comparison":
        return Comparison(subst.apply(self.left), self.op, subst.apply(self.right))

    def is_primitive(self) -> bool:
        return True

    def negated(self) -> "Comparison":
        """Return the comparison expressing the negation of this one."""
        return Comparison(self.left, NEGATED_OPERATOR[self.op], self.right)

    def flipped(self) -> "Comparison":
        """Return the same constraint with operands swapped."""
        return Comparison(self.right, FLIPPED_OPERATOR[self.op], self.left)

    def is_equality(self) -> bool:
        return self.op == "="

    def is_disequality(self) -> bool:
        return self.op == "!="

    def is_ordering(self) -> bool:
        return self.op in ("<", "<=", ">", ">=")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class DomainCall:
    """A call ``domain:function(arg1, ..., argn)`` into an external source.

    The call itself is not a constraint; it only appears as the second
    argument of the ``in`` predicate (:class:`Membership`).
    """

    domain: str
    function: str
    args: Tuple[Term, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.domain or not self.function:
            raise ConstraintError("domain calls need a domain and a function name")
        object.__setattr__(self, "args", tuple(self.args))
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise ConstraintError(f"domain-call argument is not a term: {arg!r}")

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(arg for arg in self.args if isinstance(arg, Variable))

    def substitute(self, subst: Substitution) -> "DomainCall":
        return DomainCall(self.domain, self.function, subst.apply_all(self.args))

    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(isinstance(arg, Constant) for arg in self.args)

    def ground_args(self) -> Tuple[object, ...]:
        """Return the Python values of the (ground) arguments."""
        if not self.is_ground():
            raise ConstraintError(f"domain call is not ground: {self}")
        return tuple(arg.value for arg in self.args)  # type: ignore[union-attr]

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.domain}:{self.function}({rendered})"


@dataclass(frozen=True)
class Membership(Constraint):
    """The DCA-atom ``in(element, call)`` or its negation.

    ``positive=False`` represents ``not in(element, call)``; negative
    membership literals arise when deletion rewrites push ``not`` through a
    conjunction that contains DCA-atoms.
    """

    element: Term
    call: DomainCall
    positive: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.element, (Variable, Constant)):
            raise ConstraintError(f"membership element is not a term: {self.element!r}")
        if not isinstance(self.call, DomainCall):
            raise ConstraintError(f"membership target is not a domain call: {self.call!r}")

    def variables(self) -> FrozenSet[Variable]:
        found = set(self.call.variables())
        if isinstance(self.element, Variable):
            found.add(self.element)
        return frozenset(found)

    def substitute(self, subst: Substitution) -> "Membership":
        return Membership(
            subst.apply(self.element), self.call.substitute(subst), self.positive
        )

    def is_primitive(self) -> bool:
        return True

    def negated(self) -> "Membership":
        """Return the membership literal with opposite polarity."""
        return Membership(self.element, self.call, not self.positive)

    def __str__(self) -> str:
        literal = f"in({self.element}, {self.call})"
        return literal if self.positive else f"not {literal}"


@dataclass(frozen=True)
class NegatedConjunction(Constraint):
    """``not(c1 & ... & cn)`` over primitive constraints.

    The deletion rewrites of Section 3.1 produce constraints of the form
    ``φ & not(ψ)`` where ``ψ`` is the conjunction of the constraint of the
    deleted atom with binding equalities.  The negation is kept as a single
    node (rather than eagerly expanded to a disjunction) so that views remain
    flat conjunctions of constraint *literals*; the solver expands it lazily.

    Nested negations are allowed (``not(p & not(q))``): they arise when a
    view that has already been maintained once is maintained again, because
    the earlier rewrite left ``not(...)`` conjuncts inside view constraints.

    **Quantification convention.**  A variable that occurs *only* inside a
    negated conjunction (neither in any positive conjunct of the enclosing
    constraint nor among the atom arguments the constraint is attached to)
    is quantified *inside* the negation: ``not(ψ)`` holds iff ψ has no
    witness for those variables.  This matches the maintenance rewrites of
    the paper, where the deleted atom's (renamed-apart) variables appear only
    under ``not(...)`` together with the binding equalities that tie them to
    the entry's own variables.  All other variables are free (top-level
    existential, as in the paper's ``[A(X̄) <- φ]`` instance semantics).
    """

    parts: Tuple[Constraint, ...]

    def __post_init__(self) -> None:
        flattened: list[Constraint] = []
        for part in self.parts:
            if isinstance(part, Conjunction):
                flattened.extend(part.parts)
            elif isinstance(part, TrueConstraint):
                continue
            else:
                flattened.append(part)
        for part in flattened:
            if not isinstance(part, Constraint) or not (
                part.is_primitive()
                or isinstance(part, (FalseConstraint, NegatedConjunction))
            ):
                raise ConstraintError(
                    "negated conjunctions may only contain primitive constraints "
                    f"or nested negations, got: {part!r}"
                )
        object.__setattr__(self, "parts", tuple(flattened))

    def variables(self) -> FrozenSet[Variable]:
        found: set[Variable] = set()
        for part in self.parts:
            found.update(part.variables())
        return frozenset(found)

    def substitute(self, subst: Substitution) -> "Constraint":
        return NegatedConjunction(tuple(part.substitute(subst) for part in self.parts))

    def inner(self) -> Constraint:
        """Return the conjunction being negated."""
        return conjoin(*self.parts)

    def __hash__(self) -> int:
        # Nodes are immutable but deeply nested; the generated dataclass hash
        # recurses over the whole subtree on every dict/set lookup, which the
        # solver memo and view keys do constantly.  Compute once, cache.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(("not", self.parts))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __str__(self) -> str:
        # Canonicalization sorts conjuncts by their rendering, so deep
        # negation nodes get stringified over and over; cache like the hash.
        cached = self.__dict__.get("_str")
        if cached is None:
            inner = " & ".join(str(part) for part in self.parts) or "true"
            cached = f"not({inner})"
            object.__setattr__(self, "_str", cached)
        return cached


@dataclass(frozen=True)
class Conjunction(Constraint):
    """A flattened conjunction of constraints.

    Use :func:`conjoin` to build conjunctions; it flattens nested
    conjunctions, drops ``true`` and collapses to ``false`` eagerly.
    """

    parts: Tuple[Constraint, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))
        for part in self.parts:
            if isinstance(part, (Conjunction, TrueConstraint)):
                raise ConstraintError(
                    "Conjunction must be flat; build it with conjoin()"
                )

    def variables(self) -> FrozenSet[Variable]:
        found: set[Variable] = set()
        for part in self.parts:
            found.update(part.variables())
        return frozenset(found)

    def substitute(self, subst: Substitution) -> "Constraint":
        return conjoin(*(part.substitute(subst) for part in self.parts))

    def conjuncts(self) -> Tuple[Constraint, ...]:
        return self.parts

    def __hash__(self) -> int:
        # See NegatedConjunction.__hash__: hashed constantly, cached once.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(("and", self.parts))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __str__(self) -> str:
        return " & ".join(str(part) for part in self.parts)


def conjoin(*constraints: Constraint) -> Constraint:
    """Conjoin constraints, flattening and normalising trivial cases.

    ``conjoin()`` with no arguments returns ``TRUE``.  Any ``FALSE`` operand
    collapses the result to ``FALSE``.  Duplicate conjuncts are kept (the
    simplifier removes them); order is preserved.
    """
    flat: list[Constraint] = []
    for constraint in constraints:
        if constraint is None:  # pragma: no cover - defensive
            raise ConstraintError("cannot conjoin None")
        if isinstance(constraint, TrueConstraint):
            continue
        if isinstance(constraint, FalseConstraint):
            return FALSE
        if isinstance(constraint, Conjunction):
            flat.extend(constraint.parts)
        else:
            flat.append(constraint)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Conjunction(tuple(flat))


def negate(constraint: Constraint) -> Constraint:
    """Return the negation of *constraint* within the supported fragment.

    Primitives negate to their dual literal.  Conjunctions negate to a
    :class:`NegatedConjunction`.  ``true``/``false`` swap.  Negating a
    :class:`NegatedConjunction` returns the inner conjunction (double
    negation elimination).
    """
    if isinstance(constraint, TrueConstraint):
        return FALSE
    if isinstance(constraint, FalseConstraint):
        return TRUE
    if isinstance(constraint, Comparison):
        return constraint.negated()
    if isinstance(constraint, Membership):
        return constraint.negated()
    if isinstance(constraint, NegatedConjunction):
        return constraint.inner()
    if isinstance(constraint, Conjunction):
        return NegatedConjunction(constraint.parts)
    raise ConstraintError(f"cannot negate constraint: {constraint!r}")


def equals(left: object, right: object) -> Comparison:
    """Convenience constructor for an equality constraint between terms."""
    return Comparison(_as_term(left), "=", _as_term(right))


def not_equals(left: object, right: object) -> Comparison:
    """Convenience constructor for a disequality constraint between terms."""
    return Comparison(_as_term(left), "!=", _as_term(right))


def compare(left: object, op: str, right: object) -> Comparison:
    """Convenience constructor for an arbitrary comparison."""
    return Comparison(_as_term(left), op, _as_term(right))


def member(element: object, domain: str, function: str, *args: object) -> Membership:
    """Convenience constructor for ``in(element, domain:function(args))``."""
    call = DomainCall(domain, function, tuple(_as_term(arg) for arg in args))
    return Membership(_as_term(element), call)


def bindings_constraint(pairs: Iterable[Tuple[Term, Term]]) -> Constraint:
    """Build the conjunction of equalities ``{X1 = t1, ..., Xn = tn}``.

    This is the ``{X̄ = t̄}`` notation used throughout the paper's definition
    of ``T_P`` and of the maintenance algorithms.
    """
    return conjoin(*(Comparison(left, "=", right) for left, right in pairs))


def tuple_equalities(lefts: Sequence[Term], rights: Sequence[Term]) -> Constraint:
    """Build ``{X̄ = t̄}`` for two equal-length tuples of terms."""
    if len(lefts) != len(rights):
        raise ConstraintError(
            f"tuple length mismatch: {len(lefts)} vs {len(rights)} terms"
        )
    return bindings_constraint(zip(lefts, rights))


def _as_term(value: object) -> Term:
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)  # type: ignore[arg-type]
