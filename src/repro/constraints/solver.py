"""Satisfiability checking for the constraint language.

The fixpoint operator ``T_P`` and all the maintenance algorithms of the paper
repeatedly ask one question about a constraint ``φ``: *is φ solvable?*  This
module answers it for the fragment the paper uses:

* conjunctions of comparison literals (``= != < <= > >=``) between variables
  and constants,
* DCA-atoms ``in(X, domain:function(args))`` and their negations, evaluated
  against the domain registry, and
* negated conjunctions ``not(ψ)`` introduced by the deletion/insertion
  rewrites of Sections 3.1 and 3.2.

The decision procedure works in two stages:

1. *Branching.*  Each ``not(p1 & ... & pk)`` is a disjunction
   ``¬p1 ∨ ... ∨ ¬pk`` of primitive literals; the constraint is satisfiable
   iff at least one branch (choice of one negated literal per negation) is.
2. *Branch closure.*  A branch -- a conjunction of primitive literals -- is
   checked with a congruence-closure / interval procedure: union-find over
   equalities, contradiction checks for disequalities, interval reasoning for
   numeric orderings with bound propagation across variable-variable
   orderings, and membership evaluation of ground DCA-atoms.

The procedure is exact for the constraint shapes produced by the paper's
examples and by this library's own rewrites.  For constraints outside that
envelope (e.g. orderings between unbound variables forming a cycle mixed
with disequalities) it errs on the side of *satisfiable*, which is the safe
direction for view maintenance: an atom with an unsatisfiable constraint that
survives in the view never contributes instances (the semantics ``[·]`` is
unchanged); it merely costs a little space -- exactly the trade the paper's
``W_P`` operator makes deliberately.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.constraints.ast import (
    Comparison,
    Conjunction,
    Constraint,
    DomainCall,
    FalseConstraint,
    Membership,
    NegatedConjunction,
    TrueConstraint,
    conjoin,
    negate,
    tuple_equalities,
)
from repro.constraints.interfaces import CallEvaluator, ResultSetLike
from repro.constraints.terms import (
    Constant,
    FreshVariableFactory,
    Substitution,
    Term,
    Variable,
)
from repro.errors import EvaluationError, SolverError, UnknownDomainError, UnknownFunctionError


@dataclass(frozen=True)
class SolverOptions:
    """Tunable knobs of the satisfiability procedure."""

    #: Maximum number of DNF branches explored before giving up.
    max_branches: int = 4096
    #: Number of rounds of bound propagation across variable orderings.
    propagation_rounds: int = 8
    #: Largest finite membership result set that is enumerated during
    #: per-class candidate filtering.
    max_membership_enumeration: int = 10_000
    #: What to assume about DCA-atoms whose call cannot be evaluated
    #: (non-ground arguments, unknown domain, or no evaluator configured).
    #: ``True`` (the default) treats them as satisfiable, which matches the
    #: deferred-evaluation reading of Section 4 of the paper.
    unknown_membership_satisfiable: bool = True
    #: When True, failing to evaluate a *ground* call raises instead of
    #: falling back to the unknown-membership assumption.
    strict_evaluation: bool = False
    #: Memoize :meth:`ConstraintSolver.is_satisfiable` results, keyed on the
    #: constraint's canonical form.  Results that depend on external domain
    #: functions (DCA-atoms with an evaluator attached) go into a separate
    #: cache dropped by :meth:`ConstraintSolver.invalidate_external_functions`.
    memoize_satisfiability: bool = True
    #: Force-cache results that consult external domain functions even when
    #: the evaluator exposes no ``version`` token.  Evaluators *with* a token
    #: (the domain registry) get external memoization automatically -- the
    #: solver drops stale entries whenever the token changes -- so this flag
    #: only matters for tokenless evaluators, where the caller must own a
    #: change-notification contract (calling
    #: :meth:`ConstraintSolver.invalidate_external_functions` on every
    #: source change, as the Section-4 maintenance classes do).
    memoize_external_calls: bool = False
    #: Hard cap on cached satisfiability results (per cache; the cache is
    #: cleared wholesale when the cap is hit -- a simple, branch-free policy).
    max_memoized_results: int = 100_000


DEFAULT_OPTIONS = SolverOptions()


# ---------------------------------------------------------------------------
# Internal branch representation
# ---------------------------------------------------------------------------


@dataclass
class _Interval:
    """A (possibly unbounded) interval of allowed numeric values."""

    low: float = -math.inf
    low_strict: bool = False
    high: float = math.inf
    high_strict: bool = False

    def tighten_low(self, value: float, strict: bool) -> None:
        if value > self.low or (value == self.low and strict and not self.low_strict):
            self.low = value
            self.low_strict = strict

    def tighten_high(self, value: float, strict: bool) -> None:
        if value < self.high or (value == self.high and strict and not self.high_strict):
            self.high = value
            self.high_strict = strict

    def is_empty(self) -> bool:
        if self.low > self.high:
            return True
        if self.low == self.high and (self.low_strict or self.high_strict):
            return True
        return False

    def admits(self, value: object) -> bool:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            # A non-numeric value cannot satisfy a numeric ordering bound.
            return self.low == -math.inf and self.high == math.inf
        if value < self.low or (value == self.low and self.low_strict):
            return False
        if value > self.high or (value == self.high and self.high_strict):
            return False
        return True

    def is_point(self) -> Optional[float]:
        if self.low == self.high and not self.low_strict and not self.high_strict:
            return self.low
        return None

    def is_trivial(self) -> bool:
        return self.low == -math.inf and self.high == math.inf


class _UnionFind:
    """Union-find over terms, tracking the constant bound to each class."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._constant: Dict[Term, Constant] = {}
        self.conflict = False

    def add(self, term: Term) -> None:
        if term not in self._parent:
            self._parent[term] = term
            if isinstance(term, Constant):
                self._constant[term] = term

    def find(self, term: Term) -> Term:
        self.add(term)
        root = term
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[term] != root:
            self._parent[term], term = root, self._parent[term]
        return root

    def union(self, left: Term, right: Term) -> None:
        root_left = self.find(left)
        root_right = self.find(right)
        if root_left == root_right:
            return
        const_left = self._constant.get(root_left)
        const_right = self._constant.get(root_right)
        if const_left is not None and const_right is not None:
            if const_left.value != const_right.value:
                self.conflict = True
                return
        self._parent[root_right] = root_left
        if const_left is None and const_right is not None:
            self._constant[root_left] = const_right

    def constant_of(self, term: Term) -> Optional[Constant]:
        return self._constant.get(self.find(term))

    def classes(self) -> Dict[Term, List[Term]]:
        grouped: Dict[Term, List[Term]] = {}
        for term in list(self._parent):
            grouped.setdefault(self.find(term), []).append(term)
        return grouped


@dataclass
class _Branch:
    """A conjunction of primitive literals (one DNF branch)."""

    equalities: List[Comparison] = field(default_factory=list)
    disequalities: List[Comparison] = field(default_factory=list)
    orderings: List[Comparison] = field(default_factory=list)
    memberships: List[Membership] = field(default_factory=list)

    def add(self, literal: Constraint) -> bool:
        """Add a literal; return False if the branch is trivially closed."""
        if isinstance(literal, TrueConstraint):
            return True
        if isinstance(literal, FalseConstraint):
            return False
        if isinstance(literal, Comparison):
            if literal.op == "=":
                self.equalities.append(literal)
            elif literal.op == "!=":
                self.disequalities.append(literal)
            else:
                self.orderings.append(literal)
            return True
        if isinstance(literal, Membership):
            self.memberships.append(literal)
            return True
        raise SolverError(f"unexpected literal in branch: {literal!r}")


class ConstraintSolver:
    """Decides satisfiability and ground truth of constraints.

    Parameters
    ----------
    evaluator:
        An object implementing :class:`CallEvaluator` (typically the
        mediator's domain registry).  When omitted, DCA-atoms are treated
        according to ``options.unknown_membership_satisfiable``.
    options:
        A :class:`SolverOptions` instance.
    """

    def __init__(
        self,
        evaluator: Optional[CallEvaluator] = None,
        options: SolverOptions = DEFAULT_OPTIONS,
    ) -> None:
        self._evaluator = evaluator
        self._options = options
        # Pure results for membership-free constraints are a function of the
        # node alone (no evaluator can be consulted, and the branch/round
        # limits are the only options that matter); with default limits they
        # are stored *on the interned node* (``_sat`` / ``_simplify{0,1}``
        # slots), shared by every solver in the process and dropped exactly
        # when the node dies.  Solvers with non-default limits fall back to
        # the per-solver dictionaries below.
        self._node_memo = (
            options.memoize_satisfiability
            and options.max_branches == DEFAULT_OPTIONS.max_branches
            and options.propagation_rounds == DEFAULT_OPTIONS.propagation_rounds
        )
        # Satisfiability memo, split by what the result depends on.  Pure
        # results (no DCA-atom consults the evaluator) are time-invariant and
        # survive source changes; external results are valid while the
        # evaluator's version token is unchanged (or, for evaluators without
        # one, until invalidate_external_functions() is called).
        self._pure_sat_cache: Dict[Constraint, bool] = {}
        self._external_sat_cache: Dict[Constraint, bool] = {}
        self._external_cache_version: object = None
        # Simplification memo (filled by repro.constraints.simplify), split
        # the same way: simplification consults entailment, which can depend
        # on external functions.
        self._pure_simplify_cache: Dict[object, Constraint] = {}
        self._external_simplify_cache: Dict[object, Constraint] = {}
        # Argument-profile memo for the quick-reject pre-filter.  Profiles
        # are purely syntactic summaries of the canonical form, so they stay
        # valid across external source changes (only the per-domain
        # quick_reject hooks consult live sources, at comparison time).
        self._profile_cache: Dict[Tuple[Tuple[Term, ...], Constraint], "ArgumentProfile"] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def evaluator(self) -> Optional[CallEvaluator]:
        """The domain-call evaluator this solver consults (may be ``None``)."""
        return self._evaluator

    @property
    def options(self) -> SolverOptions:
        """The options this solver was configured with."""
        return self._options

    def with_evaluator(self, evaluator: Optional[CallEvaluator]) -> "ConstraintSolver":
        """Return a solver sharing options but using a different evaluator."""
        return ConstraintSolver(evaluator, self._options)

    def with_external_memoization(self) -> "ConstraintSolver":
        """Return a solver that also memoizes DCA-dependent results.

        The caller takes on the obligation to call
        :meth:`invalidate_external_functions` whenever an external source
        changes; the external-maintenance strategies of Section 4 do exactly
        that on every ``on_source_changed``.
        """
        options = dataclasses.replace(self._options, memoize_external_calls=True)
        return ConstraintSolver(self._evaluator, options)

    def invalidate_external_functions(self) -> None:
        """Drop memoized results that consulted external domain functions.

        The external-maintenance strategies of Section 4 call this whenever a
        source changes: satisfiability of a constraint containing DCA-atoms
        is a function of the sources' current behaviour, so those cached
        results are stale the moment a behaviour changes.  Pure comparison
        results are time-invariant and are kept -- including the per-node
        ``_sat``/``_simplify*`` slots, which are only ever written for
        membership-free constraints and therefore can never go stale.
        """
        self._external_sat_cache.clear()
        self._external_simplify_cache.clear()

    def is_satisfiable(self, constraint: Constraint) -> bool:
        """Return True if the constraint has at least one solution."""
        if isinstance(constraint, TrueConstraint):
            return True
        if isinstance(constraint, FalseConstraint):
            return False
        if self._node_memo and not constraint._membership:
            # Membership-free satisfiability is a pure function of the
            # interned node: the memo lives on the node itself (shared by
            # every solver in the process) and the two-level probe --
            # constraint, then canonical form -- is two pointer reads.
            from repro.constraints.intern import EVENTS
            from repro.constraints.simplify import canonical_form

            cached = constraint._sat
            if cached is not None:
                EVENTS.sat_node_hits += 1
                return cached
            key = canonical_form(constraint)
            cached = key._sat
            if cached is not None:
                EVENTS.sat_node_hits += 1
                object.__setattr__(constraint, "_sat", cached)
                return cached
            result = self._decide_satisfiable(constraint)
            object.__setattr__(key, "_sat", result)
            object.__setattr__(constraint, "_sat", result)
            return result
        cache = self._cache_for(constraint)
        key: Optional[Constraint] = None
        if cache is not None:
            from repro.constraints.simplify import canonical_form

            # Two-level probe: the constraint itself first (its hash is
            # cached on the node, so this is nearly free), then the
            # canonical form, which also catches reordered conjunctions.
            cached = cache.get(constraint)
            if cached is None:
                key = canonical_form(constraint)
                cached = cache.get(key)
            if cached is not None:
                return cached
        result = self._decide_satisfiable(constraint)
        if cache is not None and key is not None:
            if len(cache) >= self._options.max_memoized_results:
                cache.clear()
            cache[key] = result
            if key != constraint:
                cache[constraint] = result
        return result

    def _decide_satisfiable(self, constraint: Constraint) -> bool:
        # Inline equality-determined local variables inside negations so the
        # branch expansion treats ``not(ψ)`` exactly (see scope_negations).
        from repro.constraints.projection import scope_negations

        constraint = scope_negations(constraint)
        if isinstance(constraint, TrueConstraint):
            return True
        if isinstance(constraint, FalseConstraint):
            return False
        for branch in self._branches(constraint):
            if branch is None:
                continue
            if self._branch_satisfiable(branch):
                return True
        return False

    def _cache_for(self, constraint: Constraint) -> Optional[Dict[Constraint, bool]]:
        """Pick the memo for *constraint*, or ``None`` when caching is unsafe.

        A result is *pure* -- cacheable forever -- when no DCA-atom can reach
        the evaluator: either the constraint mentions none, or there is no
        evaluator (unknown memberships resolve by a fixed option).  Results
        that do consult external functions are cached when the evaluator
        exposes a ``version`` token (the registry's token changes on every
        source change, so stale entries are dropped automatically) or when
        the caller opted in via ``memoize_external_calls`` (pairing it with
        :meth:`invalidate_external_functions` on every source change).
        """
        if not self._options.memoize_satisfiability:
            return None
        if self._evaluator is None or not _mentions_membership(constraint):
            return self._pure_sat_cache
        if self._refresh_external_caches() or self._options.memoize_external_calls:
            return self._external_sat_cache
        return None

    def _refresh_external_caches(self) -> bool:
        """Version-gate the external memo; True when it is safe to use.

        Compares the evaluator's current version token against the one the
        cached results were computed under, dropping them on mismatch.
        Evaluators without a token answer False, keeping the legacy opt-in
        behaviour.
        """
        token = getattr(self._evaluator, "version", None)
        if token is None:
            return False
        if token != self._external_cache_version:
            self._external_sat_cache.clear()
            self._external_simplify_cache.clear()
            self._external_cache_version = token
        return True

    def cached_simplification(
        self, constraint: Constraint, variant: object
    ) -> Optional[Constraint]:
        """Look up a memoized simplification result (see ``simplify``).

        *variant* distinguishes simplification modes (e.g. whether redundant
        comparisons are dropped); gating mirrors the satisfiability memo.
        Pure (membership-free) results live on the interned node itself --
        one slot per variant -- so every solver in the process shares them.
        """
        if self._node_memo and not constraint._membership and isinstance(variant, bool):
            cached = constraint._simplify1 if variant else constraint._simplify0
            if cached is not None:
                from repro.constraints.intern import EVENTS

                EVENTS.simplify_node_hits += 1
            return cached
        cache = self._simplify_cache_for(constraint)
        if cache is None:
            return None
        return cache.get((constraint, variant))

    def cache_simplification(
        self, constraint: Constraint, variant: object, result: Constraint
    ) -> None:
        """Store a simplification result in the memo (see ``simplify``)."""
        if self._node_memo and not constraint._membership and isinstance(variant, bool):
            slot = "_simplify1" if variant else "_simplify0"
            object.__setattr__(constraint, slot, result)
            return
        cache = self._simplify_cache_for(constraint)
        if cache is None:
            return
        if len(cache) >= self._options.max_memoized_results:
            cache.clear()
        cache[(constraint, variant)] = result

    def _simplify_cache_for(
        self, constraint: Constraint
    ) -> Optional[Dict[object, Constraint]]:
        if not self._options.memoize_satisfiability:
            return None
        if self._evaluator is None or not _mentions_membership(constraint):
            return self._pure_simplify_cache
        if self._refresh_external_caches() or self._options.memoize_external_calls:
            return self._external_simplify_cache
        return None

    def is_unsatisfiable(self, constraint: Constraint) -> bool:
        """Return True if the constraint has no solution."""
        return not self.is_satisfiable(constraint)

    # ------------------------------------------------------------------
    # Quick-reject pre-filter
    # ------------------------------------------------------------------
    def argument_profile(
        self, args: Sequence[Term], constraint: Constraint
    ) -> "ArgumentProfile":
        """Memoized per-argument summary of a constrained atom.

        See :func:`build_argument_profile`; the memo is keyed on the raw
        argument tuple and constraint object (canonicalization happens inside
        the builder, whose own memo absorbs reordered duplicates).
        """
        key = (tuple(args), constraint)
        try:
            cached = self._profile_cache.get(key)
        except TypeError:
            return build_argument_profile(args, constraint)
        if cached is None:
            cached = build_argument_profile(args, constraint)
            if len(self._profile_cache) >= self._options.max_memoized_results:
                self._profile_cache.clear()
            self._profile_cache[key] = cached
        return cached

    def quick_reject(
        self,
        left_args: Sequence[Term],
        left_constraint: Constraint,
        right_args: Sequence[Term],
        right_constraint: Constraint,
    ) -> bool:
        """Cheap pre-filter for the overlap test of the maintenance rewrites.

        Returns True only when ``left & right & (left_args = right_args)`` is
        *definitely* unsatisfiable, established from the two atoms' argument
        profiles alone: clashing pinned constants, a pinned constant outside
        the other side's interval, disjoint intervals, or a per-domain
        ``quick_reject`` hook refuting a pinned value's membership.  A False
        result proves nothing -- callers follow up with the full
        :meth:`is_satisfiable` check.  Skipping the solver call on a True
        result is exactly equivalent to the solver returning unsatisfiable.
        """
        if len(left_args) != len(right_args):
            return False
        left = self.argument_profile(left_args, left_constraint)
        if left.unsatisfiable:
            return True
        right = self.argument_profile(right_args, right_constraint)
        if right.unsatisfiable:
            return True
        for left_slot, right_slot in zip(left.slots, right.slots):
            if left_slot.value is not _UNKNOWN and right_slot.value is not _UNKNOWN:
                if not _values_equal(left_slot.value, right_slot.value):
                    return True
                continue
            if left_slot.value is not _UNKNOWN:
                if self._slot_excludes(right_slot, left_slot.value):
                    return True
            elif right_slot.value is not _UNKNOWN:
                if self._slot_excludes(left_slot, right_slot.value):
                    return True
            elif (
                left_slot.interval is not None
                and right_slot.interval is not None
                and _intervals_disjoint(left_slot.interval, right_slot.interval)
            ):
                return True
        return False

    def _slot_excludes(self, slot: "ArgumentSlot", value: object) -> bool:
        """True when *slot*'s summary definitely excludes the pinned *value*."""
        if slot.interval is not None and _interval_excludes(slot.interval, value):
            return True
        if slot.calls:
            hook = getattr(self._evaluator, "quick_reject", None)
            if hook is not None:
                for domain, function, args in slot.calls:
                    try:
                        if hook(domain, function, args, value):
                            return True
                    except Exception:  # hooks must never break the pre-filter
                        continue
        return False

    def subsumes_instances(
        self,
        left_args: Sequence[Term],
        left_constraint: Constraint,
        right_args: Sequence[Term],
        right_constraint: Constraint,
    ) -> bool:
        """True when every instance of the left atom is an instance of the right.

        The check behind Extended DRed's post-rederivation subsumption pass:
        for two entries ``A(X̄) <- φ`` and ``A(Ȳ) <- ψ`` of the same
        predicate, the left is *syntactically redundant* next to the right
        when ``φ & not(ψ' & (Ȳ' = X̄))`` is unsatisfiable (the right side
        renamed apart, its variables quantified inside the negation): no
        left instance escapes the right's instance set.  A False result
        proves nothing -- the procedure errs on the side of satisfiable, so
        subsumption errs on the side of "not subsumed", which only costs
        keeping a redundant entry.

        Identity fast path: when the two atoms are the *same* constrained
        atom -- equal argument tuples and pointer-identical (canonical)
        constraints, which hash-consing makes an O(1) check -- the instance
        sets are equal and the answer is True without touching the solver.
        """
        if len(left_args) != len(right_args):
            return False
        if self.identical_instances(
            left_args, left_constraint, right_args, right_constraint
        ):
            return True
        reserved = {v.name for v in left_constraint.variables()}
        reserved.update(v.name for v in right_constraint.variables())
        for arg in itertools.chain(left_args, right_args):
            if isinstance(arg, Variable):
                reserved.add(arg.name)
        factory = FreshVariableFactory(reserved)
        right_variables = set(right_constraint.variables())
        right_variables.update(
            arg for arg in right_args if isinstance(arg, Variable)
        )
        renaming = factory.renaming_for(right_variables)
        renamed_args = renaming.apply_all(right_args)
        matched = conjoin(
            right_constraint.substitute(renaming),
            tuple_equalities(renamed_args, left_args),
        )
        negated = NegatedConjunction(tuple(matched.conjuncts()))
        return not self.is_satisfiable(conjoin(left_constraint, negated))

    def identical_instances(
        self,
        left_args: Sequence[Term],
        left_constraint: Constraint,
        right_args: Sequence[Term],
        right_constraint: Constraint,
    ) -> bool:
        """Pointer-identity test for "these two atoms denote the same set".

        With hash-consed nodes, structural equality *is* identity, so equal
        argument tuples plus an identical constraint (directly or after
        canonicalization, itself a per-node slot read) prove the instance
        sets equal -- mutual subsumption without a solver call.  A False
        result proves nothing, exactly like :meth:`quick_reject`'s contract
        in the other direction.  Callers use this to skip counted solver
        calls on the self-overlap pairs every deletion batch produces.
        """
        if tuple(left_args) != tuple(right_args):
            return False
        if left_constraint is not right_constraint:
            from repro.constraints.simplify import canonical_form

            if canonical_form(left_constraint) is not canonical_form(
                right_constraint
            ):
                return False
        from repro.constraints.intern import EVENTS

        EVENTS.identity_subsumptions += 1
        return True

    def entails(self, context: Constraint, fact: Constraint) -> bool:
        """Return True if every solution of *context* satisfies *fact*.

        Implemented as unsatisfiability of ``context & not(fact)``; *fact*
        must lie in the negatable fragment (primitives and conjunctions of
        primitives).  ``context is fact`` short-circuits: with interned
        nodes a constraint trivially entails itself.
        """
        from repro.constraints.ast import conjoin

        if context is fact or isinstance(fact, TrueConstraint):
            return True
        return not self.is_satisfiable(conjoin(context, negate(fact)))

    def equivalent(self, left: Constraint, right: Constraint) -> bool:
        """Return True if the two constraints have the same solutions.

        Only supported when both sides are in the negatable fragment.
        Pointer-identical (or canonically identical) sides are equivalent
        by construction -- no solver call.
        """
        if left is right:
            return True
        from repro.constraints.simplify import canonical_form

        if canonical_form(left) is canonical_form(right):
            return True
        return self.entails(left, right) and self.entails(right, left)

    def evaluate_ground(
        self, constraint: Constraint, assignment: Mapping[Variable, object]
    ) -> bool:
        """Evaluate *constraint* under a total assignment of Python values."""
        if isinstance(constraint, TrueConstraint):
            return True
        if isinstance(constraint, FalseConstraint):
            return False
        if isinstance(constraint, Conjunction):
            return all(
                self.evaluate_ground(part, assignment) for part in constraint.parts
            )
        if isinstance(constraint, NegatedConjunction):
            unbound = [
                variable
                for variable in constraint.variables()
                if variable not in assignment
            ]
            if unbound:
                # Variables occurring only under the negation are implicitly
                # existentially quantified *inside* it: ``not(ψ)`` holds iff
                # no witness for them makes ψ true.  Substitute the bound
                # values and fall back to a satisfiability check.
                substitution = Substitution(
                    {
                        variable: Constant(assignment[variable])
                        for variable in constraint.variables()
                        if variable in assignment
                    }
                )
                inner = conjoin(*(part.substitute(substitution) for part in constraint.parts))
                return not self.is_satisfiable(inner)
            return not all(
                self.evaluate_ground(part, assignment) for part in constraint.parts
            )
        if isinstance(constraint, Comparison):
            return self._evaluate_comparison(constraint, assignment)
        if isinstance(constraint, Membership):
            return self._evaluate_membership(constraint, assignment)
        raise SolverError(f"cannot evaluate constraint: {constraint!r}")

    # ------------------------------------------------------------------
    # Branch construction
    # ------------------------------------------------------------------
    def _branches(self, constraint: Constraint) -> Iterable[Optional[_Branch]]:
        """Expand the constraint into DNF branches of primitive literals.

        Negated conjunctions are disjunctions of negated parts; a negated
        part that is itself a negated conjunction contributes its inner
        conjunction (double negation), so the expansion is a depth-first
        search over "pending obligation" states rather than a flat product.
        """
        produced = 0
        # Each stack item is (literals, obligations): literals already in the
        # branch, constraints still to be processed.
        stack: List[Tuple[List[Constraint], List[Constraint]]] = [
            ([], list(constraint.conjuncts()))
        ]
        while stack:
            literals, obligations = stack.pop()
            dead = False
            while obligations:
                current = obligations.pop()
                if isinstance(current, TrueConstraint):
                    continue
                if isinstance(current, FalseConstraint):
                    dead = True
                    break
                if isinstance(current, Conjunction):
                    obligations.extend(current.parts)
                    continue
                if isinstance(current, NegatedConjunction):
                    if not current.parts:
                        # not(true) is false.
                        dead = True
                        break
                    produced += len(current.parts)
                    if produced > self._options.max_branches:
                        raise SolverError(
                            "constraint requires more than "
                            f"{self._options.max_branches} DNF branches"
                        )
                    for picked in current.parts:
                        if isinstance(picked, NegatedConjunction):
                            # Falsifying not(Q) means Q must hold.
                            extra: List[Constraint] = list(picked.parts)
                        elif isinstance(picked, FalseConstraint):
                            extra = []
                        else:
                            extra = [negate(picked)]
                        stack.append((list(literals), list(obligations) + extra))
                    dead = True  # this state was split; do not emit it itself
                    break
                if current.is_primitive():
                    literals.append(current)
                    continue
                raise SolverError(f"unexpected conjunct: {current!r}")
            if dead:
                continue
            branch = _Branch()
            alive = True
            for literal in literals:
                if not branch.add(literal):
                    alive = False
                    break
            yield branch if alive else None

    # ------------------------------------------------------------------
    # Branch satisfiability
    # ------------------------------------------------------------------
    def _branch_satisfiable(self, branch: _Branch) -> bool:
        uf = _UnionFind()
        for equality in branch.equalities:
            uf.union(equality.left, equality.right)
            if uf.conflict:
                return False

        # Disequalities: syntactic class clash.
        for disequality in branch.disequalities:
            if uf.find(disequality.left) == uf.find(disequality.right):
                return False
            left_const = uf.constant_of(disequality.left)
            right_const = uf.constant_of(disequality.right)
            if (
                left_const is not None
                and right_const is not None
                and left_const.value == right_const.value
            ):
                return False

        intervals = self._propagate_orderings(branch, uf)
        if intervals is None:
            return False

        # Interval consistency per class.
        for root, interval in intervals.items():
            constant = uf.constant_of(root)
            if constant is not None:
                if not interval.admits(constant.value):
                    return False
            elif interval.is_empty():
                return False

        # Single-point intervals interacting with disequalities.
        if not self._check_point_disequalities(branch, uf, intervals):
            return False

        return self._check_memberships(branch, uf, intervals)

    def _propagate_orderings(
        self, branch: _Branch, uf: _UnionFind
    ) -> Optional[Dict[Term, _Interval]]:
        intervals: Dict[Term, _Interval] = {}

        def interval_for(term: Term) -> _Interval:
            root = uf.find(term)
            if root not in intervals:
                intervals[root] = _Interval()
                constant = uf.constant_of(root)
                if constant is not None and _is_number(constant.value):
                    intervals[root].tighten_low(float(constant.value), False)
                    intervals[root].tighten_high(float(constant.value), False)
            return intervals[root]

        ground_checks: List[Comparison] = []
        var_edges: List[Tuple[Term, Term, bool]] = []  # (low_root, high_root, strict)

        for ordering in branch.orderings:
            left_const = uf.constant_of(ordering.left)
            right_const = uf.constant_of(ordering.right)
            if left_const is not None and right_const is not None:
                ground_checks.append(ordering)
                continue
            comparison = ordering
            if comparison.op in (">", ">="):
                comparison = comparison.flipped()
            # Now op is < or <=:  left  <(=)  right.
            strict = comparison.op == "<"
            left_root = uf.find(comparison.left)
            right_root = uf.find(comparison.right)
            if left_root == right_root:
                if strict:
                    return None
                continue
            left_const = uf.constant_of(comparison.left)
            right_const = uf.constant_of(comparison.right)
            if right_const is not None:
                if not _is_number(right_const.value):
                    return None
                interval_for(comparison.left).tighten_high(
                    float(right_const.value), strict
                )
            elif left_const is not None:
                if not _is_number(left_const.value):
                    return None
                interval_for(comparison.right).tighten_low(
                    float(left_const.value), strict
                )
            else:
                interval_for(comparison.left)
                interval_for(comparison.right)
                var_edges.append((left_root, right_root, strict))

        for ordering in ground_checks:
            left_const = uf.constant_of(ordering.left)
            right_const = uf.constant_of(ordering.right)
            assert left_const is not None and right_const is not None
            if not _compare_values(left_const.value, ordering.op, right_const.value):
                return None

        # Bound propagation across variable-variable orderings.
        for _ in range(self._options.propagation_rounds):
            changed = False
            for low_root, high_root, strict in var_edges:
                low_iv = intervals[low_root]
                high_iv = intervals[high_root]
                before = (low_iv.high, low_iv.high_strict, high_iv.low, high_iv.low_strict)
                low_iv.tighten_high(high_iv.high, strict or high_iv.high_strict)
                high_iv.tighten_low(low_iv.low, strict or low_iv.low_strict)
                after = (low_iv.high, low_iv.high_strict, high_iv.low, high_iv.low_strict)
                changed = changed or before != after
            if not changed:
                break
        return intervals

    def _check_point_disequalities(
        self,
        branch: _Branch,
        uf: _UnionFind,
        intervals: Dict[Term, _Interval],
    ) -> bool:
        def pinned_value(term: Term) -> Optional[object]:
            constant = uf.constant_of(term)
            if constant is not None:
                return constant.value
            interval = intervals.get(uf.find(term))
            if interval is not None:
                point = interval.is_point()
                if point is not None:
                    return point
            return None

        for disequality in branch.disequalities:
            left_value = pinned_value(disequality.left)
            right_value = pinned_value(disequality.right)
            if left_value is None or right_value is None:
                continue
            if _values_equal(left_value, right_value):
                return False
        return True

    def _check_memberships(
        self,
        branch: _Branch,
        uf: _UnionFind,
        intervals: Dict[Term, _Interval],
    ) -> bool:
        if not branch.memberships:
            return True

        # Partition literals per element class for candidate intersection.
        per_class: Dict[Term, List[Tuple[Membership, Optional[ResultSetLike]]]] = {}
        for literal in branch.memberships:
            result = self._try_evaluate(literal.call, uf)
            element_value = self._pinned_value(literal.element, uf, intervals)
            if result is None:
                # Unknown call: assume satisfiable (or not) per options.
                if not self._options.unknown_membership_satisfiable:
                    return False
                continue
            if element_value is not _UNKNOWN:
                member = result.contains(element_value)
                if literal.positive and not member:
                    return False
                if not literal.positive and member:
                    return False
                continue
            if literal.positive and result.is_empty():
                return False
            root = uf.find(literal.element)
            per_class.setdefault(root, []).append((literal, result))

        # Candidate filtering for unpinned elements with finite positive sets.
        for root, literals in per_class.items():
            finite_positive = [
                result
                for literal, result in literals
                if literal.positive
                and result is not None
                and result.is_finite()
                and (result.size_hint() or 0) <= self._options.max_membership_enumeration
            ]
            if not finite_positive:
                continue
            negatives = [
                result
                for literal, result in literals
                if not literal.positive and result is not None
            ]
            other_positive = [
                result
                for literal, result in literals
                if literal.positive and result not in finite_positive and result is not None
            ]
            interval = intervals.get(root, _Interval())
            disequal_values = self._disequal_values_for(root, branch, uf, intervals)
            base = finite_positive[0]
            found = False
            for value in base.iter_values():
                if not interval.admits(value) and not interval.is_trivial():
                    if _is_number(value) and not interval.admits(value):
                        continue
                    if not _is_number(value) and not interval.is_trivial():
                        continue
                if any(_values_equal(value, bad) for bad in disequal_values):
                    continue
                if any(not other.contains(value) for other in finite_positive[1:]):
                    continue
                if any(not other.contains(value) for other in other_positive):
                    continue
                if any(negative.contains(value) for negative in negatives):
                    continue
                found = True
                break
            if not found:
                return False
        return True

    def _disequal_values_for(
        self,
        root: Term,
        branch: _Branch,
        uf: _UnionFind,
        intervals: Dict[Term, _Interval],
    ) -> List[object]:
        values: List[object] = []
        for disequality in branch.disequalities:
            left_root = uf.find(disequality.left)
            right_root = uf.find(disequality.right)
            other: Optional[Term] = None
            if left_root == root:
                other = disequality.right
            elif right_root == root:
                other = disequality.left
            if other is None:
                continue
            pinned = self._pinned_value(other, uf, intervals)
            if pinned is not _UNKNOWN:
                values.append(pinned)
        return values

    def _pinned_value(
        self, term: Term, uf: _UnionFind, intervals: Dict[Term, _Interval]
    ) -> object:
        constant = uf.constant_of(term)
        if constant is not None:
            return constant.value
        interval = intervals.get(uf.find(term))
        if interval is not None:
            point = interval.is_point()
            if point is not None:
                if point == int(point):
                    return int(point)
                return point
        return _UNKNOWN

    def _try_evaluate(
        self, call: DomainCall, uf: _UnionFind
    ) -> Optional[ResultSetLike]:
        if self._evaluator is None:
            return None
        args: List[object] = []
        for arg in call.args:
            constant = uf.constant_of(arg)
            if constant is None:
                return None
            args.append(constant.value)
        if not self._evaluator.has_domain(call.domain):
            if self._options.strict_evaluation:
                raise UnknownDomainError(f"unknown domain: {call.domain}")
            return None
        try:
            return self._evaluator.evaluate_call(call.domain, call.function, tuple(args))
        except (UnknownFunctionError, EvaluationError):
            if self._options.strict_evaluation:
                raise
            return None

    # ------------------------------------------------------------------
    # Ground evaluation helpers
    # ------------------------------------------------------------------
    def _evaluate_comparison(
        self, comparison: Comparison, assignment: Mapping[Variable, object]
    ) -> bool:
        left = _ground_term(comparison.left, assignment)
        right = _ground_term(comparison.right, assignment)
        return _compare_values(left, comparison.op, right)

    def _evaluate_membership(
        self, membership: Membership, assignment: Mapping[Variable, object]
    ) -> bool:
        if self._evaluator is None:
            raise SolverError(
                "cannot evaluate a DCA-atom without a domain evaluator: "
                f"{membership}"
            )
        element = _ground_term(membership.element, assignment)
        args = tuple(
            _ground_term(arg, assignment) for arg in membership.call.args
        )
        result = self._evaluator.evaluate_call(
            membership.call.domain, membership.call.function, args
        )
        member = result.contains(element)
        return member if membership.positive else not member


class _Unknown:
    """Sentinel for 'no pinned value'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unknown>"


_UNKNOWN = _Unknown()


# ---------------------------------------------------------------------------
# Quick-reject argument profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArgumentSlot:
    """Cheap per-argument summary used by the quick-reject pre-filter.

    ``value`` is the constant the canonical form pins the argument to (or
    :data:`_UNKNOWN`); ``interval`` the numeric range allowed by top-level
    ordering conjuncts (``None`` when unconstrained); ``calls`` the ground
    positive DCA-atoms whose element is this argument, as
    ``(domain, function, args)`` triples ready for a per-domain
    ``quick_reject`` hook.
    """

    value: object = _UNKNOWN
    interval: Optional[_Interval] = None
    calls: Tuple[Tuple[str, str, Tuple[object, ...]], ...] = ()


@dataclass(frozen=True)
class ArgumentProfile:
    """Per-position summaries of one constrained atom's canonical form."""

    slots: Tuple[ArgumentSlot, ...]
    #: The profile alone already closes the constraint (equality conflict or
    #: a pinned value outside its own interval): no instances exist.
    unsatisfiable: bool = False


def _interval_excludes(interval: _Interval, value: object) -> bool:
    """True when *interval* definitely excludes the pinned *value*.

    Booleans get no opinion: the solver's ground comparisons coerce them to
    0/1 (``True < 5`` holds), so excluding them here would prune overlaps
    the full check finds satisfiable.
    """
    if isinstance(value, bool):
        return False
    return not interval.admits(value)


def _intervals_disjoint(left: _Interval, right: _Interval) -> bool:
    if left.high < right.low:
        return True
    if left.high == right.low and (left.high_strict or right.low_strict):
        return True
    if right.high < left.low:
        return True
    if right.high == left.low and (right.high_strict or left.low_strict):
        return True
    return False


def build_argument_profile(
    args: Sequence[Term], constraint: Constraint
) -> ArgumentProfile:
    """Summarize what the canonical form says about each atom argument.

    Only *positive top-level* conjuncts are consulted (equalities, orderings
    against constants, ground DCA-atoms); everything else -- negations,
    variable-variable orderings, disequalities -- is ignored, which keeps the
    profile a sound over-approximation: two atoms whose profiles are
    incompatible definitely have no common instance, while compatible
    profiles prove nothing.
    """
    from repro.constraints.simplify import canonical_form

    canonical = canonical_form(constraint)
    if isinstance(canonical, FalseConstraint):
        return ArgumentProfile((), unsatisfiable=True)
    uf = _UnionFind()
    orderings: List[Comparison] = []
    memberships: List[Membership] = []
    if not isinstance(canonical, TrueConstraint):
        for part in canonical.conjuncts():
            if isinstance(part, Comparison):
                if part.op == "=":
                    uf.union(part.left, part.right)
                    if uf.conflict:
                        return ArgumentProfile((), unsatisfiable=True)
                elif part.op in ("<", "<=", ">", ">="):
                    orderings.append(part)
            elif isinstance(part, Membership) and part.positive:
                memberships.append(part)
            elif isinstance(part, FalseConstraint):
                return ArgumentProfile((), unsatisfiable=True)

    intervals: Dict[Term, _Interval] = {}

    def interval_for(term: Term) -> _Interval:
        root = uf.find(term)
        if root not in intervals:
            intervals[root] = _Interval()
        return intervals[root]

    for ordering in orderings:
        comparison = ordering
        if comparison.op in (">", ">="):
            comparison = comparison.flipped()
        strict = comparison.op == "<"
        left_const = uf.constant_of(comparison.left)
        right_const = uf.constant_of(comparison.right)
        if left_const is not None and right_const is not None:
            if not _compare_values(left_const.value, comparison.op, right_const.value):
                return ArgumentProfile((), unsatisfiable=True)
            continue
        try:
            if right_const is not None and _is_number(right_const.value):
                interval_for(comparison.left).tighten_high(
                    float(right_const.value), strict
                )
            elif left_const is not None and _is_number(left_const.value):
                interval_for(comparison.right).tighten_low(
                    float(left_const.value), strict
                )
        except OverflowError:
            pass  # int beyond float range: the profile ventures no bound

    def ground_call(call: DomainCall) -> Optional[Tuple[object, ...]]:
        values: List[object] = []
        for arg in call.args:
            constant = uf.constant_of(arg)
            if constant is None:
                return None
            values.append(constant.value)
        return tuple(values)

    slots: List[ArgumentSlot] = []
    for arg in args:
        constant = uf.constant_of(arg)
        value = constant.value if constant is not None else _UNKNOWN
        root = uf.find(arg)
        interval = intervals.get(root)
        if interval is not None and interval.is_trivial():
            interval = None
        if value is not _UNKNOWN and interval is not None:
            if _interval_excludes(interval, value):
                return ArgumentProfile((), unsatisfiable=True)
            interval = None  # the pinned value subsumes the interval
        calls: List[Tuple[str, str, Tuple[object, ...]]] = []
        for literal in memberships:
            if uf.find(literal.element) != root:
                continue
            resolved = ground_call(literal.call)
            if resolved is not None:
                calls.append((literal.call.domain, literal.call.function, resolved))
        if interval is not None and interval.is_empty():
            return ArgumentProfile((), unsatisfiable=True)
        slots.append(ArgumentSlot(value, interval, tuple(calls)))
    return ArgumentProfile(tuple(slots))


# ---------------------------------------------------------------------------
# Public interval toolkit
# ---------------------------------------------------------------------------
# The argument index's range postings (repro.datalog.view) and the indexed
# join enumeration (repro.datalog.fixpoint) are built on the same interval
# arithmetic the branch procedure and the quick-reject profiles use.  These
# aliases are the supported surface for that sharing: the underscore names
# remain internal to this module and may be refactored freely.

#: A (possibly unbounded) numeric interval; see :class:`_Interval`.
Interval = _Interval

#: Sentinel for "no pinned value" in :class:`ArgumentSlot` profiles.
PROFILE_UNKNOWN = _UNKNOWN


def interval_excludes(interval: Interval, value: object) -> bool:
    """True when *interval* definitely excludes *value* (bools: no opinion)."""
    return _interval_excludes(interval, value)


def intervals_disjoint(left: Interval, right: Interval) -> bool:
    """True when the two intervals share no point."""
    return _intervals_disjoint(left, right)


def intersect_intervals(left: Interval, right: Interval) -> Interval:
    """The intersection of two intervals (possibly empty)."""
    merged = _Interval(left.low, left.low_strict, left.high, left.high_strict)
    merged.tighten_low(right.low, right.low_strict)
    merged.tighten_high(right.high, right.high_strict)
    return merged


def _ground_term(term: Term, assignment: Mapping[Variable, object]) -> object:
    if isinstance(term, Constant):
        return term.value
    if term in assignment:
        return assignment[term]
    raise SolverError(f"unbound variable in ground evaluation: {term}")


def _mentions_membership(constraint: Constraint) -> bool:
    """True when a DCA-atom occurs anywhere in the constraint.

    Precomputed at construction on every interned node (the ``_membership``
    flag), so this is an attribute read, not a tree walk.
    """
    return constraint._membership


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _values_equal(left: object, right: object) -> bool:
    if _is_number(left) and _is_number(right):
        return float(left) == float(right)
    return left == right


def _compare_values(left: object, op: str, right: object) -> bool:
    if op == "=":
        return _values_equal(left, right)
    if op == "!=":
        return not _values_equal(left, right)
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:
        return False
    raise SolverError(f"unknown comparison operator: {op!r}")
