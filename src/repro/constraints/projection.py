"""Variable elimination (projection) for constraints.

Clause application in ``T_P`` / ``W_P`` produces constraints full of
auxiliary variables: the equalities ``{X̄i = t̄i}`` that wire renamed body
entries to the clause's body atoms.  Those auxiliary variables are
existentially quantified -- only the head variables matter for the view
entry's meaning -- and the paper's worked examples always show the
*projected* constraint (e.g. ``A(X) <- X >= 5`` rather than
``A(X) <- X1 >= 5 & X1 = X``).

``eliminate_variables`` implements the sound projection used for this:
a positive top-level equality ``V = t`` whose ``V`` is not a protected
variable can be removed after substituting ``t`` for ``V`` everywhere,
because ``∃V (V = t ∧ φ)`` is equivalent to ``φ[V := t]``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.constraints.ast import (
    Comparison,
    Constraint,
    FalseConstraint,
    TrueConstraint,
    conjoin,
)
from repro.constraints.terms import Constant, Substitution, Term, Variable

#: Cap on the per-node projection memo (``_elim`` slot): one constraint is
#: typically projected onto a handful of keep-sets (its clause heads), so a
#: small bound suffices; the dict is dropped wholesale when full.  The memo
#: itself lives on the interned node and dies with it -- projection is
#: deterministic and purely syntactic, so entries never go stale.
_ELIMINATION_MEMO_LIMIT = 16


def eliminate_variables(
    constraint: Constraint,
    keep: Iterable[Variable],
    max_rounds: Optional[int] = None,
) -> Constraint:
    """Eliminate auxiliary variables bound by top-level equalities.

    Parameters
    ----------
    constraint:
        The constraint to project.
    keep:
        Variables that must survive (typically the head variables of the
        derived atom).  Every other variable is auxiliary and is eliminated
        whenever a top-level equality pins it to another term.
    max_rounds:
        Safety bound on the number of elimination passes (defaults to the
        number of conjuncts plus one).
    """
    protected: Set[Variable] = set(keep)
    if isinstance(constraint, (TrueConstraint, FalseConstraint)):
        return constraint

    cache_key: Optional[FrozenSet[Variable]] = None
    if max_rounds is None:
        cache_key = frozenset(protected)
        memo = constraint._elim
        if memo is not None:
            cached = memo.get(cache_key)
            if cached is not None:
                return cached

    parts: List[Constraint] = list(constraint.conjuncts())
    rounds = max_rounds if max_rounds is not None else len(parts) + 1

    for _ in range(rounds):
        target = _find_eliminable_equality(parts, protected)
        if target is None:
            break
        index, variable, replacement = target
        substitution = Substitution({variable: replacement})
        parts = [
            part.substitute(substitution)
            for position, part in enumerate(parts)
            if position != index
        ]
    result = conjoin(*_drop_trivial(parts))
    if cache_key is not None:
        memo = constraint._elim
        if memo is None or len(memo) >= _ELIMINATION_MEMO_LIMIT:
            memo = {}
            object.__setattr__(constraint, "_elim", memo)
        memo[cache_key] = result
    return result


def scope_negations(constraint: Constraint) -> Constraint:
    """Inline equality-determined local variables inside each ``not(...)``.

    A variable occurring *only* inside one negated conjunction is implicitly
    quantified inside that negation (``not(ψ)`` means "ψ has no witness").
    When such a variable is pinned by an equality inside ψ -- which is always
    the case for the binding equalities the maintenance rewrites introduce --
    it can be eliminated by substitution, after which the negation mentions
    only outer variables and the solver's branch expansion is exact for it.

    The view constraints also become the compact forms the paper displays,
    e.g. ``X >= 5 & not(Y = 6 & Y = X)`` becomes ``X >= 5 & not(X = 6)``.
    """
    parts = list(constraint.conjuncts())
    if not parts:
        return constraint
    # Per-node memo (the ``_scoped`` slot): scoping is pure and runs on
    # every satisfiability check, so a pointer read here is the common case.
    cached = constraint._scoped
    if cached is not None:
        return cached
    result = _scope_negations_uncached(constraint, parts)
    object.__setattr__(constraint, "_scoped", result)
    if result is not constraint and not isinstance(
        result, (TrueConstraint, FalseConstraint)
    ):
        # Scoping is idempotent: mark the result as its own scoped form.
        object.__setattr__(result, "_scoped", result)
    return result


def _scope_negations_uncached(
    constraint: Constraint, parts: List[Constraint]
) -> Constraint:
    from repro.constraints.ast import FALSE, NegatedConjunction, conjoin as _conjoin

    rewritten: List[Constraint] = []
    changed = False
    for index, part in enumerate(parts):
        if not isinstance(part, NegatedConjunction):
            rewritten.append(part)
            continue
        outside_vars: Set[Variable] = set()
        for other_index, other in enumerate(parts):
            if other_index != index:
                outside_vars.update(other.variables())
        inner = eliminate_variables(_conjoin(*part.parts), outside_vars)
        replacement: Constraint
        if isinstance(inner, TrueConstraint):
            # The negated conjunction holds for every witness of its local
            # variables, so its negation can never be satisfied.
            replacement = FALSE
        elif isinstance(inner, FalseConstraint):
            # The inner conjunction is unsatisfiable; its negation is trivial
            # and the conjunct can be dropped (conjoin removes TRUE).
            changed = True
            continue
        else:
            replacement = NegatedConjunction(tuple(inner.conjuncts()))
        if replacement != part:
            changed = True
        rewritten.append(replacement)
    if not changed:
        return constraint
    return _conjoin(*rewritten)


def _find_eliminable_equality(
    parts: List[Constraint], protected: Set[Variable]
) -> Optional[Tuple[int, Variable, Term]]:
    """Locate an equality conjunct that eliminates an auxiliary variable.

    Preference order: eliminate an auxiliary variable in favour of a constant
    or protected variable first, then auxiliary-to-auxiliary equalities.
    """
    fallback: Optional[Tuple[int, Variable, Term]] = None
    for index, part in enumerate(parts):
        if not isinstance(part, Comparison) or part.op != "=":
            continue
        left, right = part.left, part.right
        candidates: List[Tuple[Variable, Term]] = []
        if isinstance(left, Variable) and left not in protected:
            candidates.append((left, right))
        if isinstance(right, Variable) and right not in protected:
            candidates.append((right, left))
        for variable, replacement in candidates:
            if replacement == variable:
                continue
            if isinstance(replacement, Constant) or (
                isinstance(replacement, Variable) and replacement in protected
            ):
                return (index, variable, replacement)
            if fallback is None:
                fallback = (index, variable, replacement)
    return fallback


def _drop_trivial(parts: List[Constraint]) -> List[Constraint]:
    """Remove conjuncts of the form ``t = t`` produced by substitution."""
    kept: List[Constraint] = []
    for part in parts:
        if isinstance(part, Comparison) and part.op == "=" and part.left == part.right:
            continue
        kept.append(part)
    return kept
