"""repro -- a reproduction of "Efficient Maintenance of Materialized Mediated Views".

Lu, Moerkotte, Schü, Subrahmanian (SIGMOD 1995).

The library is organised bottom-up:

* :mod:`repro.constraints` -- the constraint language (terms, comparisons,
  DCA-atoms, negated conjunctions), a satisfiability solver, a simplifier
  and solution enumeration;
* :mod:`repro.datalog`     -- constrained Datalog: clauses, programs,
  materialized views with derivation supports, the ``T_P`` / ``W_P``
  fixpoint operators and a rule-text parser;
* :mod:`repro.reldb`       -- an in-memory relational engine standing in for
  the PARADOX / DBASE / INGRES sources HERMES integrates;
* :mod:`repro.domains`     -- the external-domain layer (arithmetic,
  relational, spatial, face-recognition, text, and time-versioned domains);
* :mod:`repro.mediator`    -- the HERMES-style mediator tying rules and
  domains together and exposing materialization and updates;
* :mod:`repro.maintenance` -- the paper's algorithms: Extended DRed,
  Straight Delete, constrained-atom insertion, external-change handling
  under ``T_P`` vs ``W_P``, plus recomputation and counting baselines;
* :mod:`repro.workloads`   -- the law-enforcement running example and the
  synthetic program families used by the benchmark harness.

Quickstart::

    from repro.mediator import Mediator

    mediator = Mediator.from_rules('''
        a(X) <- X >= 3.
        a(X) <- b(X).
        b(X) <- X >= 5.
        c(X) <- a(X).
    ''')
    view = mediator.materialize()
    view.delete("b(X) <- X = 6")          # Straight Delete (Algorithm 2)
    print(view.query("b", universe=range(10)))
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
