"""Safety / range-restriction analysis (analyzer pass 1).

The paper's maintenance algorithms assume every clause is *safe*: a head
variable must be bound by a positive body atom or pinned by a positive
constraint conjunct, otherwise the clause derives an unbounded set and the
fixpoint semantics ``[A(X̄) <- φ]`` of Section 2.3 is not a finite view.
A variable bound only under a ``not(...)`` does not count -- the negation's
quantification convention puts such variables *inside* the negation, so
they never reach the head.

Interval workloads legitimately bind head variables with ordering
comparisons alone (``iv(X) <- X >= 3``): the view entry stays intensional
and the solver handles it, so that pattern is reported as *info*, not as a
violation.
"""

from __future__ import annotations

from typing import List, Set

from repro.constraints.ast import Comparison, Membership, NegatedConjunction
from repro.constraints.terms import Variable
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase

from repro.analysis.report import Diagnostic


def _positive_binding_sets(clause: Clause) -> tuple:
    """Classify the clause's constraint variables by binding strength.

    Returns ``(strong, weak, negated)``: variables pinned by an equality or
    positive membership, variables only bounded by ordering/disequality
    comparisons, and variables occurring inside negated conjuncts or
    negative membership literals.
    """
    strong: Set[Variable] = set()
    weak: Set[Variable] = set()
    negated: Set[Variable] = set()
    for conjunct in clause.constraint.conjuncts():
        if isinstance(conjunct, Comparison):
            if conjunct.is_equality():
                strong.update(conjunct.variables())
            else:
                weak.update(conjunct.variables())
        elif isinstance(conjunct, Membership):
            if conjunct.positive:
                strong.update(conjunct.variables())
            else:
                negated.update(conjunct.variables())
        elif isinstance(conjunct, NegatedConjunction):
            negated.update(conjunct.variables())
    return strong, weak, negated


def run_safety_pass(program: ConstrainedDatabase) -> List[Diagnostic]:
    """Check range restriction for every clause of *program*."""
    diagnostics: List[Diagnostic] = []
    for clause in program:
        body_vars: Set[Variable] = set()
        for atom in clause.body:
            body_vars.update(atom.variables())
        strong, weak, negated = _positive_binding_sets(clause)
        head_vars = clause.head.variables()

        unsafe = sorted(
            variable.name
            for variable in head_vars
            if variable not in body_vars
            and variable not in strong
            and variable not in weak
        )
        if unsafe:
            diagnostics.append(
                Diagnostic(
                    severity="error",
                    code="unsafe-head-variable",
                    message=(
                        f"head variable(s) {', '.join(unsafe)} are bound by "
                        "no body atom and no positive constraint conjunct; "
                        "the clause derives an unbounded set"
                    ),
                    predicate=clause.predicate,
                    clause_number=clause.number,
                )
            )

        interval_only = sorted(
            variable.name
            for variable in head_vars
            if variable not in body_vars
            and variable not in strong
            and variable in weak
        )
        if interval_only:
            diagnostics.append(
                Diagnostic(
                    severity="info",
                    code="interval-bound-head-variable",
                    message=(
                        f"head variable(s) {', '.join(interval_only)} are "
                        "bound only by ordering comparisons; the entry stays "
                        "intensional (interval-constrained)"
                    ),
                    predicate=clause.predicate,
                    clause_number=clause.number,
                )
            )

        constraint_vars = clause.constraint.variables()
        constraint_only = sorted(
            variable.name
            for variable in constraint_vars
            if variable not in head_vars and variable not in body_vars
        )
        if constraint_only:
            diagnostics.append(
                Diagnostic(
                    severity="info",
                    code="constraint-only-variable",
                    message=(
                        f"variable(s) {', '.join(constraint_only)} occur only "
                        "in the constraint part (existentially quantified)"
                    ),
                    predicate=clause.predicate,
                    clause_number=clause.number,
                )
            )

        negation_scoped = sorted(
            variable.name
            for variable in negated
            if variable not in head_vars
            and variable not in body_vars
            and variable not in strong
            and variable not in weak
        )
        if negation_scoped:
            diagnostics.append(
                Diagnostic(
                    severity="info",
                    code="negation-scoped-variable",
                    message=(
                        f"variable(s) {', '.join(negation_scoped)} occur only "
                        "under not(...); they are quantified inside the "
                        "negation"
                    ),
                    predicate=clause.predicate,
                    clause_number=clause.number,
                )
            )
    return diagnostics
