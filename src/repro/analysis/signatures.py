"""Domain signature inference (analyzer pass 3).

Three static questions about the constraint side of a program:

* **External call typing** -- every ``domain:function(args)`` call site is
  collected; arity disagreements between call sites, and (when a
  :class:`~repro.domains.base.DomainRegistry` is supplied) unknown domains,
  unknown functions and declared-arity mismatches become diagnostics long
  before the solver would hit them mid-maintenance.
* **Per-position value kinds** -- a small lattice join (``number`` /
  ``string`` / ``other``, joined to ``mixed``) over what each clause pins
  or bounds a head position to.  A mixed position is legal but usually a
  workload bug, so it is reported as a warning.
* **Interval-index eligibility** -- a *may* analysis marking the
  ``(predicate, position)`` pairs whose entries can ever carry a numeric
  interval bound: head variables under ordering comparisons or
  interval-hooked membership guards, plus positions inherited through body
  joins (least fixpoint).  Positions outside the set are hopeless for the
  view's range postings, so probes there can skip the interval machinery;
  either misclassification only costs probe effort -- every probe path
  stays a superset of the joinable entries.

Statically-unsatisfiable constraint profiles (a ``false`` conjunct,
contradictory pins, an empty numeric interval) are flagged per clause:
such a clause can never derive anything, which is almost always a typo.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.constraints.ast import (
    Comparison,
    Constraint,
    DomainCall,
    FalseConstraint,
    Membership,
    NegatedConjunction,
)
from repro.constraints.terms import Constant, Variable
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.domains.base import DomainRegistry

from repro.analysis.report import Diagnostic


def _value_kind(value: object) -> str:
    """Collapse a constant's Python value onto the signature lattice."""
    if isinstance(value, bool):
        return "other"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return "other"


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class _ClauseProfile:
    """Per-clause facts extracted from the top-level positive conjuncts."""

    def __init__(self, clause: Clause) -> None:
        self.pins: Dict[Variable, Set[object]] = {}
        self.lowers: Dict[Variable, List[Tuple[float, bool]]] = {}
        self.uppers: Dict[Variable, List[Tuple[float, bool]]] = {}
        #: Variables that are the element of a positive membership literal,
        #: mapped to the calls guarding them.
        self.member_elements: Dict[Variable, List[DomainCall]] = {}
        self.has_false = False
        for conjunct in clause.constraint.conjuncts():
            if isinstance(conjunct, FalseConstraint):
                self.has_false = True
            elif isinstance(conjunct, Comparison):
                self._record_comparison(conjunct)
            elif isinstance(conjunct, Membership) and conjunct.positive:
                if isinstance(conjunct.element, Variable):
                    self.member_elements.setdefault(
                        conjunct.element, []
                    ).append(conjunct.call)

    def _record_comparison(self, comparison: Comparison) -> None:
        left, op, right = comparison.left, comparison.op, comparison.right
        if isinstance(left, Constant) and isinstance(right, Variable):
            left, op, right = right, comparison.flipped().op, left
        if not (isinstance(left, Variable) and isinstance(right, Constant)):
            return
        if op == "=":
            self.pins.setdefault(left, set()).add(right.value)
        elif op in (">", ">=") and _is_numeric(right.value):
            self.lowers.setdefault(left, []).append(
                (float(right.value), op == ">")
            )
        elif op in ("<", "<=") and _is_numeric(right.value):
            self.uppers.setdefault(left, []).append(
                (float(right.value), op == "<")
            )

    def numeric_interval(
        self, variable: Variable
    ) -> Optional[Tuple[float, bool, float, bool]]:
        """Tightest static interval for *variable* (``None``: unbounded)."""
        lowers = self.lowers.get(variable)
        uppers = self.uppers.get(variable)
        if not lowers and not uppers:
            return None
        low, low_strict = max(lowers) if lowers else (float("-inf"), False)
        high, high_strict = (
            min(uppers, key=lambda pair: (pair[0], not pair[1]))
            if uppers
            else (float("inf"), False)
        )
        return (low, low_strict, high, high_strict)

    def kind_of(self, variable: Variable) -> Optional[str]:
        """Value kind the clause forces on *variable*, if any."""
        pins = self.pins.get(variable)
        if pins:
            kinds = {_value_kind(value) for value in pins}
            return kinds.pop() if len(kinds) == 1 else "mixed"
        if variable in self.lowers or variable in self.uppers:
            return "number"
        return None


def _collect_calls(constraint: Constraint) -> List[DomainCall]:
    """Every domain call under *constraint*, negations included."""
    calls: List[DomainCall] = []
    for conjunct in constraint.conjuncts():
        if isinstance(conjunct, Membership):
            calls.append(conjunct.call)
        elif isinstance(conjunct, NegatedConjunction):
            for part in conjunct.parts:
                calls.extend(_collect_calls(part))
    return calls


def _check_unsatisfiable(
    clause: Clause, profile: _ClauseProfile
) -> Optional[str]:
    """Reason the clause's constraint is statically unsatisfiable, if any."""
    if profile.has_false:
        return "the constraint contains a false conjunct"
    for variable, values in profile.pins.items():
        if len(values) > 1:
            rendered = ", ".join(sorted(repr(v) for v in values))
            return (
                f"variable {variable.name} is pinned to conflicting "
                f"constants ({rendered})"
            )
    for variable in set(profile.lowers) | set(profile.uppers):
        interval = profile.numeric_interval(variable)
        if interval is None:
            continue
        low, low_strict, high, high_strict = interval
        if low > high or (low == high and (low_strict or high_strict)):
            return (
                f"variable {variable.name}'s ordering bounds describe an "
                f"empty interval"
            )
        pins = profile.pins.get(variable)
        if pins:
            (pin,) = (next(iter(pins)),) if len(pins) == 1 else (None,)
            if pin is not None and _is_numeric(pin):
                value = float(pin)
                below = value < low or (value == low and low_strict)
                above = value > high or (value == high and high_strict)
                if below or above:
                    return (
                        f"variable {variable.name} is pinned to {pin!r}, "
                        "outside its ordering bounds"
                    )
    return None


def _call_has_interval_hook(
    call: DomainCall, registry: Optional[DomainRegistry]
) -> bool:
    """Could ``index_interval`` bound this call?  Unknown registries: yes."""
    if registry is None:
        return True
    if not registry.has_domain(call.domain):
        return False
    domain = registry.domain(call.domain)
    if not domain.has_function(call.function):
        return False
    return domain.function(call.function).index_interval is not None


def infer_interval_positions(
    program: ConstrainedDatabase,
    registry: Optional[DomainRegistry] = None,
) -> FrozenSet[Tuple[str, int]]:
    """(predicate, position) pairs that *may* carry interval bounds.

    Least fixpoint: a head position is eligible when some clause bounds its
    variable with an ordering comparison or an interval-hooked membership
    guard, or inherits it from an already-eligible body position.  Body-only
    predicates (no defining clause) get every observed position -- their
    entries arrive externally with arbitrary constraints.
    """
    eligible: Set[Tuple[str, int]] = set()
    head_predicates = set(program.predicates())
    for clause in program:
        for atom in clause.body:
            if atom.predicate not in head_predicates:
                eligible.update(
                    (atom.predicate, index) for index in range(atom.arity)
                )
    profiles = [(clause, _ClauseProfile(clause)) for clause in program]
    changed = True
    while changed:
        changed = False
        for clause, profile in profiles:
            for index, arg in enumerate(clause.head.args):
                position = (clause.predicate, index)
                if position in eligible or not isinstance(arg, Variable):
                    continue
                if arg in profile.pins:
                    continue  # pinned to a point value, never an interval
                qualifies = (
                    arg in profile.lowers
                    or arg in profile.uppers
                    or any(
                        _call_has_interval_hook(call, registry)
                        for call in profile.member_elements.get(arg, ())
                    )
                    or any(
                        body_arg == arg
                        and (atom.predicate, body_index) in eligible
                        for atom in clause.body
                        for body_index, body_arg in enumerate(atom.args)
                    )
                )
                if qualifies:
                    eligible.add(position)
                    changed = True
    return frozenset(eligible)


def run_signature_pass(
    program: ConstrainedDatabase,
    registry: Optional[DomainRegistry] = None,
) -> Tuple[
    List[Diagnostic],
    Dict[Tuple[str, int], str],
    FrozenSet[Tuple[str, int]],
]:
    """Run the typing pass: diagnostics, signatures, interval positions."""
    diagnostics: List[Diagnostic] = []

    # -- external call sites -------------------------------------------
    arities: Dict[Tuple[str, str], Dict[int, int]] = {}
    call_sites: Dict[Tuple[str, str], Tuple[Optional[int], str]] = {}
    for clause in program:
        for call in _collect_calls(clause.constraint):
            key = (call.domain, call.function)
            arities.setdefault(key, {}).setdefault(len(call.args), 0)
            arities[key][len(call.args)] += 1
            call_sites.setdefault(key, (clause.number, clause.predicate))
    for key in sorted(arities):
        domain_name, function_name = key
        used = sorted(arities[key])
        clause_number, predicate = call_sites[key]
        if len(used) > 1:
            diagnostics.append(
                Diagnostic(
                    severity="error",
                    code="domain-arity-conflict",
                    message=(
                        f"{domain_name}:{function_name} is called with "
                        f"{used[0]} and {used[-1]} arguments by different "
                        "clauses; one of the call sites cannot be right"
                    ),
                    predicate=predicate,
                    clause_number=clause_number,
                )
            )
        if registry is None:
            continue
        if not registry.has_domain(domain_name):
            diagnostics.append(
                Diagnostic(
                    severity="error",
                    code="unknown-domain",
                    message=(
                        f"domain {domain_name!r} is not registered "
                        f"(registered: {list(registry.domain_names())})"
                    ),
                    predicate=predicate,
                    clause_number=clause_number,
                )
            )
            continue
        domain = registry.domain(domain_name)
        if not domain.has_function(function_name):
            diagnostics.append(
                Diagnostic(
                    severity="error",
                    code="unknown-function",
                    message=(
                        f"domain {domain_name!r} has no function "
                        f"{function_name!r} "
                        f"(available: {list(domain.function_names())})"
                    ),
                    predicate=predicate,
                    clause_number=clause_number,
                )
            )
            continue
        declared = domain.function(function_name).arity
        if declared is not None:
            wrong = [arity for arity in used if arity != declared]
            if wrong:
                diagnostics.append(
                    Diagnostic(
                        severity="error",
                        code="domain-arity-mismatch",
                        message=(
                            f"{domain_name}:{function_name} declares arity "
                            f"{declared} but is called with {wrong[0]} "
                            "arguments"
                        ),
                        predicate=predicate,
                        clause_number=clause_number,
                    )
                )

    # -- per-clause satisfiability + per-position kinds ----------------
    signatures: Dict[Tuple[str, int], str] = {}
    for clause in program:
        profile = _ClauseProfile(clause)
        reason = _check_unsatisfiable(clause, profile)
        if reason is not None:
            diagnostics.append(
                Diagnostic(
                    severity="warning",
                    code="unsatisfiable-constraint",
                    message=f"the clause can never derive anything: {reason}",
                    predicate=clause.predicate,
                    clause_number=clause.number,
                )
            )
        for index, arg in enumerate(clause.head.args):
            if isinstance(arg, Constant):
                kind: Optional[str] = _value_kind(arg.value)
            else:
                kind = profile.kind_of(arg)
            if kind is None:
                continue
            position = (clause.predicate, index)
            known = signatures.get(position)
            if known is None:
                signatures[position] = kind
            elif known != kind:
                signatures[position] = "mixed"
    for position in sorted(signatures):
        if signatures[position] == "mixed":
            predicate, index = position
            diagnostics.append(
                Diagnostic(
                    severity="warning",
                    code="type-conflict",
                    message=(
                        f"argument {index} of {predicate} is pinned to "
                        "different value kinds by different clauses"
                    ),
                    predicate=predicate,
                )
            )

    interval_positions = infer_interval_positions(program, registry)
    return diagnostics, signatures, interval_positions
