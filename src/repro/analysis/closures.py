"""Static write/read-closure inference (analyzer pass 4).

An update to predicate ``p`` -- insertion or deletion alike, both
Algorithm 2 (StDel) and Algorithm 3 (insertion) rewrite along the same
body->head edges -- can only *write* predicates in ``p``'s upward closure
of the dependency graph.  Rebuilding a parent entry additionally *reads*
the body predicates of clauses whose head lies in the closure (StDel's
premise re-fetch), so the read closure is the write closure plus that body
frontier.  Both tables are total over the program's predicates, computed
once, and adopted by :class:`~repro.stream.strata.PredicateStrata` as the
precomputed source of truth.

``closure_groups`` assigns every predicate the id of its connected
component in the *undirected* dependency graph.  Every upward closure is
contained in one component, so two closures can only intersect when their
sources share a group id -- the scheduler's publish-time disjointness
check reduces to comparing group ids.

External-notice closures cover the third update kind: a source change in
domain ``d`` can disturb exactly the clauses whose constraints call ``d``,
i.e. the union of their heads' write closures.  (Under ``W_P``
materialization the cone is empty by Theorem 4 -- the table describes
``T_P``-mode maintenance.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.constraints.ast import Constraint, Membership, NegatedConjunction
from repro.datalog.program import ConstrainedDatabase


def _upward_closure(
    predicate: str, edges: Dict[str, Tuple[str, ...]]
) -> FrozenSet[str]:
    seen = {predicate}
    frontier = [predicate]
    while frontier:
        node = frontier.pop()
        for successor in edges.get(node, ()):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


def _domains_called(constraint: Constraint) -> Set[str]:
    found: Set[str] = set()
    for conjunct in constraint.conjuncts():
        if isinstance(conjunct, Membership):
            found.add(conjunct.call.domain)
        elif isinstance(conjunct, NegatedConjunction):
            for part in conjunct.parts:
                found.update(_domains_called(part))
    return found


def compute_closures(
    program: ConstrainedDatabase,
) -> Tuple[
    Dict[str, FrozenSet[str]],
    Dict[str, FrozenSet[str]],
    Dict[str, int],
    Dict[str, FrozenSet[str]],
]:
    """Return ``(write_closures, read_closures, closure_groups,
    external_closures)``, each total over the program's predicates."""
    edges = program.predicate_dependency_edges()
    write_closures = {
        predicate: _upward_closure(predicate, edges) for predicate in edges
    }

    read_closures: Dict[str, FrozenSet[str]] = {}
    for predicate, closure in write_closures.items():
        frontier: Set[str] = set(closure)
        for head in closure:
            for clause in program.clauses_for(head):
                frontier.update(clause.body_predicates())
        read_closures[predicate] = frozenset(frontier)

    # Undirected connected components via union-find; group ids are dense
    # and deterministic (assigned in sorted order of each group's minimum).
    parent: Dict[str, str] = {predicate: predicate for predicate in edges}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for predicate, heads in edges.items():
        for head in heads:
            root_a, root_b = find(predicate), find(head)
            if root_a != root_b:
                if root_b < root_a:
                    root_a, root_b = root_b, root_a
                parent[root_b] = root_a
    members: Dict[str, list] = {}
    for predicate in edges:
        members.setdefault(find(predicate), []).append(predicate)
    closure_groups: Dict[str, int] = {}
    for group_id, root in enumerate(sorted(members, key=lambda r: min(members[r]))):
        for predicate in members[root]:
            closure_groups[predicate] = group_id

    external_closures: Dict[str, FrozenSet[str]] = {}
    touched: Dict[str, Set[str]] = {}
    for clause in program:
        for domain in _domains_called(clause.constraint):
            touched.setdefault(domain, set()).add(clause.predicate)
    for domain, heads in touched.items():
        cone: Set[str] = set()
        for head in heads:
            cone.update(write_closures[head])
        external_closures[domain] = frozenset(cone)

    return write_closures, read_closures, closure_groups, external_closures
