"""Stratification and negation analysis (analyzer pass 2).

The clause language keeps negation at the *constraint* level: body atoms
are always positive, and ``not(...)`` conjuncts are either deletion-rewrite
residue (pure comparisons -- the ``not(δ)`` of Algorithm 1/2) or negated
external guards (a :class:`~repro.constraints.ast.Membership` under the
negation).  Comparison-only negations are harmless in recursion -- they
mention no derived predicate.  A negated external guard on a *recursive*
clause is the constraint-level analogue of negation through recursion: the
guard's value can flip while the clause's own SCC is still being derived,
so the duplicate-semantics fixpoint of Theorem 1 is no longer monotone on
that component.  The analyzer rejects it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.constraints.ast import Constraint, Membership, NegatedConjunction
from repro.datalog.program import ConstrainedDatabase

from repro.analysis.report import Diagnostic


def _contains_membership(constraint: Constraint) -> bool:
    """True when a Membership literal occurs anywhere under *constraint*."""
    if isinstance(constraint, Membership):
        return True
    if isinstance(constraint, NegatedConjunction):
        return any(_contains_membership(part) for part in constraint.parts)
    return False


def run_stratification_pass(
    program: ConstrainedDatabase,
    components: Tuple[Tuple[str, ...], ...],
    stratum: Dict[str, int],
) -> Tuple[List[Diagnostic], int, int]:
    """Classify every negated conjunct; reject unstratified negation.

    Returns ``(diagnostics, not_delta_conjuncts, negated_guard_conjuncts)``.
    """
    diagnostics: List[Diagnostic] = []
    not_delta = 0
    negated_guards = 0
    for clause in program:
        head_stratum = stratum.get(clause.predicate)
        # Recursive = some body atom lives in the head's SCC *and* that SCC
        # is genuinely cyclic (self-edge, or more than one member).
        recursive = False
        if head_stratum is not None:
            for atom in clause.body:
                if stratum.get(atom.predicate) != head_stratum:
                    continue
                if (
                    atom.predicate == clause.predicate
                    or len(components[head_stratum]) > 1
                ):
                    recursive = True
                    break
        for conjunct in clause.constraint.conjuncts():
            negated_guard = False
            if isinstance(conjunct, Membership) and not conjunct.positive:
                negated_guard = True
            elif isinstance(conjunct, NegatedConjunction):
                if _contains_membership(conjunct):
                    negated_guard = True
                else:
                    not_delta += 1
            if not negated_guard:
                continue
            negated_guards += 1
            if recursive:
                diagnostics.append(
                    Diagnostic(
                        severity="error",
                        code="unstratified-negation",
                        message=(
                            "recursive clause carries a negated external "
                            f"guard ({conjunct}); the guard can flip while "
                            f"the SCC {components[head_stratum]} is still "
                            "being derived, so the fixpoint is not monotone "
                            "on this stratum"
                        ),
                        predicate=clause.predicate,
                        clause_number=clause.number,
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        severity="info",
                        code="negated-external-guard",
                        message=(
                            f"clause filters through a negated guard "
                            f"({conjunct}); evaluated once per derivation, "
                            "outside any recursion"
                        ),
                        predicate=clause.predicate,
                        clause_number=clause.number,
                    )
                )
    return diagnostics, not_delta, negated_guards
