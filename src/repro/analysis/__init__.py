"""Static analysis of mediated programs.

Run :func:`analyze_program` over a
:class:`~repro.datalog.program.ConstrainedDatabase` (optionally with the
mediator's :class:`~repro.domains.base.DomainRegistry`) to obtain a
:class:`ProgramReport`: safety/range-restriction diagnostics,
stratification and negation classification, domain signature inference,
and the precomputed write/read closures the stream scheduler adopts.
"""

from repro.analysis.analyzer import analyze_program
from repro.analysis.report import Diagnostic, ProgramReport

__all__ = ["analyze_program", "Diagnostic", "ProgramReport"]
