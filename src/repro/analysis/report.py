"""Diagnostics and the program report produced by the static analyzer.

A :class:`ProgramReport` is the one-shot summary of everything the analyzer
can decide about a mediated program *before* any maintenance runs: severity
graded diagnostics (safety, stratification, domain typing), the predicate
dependency structure (SCC condensation, strata, upward closures), and the
per-position facts the runtime consumes (interval-index eligibility,
closure groups for the disjointness table lookup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, graded by severity and sourced to a clause."""

    severity: str
    code: str
    message: str
    predicate: Optional[str] = None
    clause_number: Optional[int] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity: {self.severity!r}")

    def render(self) -> str:
        """Human-readable one-liner, e.g. for CLI output."""
        where = []
        if self.clause_number is not None:
            where.append(f"clause {self.clause_number}")
        if self.predicate is not None:
            where.append(self.predicate)
        location = f" ({', '.join(where)})" if where else ""
        return f"{self.severity}[{self.code}]{location}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "predicate": self.predicate,
            "clause_number": self.clause_number,
        }


@dataclass(frozen=True)
class ProgramReport:
    """Everything the static analyzer derived from one program.

    The closure tables are total over the program's predicates (head *or*
    body occurrences) and are the precomputed source of truth the stream
    scheduler adopts; ``closure_groups`` assigns every predicate the id of
    its connected component in the (undirected) dependency graph -- two
    write closures can only intersect when their source predicates share a
    group, which turns the scheduler's publish-time disjointness check into
    a table lookup.
    """

    #: All findings, in pass order (safety, stratification, signatures).
    diagnostics: Tuple[Diagnostic, ...]
    #: Every predicate mentioned anywhere, sorted.
    predicates: Tuple[str, ...]
    #: SCCs of the dependency graph, bottom-up (stratum index = position).
    components: Tuple[Tuple[str, ...], ...]
    #: Predicate -> stratum (component) index.
    stratum: Mapping[str, int]
    #: Predicate -> upward closure (predicates an update can disturb).
    #: Identical for insertions and deletions: both propagate along the
    #: same body->head edges (Algorithms 2 and 3 rewrite the same cone).
    write_closures: Mapping[str, FrozenSet[str]]
    #: Predicate -> write closure plus the body predicates of every clause
    #: whose head lies in the closure (the entries StDel may *read* while
    #: rebuilding parents, without ever rewriting them).
    read_closures: Mapping[str, FrozenSet[str]]
    #: Predicate -> connected-component id (undirected dependency graph).
    closure_groups: Mapping[str, int]
    #: Domain name -> closure of every predicate whose clauses call into
    #: the domain (the external-notice update kind of the paper's W_P).
    external_closures: Mapping[str, FrozenSet[str]]
    #: (predicate, position) -> inferred value kind ("number", "string",
    #: "other", or "mixed" when clauses disagree).
    signatures: Mapping[Tuple[str, int], str]
    #: (predicate, position) pairs whose entries can carry numeric interval
    #: bounds in every clause -- range postings are useful there; probing
    #: other positions through the interval index is hopeless.
    interval_positions: FrozenSet[Tuple[str, int]]
    #: How many ``not(...)`` conjuncts are benign deletion-rewrite residue
    #: (pure comparisons) vs. negated external guards.
    not_delta_conjuncts: int = 0
    negated_guard_conjuncts: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Severity views
    # ------------------------------------------------------------------
    def errors(self) -> Tuple[Diagnostic, ...]:
        """All error-severity diagnostics."""
        return tuple(d for d in self.diagnostics if d.severity == "error")

    def warnings(self) -> Tuple[Diagnostic, ...]:
        """All warning-severity diagnostics."""
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    def infos(self) -> Tuple[Diagnostic, ...]:
        """All info-severity diagnostics."""
        return tuple(d for d in self.diagnostics if d.severity == "info")

    def ok(self, strict: bool = False) -> bool:
        """True when the program passed (no errors; no warnings if strict)."""
        if self.errors():
            return False
        if strict and self.warnings():
            return False
        return True

    def severity_counts(self) -> Dict[str, int]:
        """``{"error": n, "warning": n, "info": n}``."""
        counts = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return counts

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (sorted, deterministic)."""
        return {
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "severity_counts": self.severity_counts(),
            "predicates": list(self.predicates),
            "components": [list(component) for component in self.components],
            "stratum": {p: self.stratum[p] for p in sorted(self.stratum)},
            "write_closures": {
                p: sorted(self.write_closures[p])
                for p in sorted(self.write_closures)
            },
            "read_closures": {
                p: sorted(self.read_closures[p])
                for p in sorted(self.read_closures)
            },
            "closure_groups": {
                p: self.closure_groups[p] for p in sorted(self.closure_groups)
            },
            "external_closures": {
                d: sorted(self.external_closures[d])
                for d in sorted(self.external_closures)
            },
            "signatures": {
                f"{predicate}/{position}": kind
                for (predicate, position), kind in sorted(self.signatures.items())
            },
            "interval_positions": [
                f"{predicate}/{position}"
                for predicate, position in sorted(self.interval_positions)
            ],
            "not_delta_conjuncts": self.not_delta_conjuncts,
            "negated_guard_conjuncts": self.negated_guard_conjuncts,
        }

    def summary(self) -> str:
        """One paragraph for CLI output."""
        counts = self.severity_counts()
        closure_sizes = [len(c) for c in self.write_closures.values()]
        mean_closure = (
            sum(closure_sizes) / len(closure_sizes) if closure_sizes else 0.0
        )
        return (
            f"{len(self.predicates)} predicates, "
            f"{len(self.components)} strata, "
            f"{len(set(self.closure_groups.values()))} closure groups; "
            f"mean write closure {mean_closure:.1f}, "
            f"{len(self.interval_positions)} interval-eligible positions; "
            f"{counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} infos"
        )
