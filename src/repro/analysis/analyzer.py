"""The analyzer driver: run every pass once, assemble the ProgramReport.

``analyze_program`` is deliberately cheap -- linear passes over the clause
set plus one SCC/closure computation -- so callers can afford to run it on
every mediator build (``mediator/builder.py`` does, failing fast on safety
and stratification errors) and on every scheduler construction (the
precomputed closures replace the runtime dependency walks).
"""

from __future__ import annotations

from typing import Optional

from repro.datalog.program import ConstrainedDatabase
from repro.domains.base import DomainRegistry

from repro.analysis.closures import compute_closures
from repro.analysis.report import ProgramReport
from repro.analysis.safety import run_safety_pass
from repro.analysis.signatures import run_signature_pass
from repro.analysis.stratification import run_stratification_pass


def analyze_program(
    program: ConstrainedDatabase,
    registry: Optional[DomainRegistry] = None,
) -> ProgramReport:
    """Statically analyze *program* (optionally against *registry*).

    Without a registry the domain-dependent checks (unknown domains /
    functions, declared arities, ``index_interval`` hook presence) are
    skipped or answered conservatively; everything else is registry-free.
    """
    components = program.predicate_sccs()
    stratum = {
        predicate: index
        for index, component in enumerate(components)
        for predicate in component
    }

    diagnostics = list(run_safety_pass(program))
    strat_diagnostics, not_delta, negated_guards = run_stratification_pass(
        program, components, stratum
    )
    diagnostics.extend(strat_diagnostics)
    signature_diagnostics, signatures, interval_positions = run_signature_pass(
        program, registry
    )
    diagnostics.extend(signature_diagnostics)

    write_closures, read_closures, closure_groups, external_closures = (
        compute_closures(program)
    )

    return ProgramReport(
        diagnostics=tuple(diagnostics),
        predicates=tuple(sorted(write_closures)),
        components=components,
        stratum=stratum,
        write_closures=write_closures,
        read_closures=read_closures,
        closure_groups=closure_groups,
        external_closures=external_closures,
        signatures=signatures,
        interval_positions=interval_positions,
        not_delta_conjuncts=not_delta,
        negated_guard_conjuncts=negated_guards,
    )
