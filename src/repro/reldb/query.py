"""Relational algebra helpers on top of :class:`~repro.reldb.table.Table`.

The mediator's domain adapters mostly need equality selection, but the
examples and workload generators also join and aggregate base data when
*building* scenarios, so a small composable query layer is provided here.
All operators consume and produce tuples of :class:`Row`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.errors import RelationalError
from repro.reldb.rows import Row


def select(rows: Iterable[Row], predicate: Callable[[Row], bool]) -> Tuple[Row, ...]:
    """Rows satisfying *predicate*."""
    return tuple(row for row in rows if predicate(row))


def select_eq(rows: Iterable[Row], column: str, value: object) -> Tuple[Row, ...]:
    """Rows whose *column* equals *value*."""
    return tuple(row for row in rows if row[column] == value)


def project(rows: Iterable[Row], columns: Sequence[str]) -> Tuple[Row, ...]:
    """Distinct projections of *rows* onto *columns*."""
    seen = set()
    result: List[Row] = []
    for row in rows:
        projected = row.projected(columns)
        key = projected.values_tuple()
        if key not in seen:
            seen.add(key)
            result.append(projected)
    return tuple(result)


def rename(rows: Iterable[Row], mapping: Dict[str, str]) -> Tuple[Row, ...]:
    """Rename columns according to *mapping* (old name -> new name)."""
    renamed: List[Row] = []
    for row in rows:
        data = {}
        for column in row.columns:
            data[mapping.get(column, column)] = row[column]
        renamed.append(Row(data))
    return tuple(renamed)


def natural_join(left: Iterable[Row], right: Iterable[Row]) -> Tuple[Row, ...]:
    """Hash join on the columns shared by both inputs.

    When the inputs share no columns this degenerates to a cross product.
    """
    left_rows = tuple(left)
    right_rows = tuple(right)
    if not left_rows or not right_rows:
        return ()
    shared = tuple(
        column for column in left_rows[0].columns if column in right_rows[0].columns
    )
    if not shared:
        return tuple(
            _merge(l, r) for l in left_rows for r in right_rows
        )
    buckets: Dict[Tuple[object, ...], List[Row]] = defaultdict(list)
    for row in right_rows:
        buckets[tuple(row[column] for column in shared)].append(row)
    joined: List[Row] = []
    for row in left_rows:
        key = tuple(row[column] for column in shared)
        for match in buckets.get(key, ()):
            joined.append(_merge(row, match))
    return tuple(joined)


def equi_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_column: str,
    right_column: str,
) -> Tuple[Row, ...]:
    """Hash join on one explicit column pair."""
    right_rows = tuple(right)
    buckets: Dict[object, List[Row]] = defaultdict(list)
    for row in right_rows:
        buckets[row[right_column]].append(row)
    joined: List[Row] = []
    for row in left:
        for match in buckets.get(row[left_column], ()):
            joined.append(_merge(row, match))
    return tuple(joined)


def group_count(rows: Iterable[Row], columns: Sequence[str]) -> Dict[Tuple[object, ...], int]:
    """Count rows per distinct combination of *columns*."""
    counts: Dict[Tuple[object, ...], int] = defaultdict(int)
    for row in rows:
        counts[tuple(row[column] for column in columns)] += 1
    return dict(counts)


def order_by(
    rows: Iterable[Row], columns: Sequence[str], descending: bool = False
) -> Tuple[Row, ...]:
    """Sort rows by the given columns."""
    return tuple(
        sorted(
            rows,
            key=lambda row: tuple(_sort_key(row[column]) for column in columns),
            reverse=descending,
        )
    )


def column_values(rows: Iterable[Row], column: str) -> Tuple[object, ...]:
    """Values of one column across all rows (duplicates preserved)."""
    return tuple(row[column] for row in rows)


def _merge(left: Row, right: Row) -> Row:
    data = left.as_dict()
    for column in right.columns:
        if column in data:
            if data[column] != right[column]:
                raise RelationalError(
                    f"conflicting values for shared column {column!r} in join"
                )
            continue
        data[column] = right[column]
    return Row(data)


def _sort_key(value: object) -> Tuple[str, str]:
    return (type(value).__name__, repr(value))
