"""Table schemas for the in-memory relational engine.

The engine stands in for the PARADOX / DBASE / INGRES systems that HERMES
integrates.  Rows are plain tuples; a :class:`Schema` names and (optionally)
types the columns so that rows can also be addressed by field name, which is
what the paper's mediator rules do (``A.streetnum``, ``"name"`` selections).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Type

from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """One column: a name and an optional expected Python type."""

    name: str
    type: Optional[Type] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name: {self.name!r}")

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` if *value* does not fit the column."""
        if self.type is None or value is None:
            return
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            return
        if not isinstance(value, self.type):
            raise SchemaError(
                f"column {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__}: {value!r}"
            )

    def __str__(self) -> str:
        if self.type is None:
            return self.name
        return f"{self.name}:{self.type.__name__}"


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns."""

    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")
        if not self.columns:
            raise SchemaError("a schema needs at least one column")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *names: str) -> "Schema":
        """Build an untyped schema from column names."""
        return cls(tuple(Column(name) for name in names))

    @classmethod
    def typed(cls, **types: Type) -> "Schema":
        """Build a typed schema from ``name=type`` keyword arguments."""
        return cls(tuple(Column(name, column_type) for name, column_type in types.items()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Column names in schema order."""
        return tuple(column.name for column in self.columns)

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def index_of(self, name: str) -> int:
        """Position of a column; raises :class:`SchemaError` when unknown."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(f"unknown column: {name!r} (have {list(self.names)})")

    def has_column(self, name: str) -> bool:
        """True when a column with this name exists."""
        return any(column.name == name for column in self.columns)

    # ------------------------------------------------------------------
    # Row handling
    # ------------------------------------------------------------------
    def coerce_row(self, row: object) -> Tuple[object, ...]:
        """Validate a tuple/sequence/mapping row and return it as a tuple."""
        if isinstance(row, Mapping):
            missing = [name for name in self.names if name not in row]
            if missing:
                raise SchemaError(f"row is missing columns {missing}")
            extra = [name for name in row if name not in self.names]
            if extra:
                raise SchemaError(f"row has unknown columns {extra}")
            values = tuple(row[name] for name in self.names)
        else:
            values = tuple(row)  # type: ignore[arg-type]
            if len(values) != self.arity:
                raise SchemaError(
                    f"row has {len(values)} values, schema has {self.arity} columns"
                )
        for column, value in zip(self.columns, values):
            column.validate(value)
        return values

    def row_to_dict(self, row: Sequence[object]) -> Dict[str, object]:
        """Return a row as a column-name keyed dictionary."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row has {len(row)} values, schema has {self.arity} columns"
            )
        return dict(zip(self.names, row))

    def project(self, names: Sequence[str]) -> "Schema":
        """Return the sub-schema containing only *names* (in that order)."""
        return Schema(tuple(self.columns[self.index_of(name)] for name in names))

    def __str__(self) -> str:
        return "(" + ", ".join(str(column) for column in self.columns) + ")"
