"""Database catalog of the in-memory relational engine."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.errors import RelationalError, UnknownTableError
from repro.reldb.changelog import ChangeLog
from repro.reldb.schema import Schema
from repro.reldb.table import Table


class Database:
    """A named collection of tables sharing one change log.

    One :class:`Database` instance models one of the external relational
    sources the mediator integrates (a PARADOX database, a DBASE file, an
    INGRES instance, ...).  The shared change log makes the whole source
    diffable between versions, which is what Section 4's function-delta view
    of source updates needs.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise RelationalError("databases need a name")
        self._name = name
        self._tables: Dict[str, Table] = {}
        self._change_log = ChangeLog()

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Database name (also used as default domain name)."""
        return self._name

    @property
    def change_log(self) -> ChangeLog:
        """The change log shared by every table of this database."""
        return self._change_log

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create a new table; raises when the name is taken."""
        if name in self._tables:
            raise RelationalError(f"table already exists: {name!r}")
        table = Table(name, schema, change_log=self._change_log)
        self._tables[name] = table
        return table

    def create_table_from_rows(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[object] = (),
    ) -> Table:
        """Create an untyped table and bulk-load *rows* into it."""
        table = self.create_table(name, Schema.of(*columns))
        table.insert_many(rows)
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise UnknownTableError(f"no such table: {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Return a table by name; raises :class:`UnknownTableError`."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise UnknownTableError(
                f"database {self._name!r} has no table {name!r}"
            ) from exc

    def has_table(self, name: str) -> bool:
        """True when a table with this name exists."""
        return name in self._tables

    def table_names(self) -> Tuple[str, ...]:
        """All table names, sorted."""
        return tuple(sorted(self._tables))

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"Database({self._name!r}, tables={list(self.table_names())})"

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    def version(self) -> int:
        """A database-wide version: the sum of all table versions."""
        return sum(table.version for table in self._tables.values())

    def snapshot_versions(self) -> Mapping[str, int]:
        """Per-table version counters (for debugging and tests)."""
        return {name: table.version for name, table in self._tables.items()}

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    def insert(self, table_name: str, row: object) -> None:
        """Insert one row into a table."""
        self.table(table_name).insert(row)

    def insert_many(self, table_name: str, rows: Iterable[object]) -> int:
        """Insert several rows into a table."""
        return self.table(table_name).insert_many(rows)

    def select_eq(self, table_name: str, column: str, value: object):
        """Equality selection on a table (the mediator's main access path)."""
        return self.table(table_name).select_eq(column, value)
