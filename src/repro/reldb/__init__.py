"""In-memory relational engine.

Simulates the relational sources HERMES integrates (PARADOX, DBASE, INGRES):
typed tables with hash indexes, a database catalog, change logging for
version diffs, and a small relational-algebra query layer.
"""

from repro.reldb.changelog import Change, ChangeKind, ChangeLog
from repro.reldb.database import Database
from repro.reldb.index import HashIndex
from repro.reldb.query import (
    column_values,
    equi_join,
    group_count,
    natural_join,
    order_by,
    project,
    rename,
    select,
    select_eq,
)
from repro.reldb.rows import Row
from repro.reldb.schema import Column, Schema
from repro.reldb.table import Table

__all__ = [
    "Change",
    "ChangeKind",
    "ChangeLog",
    "Column",
    "Database",
    "HashIndex",
    "Row",
    "Schema",
    "Table",
    "column_values",
    "equi_join",
    "group_count",
    "natural_join",
    "order_by",
    "project",
    "rename",
    "select",
    "select_eq",
]
