"""Row values returned by the relational engine and by domain calls.

Rows must be *hashable* because DCA result sets are sets of values and
because constrained-view instances are compared as sets of ground tuples.
:class:`Row` is an immutable, ordered mapping from column names to values
with attribute-style access (``row.origin``) mirroring the record field
notation used by the paper's mediator rules (``P1.origin``).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Sequence, Tuple

from repro.errors import SchemaError, UnknownColumnError


class Row(Mapping[str, object]):
    """An immutable named tuple of column values."""

    __slots__ = ("_names", "_values")

    def __init__(self, values: Mapping[str, object]) -> None:
        names = tuple(values.keys())
        for name in names:
            if not isinstance(name, str) or not name:
                raise SchemaError(f"invalid column name in row: {name!r}")
        object.__setattr__(self, "_names", names)
        object.__setattr__(self, "_values", tuple(values[name] for name in names))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pair_sequence(cls, pairs: Sequence[Tuple[str, object]]) -> "Row":
        """Build a row from an ordered sequence of (name, value) pairs."""
        return cls(dict(pairs))

    @classmethod
    def from_values(cls, names: Sequence[str], values: Sequence[object]) -> "Row":
        """Build a row by zipping column names with values."""
        if len(names) != len(values):
            raise SchemaError(
                f"row has {len(values)} values for {len(names)} columns"
            )
        return cls(dict(zip(names, values)))

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, key: str) -> object:
        try:
            return self._values[self._names.index(key)]
        except ValueError as exc:
            raise UnknownColumnError(f"row has no column {key!r}") from exc

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    # ------------------------------------------------------------------
    # Attribute access and identity
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> object:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self[name]
        except UnknownColumnError as exc:
            raise AttributeError(name) from exc

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Row objects are immutable")

    def __hash__(self) -> int:
        return hash((self._names, self._values))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._names == other._names and self._values == other._values
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in zip(self._names, self._values))
        return f"Row({inner})"

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        """Column names in row order."""
        return self._names

    def values_tuple(self) -> Tuple[object, ...]:
        """The row's values as a plain tuple (schema order)."""
        return self._values

    def as_dict(self) -> Dict[str, object]:
        """A mutable dictionary copy of the row."""
        return dict(zip(self._names, self._values))

    def replaced(self, **updates: object) -> "Row":
        """Return a copy with some columns replaced."""
        data = self.as_dict()
        for key, value in updates.items():
            if key not in data:
                raise UnknownColumnError(f"row has no column {key!r}")
            data[key] = value
        return Row(data)

    def projected(self, names: Sequence[str]) -> "Row":
        """Return a row containing only the named columns (in that order)."""
        return Row({name: self[name] for name in names})
