"""Hash indexes for the in-memory relational engine.

Every ``select_eq`` issued by a mediator rule (the dominant access path in
the paper's examples) hits an equality index; the engine builds one lazily
per column the first time that column is used as a selection key.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Set

from repro.errors import RelationalError


class HashIndex:
    """A single-column equality index mapping values to row identifiers."""

    def __init__(self, column: str) -> None:
        if not column:
            raise RelationalError("index needs a column name")
        self._column = column
        self._buckets: Dict[object, Set[int]] = defaultdict(set)

    @property
    def column(self) -> str:
        """Name of the indexed column."""
        return self._column

    def add(self, value: object, row_id: int) -> None:
        """Register a row id under a value."""
        self._buckets[_key(value)].add(row_id)

    def remove(self, value: object, row_id: int) -> None:
        """Drop a row id from a value's bucket (no-op when absent)."""
        bucket = self._buckets.get(_key(value))
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[_key(value)]

    def lookup(self, value: object) -> Set[int]:
        """Row ids whose indexed column equals *value*."""
        return set(self._buckets.get(_key(value), ()))

    def values(self) -> Iterator[object]:
        """Distinct indexed values."""
        return iter(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def rebuild(self, rows: Iterable[object], column_index: int) -> None:
        """Rebuild from scratch given the table's live rows.

        *rows* is an iterable of ``(row_id, values)`` pairs and
        *column_index* the position of the indexed column in each tuple.
        """
        self._buckets.clear()
        for row_id, values in rows:
            self.add(values[column_index], row_id)


def _key(value: object) -> object:
    """Normalise values so that 1 and 1.0 land in the same bucket."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
