"""Tables of the in-memory relational engine."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import RelationalError, SchemaError
from repro.reldb.changelog import Change, ChangeKind, ChangeLog
from repro.reldb.index import HashIndex
from repro.reldb.rows import Row
from repro.reldb.schema import Schema


class Table:
    """A named relation with a schema, lazy hash indexes and versioning.

    Rows are stored as tuples keyed by a monotonically increasing row id so
    deletions do not invalidate index entries for other rows.  Every
    modification bumps the table version and (when a change log is attached)
    records the change, which is what the Section-4 delta computation
    (``f+`` / ``f-``) consumes.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        change_log: Optional[ChangeLog] = None,
    ) -> None:
        if not name:
            raise RelationalError("tables need a name")
        self._name = name
        self._schema = schema
        self._rows: Dict[int, Tuple[object, ...]] = {}
        self._next_row_id = 1
        self._indexes: Dict[str, HashIndex] = {}
        self._version = 0
        self._change_log = change_log

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Table name."""
        return self._name

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def version(self) -> int:
        """Version counter, bumped by every modification."""
        return self._version

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def rows(self) -> Tuple[Row, ...]:
        """All rows as :class:`Row` objects (insertion order)."""
        return tuple(
            Row.from_values(self._schema.names, values)
            for _, values in sorted(self._rows.items())
        )

    def row_tuples(self) -> Tuple[Tuple[object, ...], ...]:
        """All rows as plain tuples (insertion order)."""
        return tuple(values for _, values in sorted(self._rows.items()))

    def contains_row(self, row: object) -> bool:
        """True when an identical row is present."""
        values = self._schema.coerce_row(row)
        return values in self._rows.values()

    # ------------------------------------------------------------------
    # Modification
    # ------------------------------------------------------------------
    def insert(self, row: object) -> Row:
        """Insert one row (tuple, sequence or mapping); returns it as a Row."""
        values = self._schema.coerce_row(row)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = values
        for index in self._indexes.values():
            position = self._schema.index_of(index.column)
            index.add(values[position], row_id)
        self._bump(ChangeKind.INSERT, values)
        return Row.from_values(self._schema.names, values)

    def insert_many(self, rows: Iterable[object]) -> int:
        """Insert several rows; returns how many were inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete every row satisfying *predicate*; returns the count."""
        doomed = [
            (row_id, values)
            for row_id, values in self._rows.items()
            if predicate(Row.from_values(self._schema.names, values))
        ]
        for row_id, values in doomed:
            self._remove_row(row_id, values)
        return len(doomed)

    def delete_eq(self, column: str, value: object) -> int:
        """Delete rows whose *column* equals *value*; returns the count."""
        position = self._schema.index_of(column)
        doomed = [
            (row_id, values)
            for row_id, values in self._rows.items()
            if values[position] == value
        ]
        for row_id, values in doomed:
            self._remove_row(row_id, values)
        return len(doomed)

    def delete_row(self, row: object) -> bool:
        """Delete one exact row; returns False if not present."""
        values = self._schema.coerce_row(row)
        for row_id, existing in self._rows.items():
            if existing == values:
                self._remove_row(row_id, values)
                return True
        return False

    def update_where(
        self, predicate: Callable[[Row], bool], updates: Mapping[str, object]
    ) -> int:
        """Update columns of every row satisfying *predicate*."""
        for column in updates:
            if not self._schema.has_column(column):
                raise SchemaError(f"unknown column in update: {column!r}")
        touched = 0
        for row_id, values in list(self._rows.items()):
            row = Row.from_values(self._schema.names, values)
            if not predicate(row):
                continue
            new_row = row.replaced(**updates)
            new_values = self._schema.coerce_row(new_row)
            self._rows[row_id] = new_values
            for index in self._indexes.values():
                position = self._schema.index_of(index.column)
                index.remove(values[position], row_id)
                index.add(new_values[position], row_id)
            self._bump(ChangeKind.UPDATE, new_values, old=values)
            touched += 1
        return touched

    def clear(self) -> int:
        """Delete every row; returns how many were removed."""
        return self.delete_where(lambda _row: True)

    def _remove_row(self, row_id: int, values: Tuple[object, ...]) -> None:
        del self._rows[row_id]
        for index in self._indexes.values():
            position = self._schema.index_of(index.column)
            index.remove(values[position], row_id)
        self._bump(ChangeKind.DELETE, values)

    def _bump(
        self,
        kind: ChangeKind,
        values: Tuple[object, ...],
        old: Optional[Tuple[object, ...]] = None,
    ) -> None:
        self._version += 1
        if self._change_log is not None:
            self._change_log.record(
                Change(kind, self._name, self._version, values, old)
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select_eq(self, column: str, value: object) -> Tuple[Row, ...]:
        """Rows whose *column* equals *value* (index-accelerated)."""
        index = self._ensure_index(column)
        position = self._schema.index_of(column)
        matches = []
        for row_id in sorted(index.lookup(value)):
            values = self._rows.get(row_id)
            if values is not None and values[position] == value:
                matches.append(Row.from_values(self._schema.names, values))
        return tuple(matches)

    def select_where(self, predicate: Callable[[Row], bool]) -> Tuple[Row, ...]:
        """Rows satisfying an arbitrary predicate (full scan)."""
        return tuple(row for row in self.rows() if predicate(row))

    def project(self, columns: Sequence[str]) -> Tuple[Tuple[object, ...], ...]:
        """Distinct projections of all rows onto *columns* (order preserved)."""
        positions = [self._schema.index_of(column) for column in columns]
        seen = set()
        result: List[Tuple[object, ...]] = []
        for values in (values for _, values in sorted(self._rows.items())):
            projected = tuple(values[position] for position in positions)
            if projected not in seen:
                seen.add(projected)
                result.append(projected)
        return tuple(result)

    def distinct_values(self, column: str) -> Tuple[object, ...]:
        """Distinct values of one column."""
        return tuple(value for (value,) in self.project([column]))

    def _ensure_index(self, column: str) -> HashIndex:
        self._schema.index_of(column)  # validates the column exists
        index = self._indexes.get(column)
        if index is None:
            index = HashIndex(column)
            position = self._schema.index_of(column)
            index.rebuild(self._rows.items(), position)
            self._indexes[column] = index
        return index

    def __repr__(self) -> str:
        return f"Table({self._name!r}, {len(self._rows)} rows, v{self._version})"
