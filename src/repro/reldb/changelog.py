"""Change logging and versioning for base tables.

Section 4 of the paper models an update to an integrated source as a change
in the behaviour of the functions that access it, and defines the deltas

    ``f+_{t,t+1}(args) = f_{t+1}(args) - f_t(args)``
    ``f-_{t,t+1}(args) = f_t(args) - f_{t+1}(args)``

To reproduce the ``T_P``-side of that comparison we need to know how a table
changed between two *versions*; the change log records every insert, delete
and update together with the table version at which it happened, so the
domain layer can compute ``ADD`` / ``REM`` sets without re-diffing entire
snapshots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple


class ChangeKind(enum.Enum):
    """The three kinds of base-table changes."""

    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"


@dataclass(frozen=True)
class Change:
    """One recorded change to a table."""

    kind: ChangeKind
    table: str
    version: int
    row: Tuple[object, ...]
    #: For updates, the previous contents of the row (None otherwise).
    old_row: Optional[Tuple[object, ...]] = None

    def __str__(self) -> str:
        if self.kind is ChangeKind.UPDATE:
            return f"v{self.version} update {self.table}: {self.old_row} -> {self.row}"
        return f"v{self.version} {self.kind.value} {self.table}: {self.row}"


class ChangeLog:
    """An append-only log of changes, queryable by version interval.

    Listeners subscribed with :meth:`subscribe` see every recorded change as
    it happens; the update-stream subsystem uses this to feed base-table
    deltas into the same transaction log as the view-level update requests
    (see :func:`repro.stream.log.attach_changelog`).
    """

    def __init__(self) -> None:
        self._changes: List[Change] = []
        self._listeners: List[object] = []

    def record(self, change: Change) -> None:
        """Append one change and notify the subscribed listeners."""
        self._changes.append(change)
        for listener in tuple(self._listeners):
            listener(change)

    def subscribe(self, listener) -> "callable[[], None]":
        """Call *listener* with every subsequently recorded change.

        Returns a zero-argument detach callable; detaching twice is a no-op.
        Listeners must not raise -- a recording transaction is not the place
        to handle consumer failures -- and exceptions propagate to the
        recorder by design.
        """
        self._listeners.append(listener)

        def detach() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return detach

    def __len__(self) -> int:
        return len(self._changes)

    def __iter__(self):
        return iter(self._changes)

    def changes_between(
        self, from_version: int, to_version: int, table: Optional[str] = None
    ) -> Tuple[Change, ...]:
        """Changes with ``from_version < change.version <= to_version``."""
        selected = [
            change
            for change in self._changes
            if from_version < change.version <= to_version
            and (table is None or change.table == table)
        ]
        return tuple(selected)

    def inserted_rows(
        self, from_version: int, to_version: int, table: Optional[str] = None
    ) -> Tuple[Tuple[object, ...], ...]:
        """Rows whose *net effect* over the interval is an insertion."""
        inserted, _ = self._net_effect(from_version, to_version, table)
        return tuple(inserted)

    def deleted_rows(
        self, from_version: int, to_version: int, table: Optional[str] = None
    ) -> Tuple[Tuple[object, ...], ...]:
        """Rows whose *net effect* over the interval is a deletion."""
        _, deleted = self._net_effect(from_version, to_version, table)
        return tuple(deleted)

    def _net_effect(
        self, from_version: int, to_version: int, table: Optional[str]
    ) -> Tuple[List[Tuple[object, ...]], List[Tuple[object, ...]]]:
        inserted: List[Tuple[object, ...]] = []
        deleted: List[Tuple[object, ...]] = []
        for change in self.changes_between(from_version, to_version, table):
            if change.kind is ChangeKind.INSERT:
                _cancel_or_append(deleted, inserted, change.row)
            elif change.kind is ChangeKind.DELETE:
                _cancel_or_append(inserted, deleted, change.row)
            else:  # UPDATE = delete old + insert new
                if change.old_row is not None:
                    _cancel_or_append(inserted, deleted, change.old_row)
                _cancel_or_append(deleted, inserted, change.row)
        return inserted, deleted


def _cancel_or_append(
    opposite: List[Tuple[object, ...]],
    target: List[Tuple[object, ...]],
    row: Tuple[object, ...],
) -> None:
    """Cancel out an earlier opposite change for *row* or record it."""
    if row in opposite:
        opposite.remove(row)
    else:
        target.append(row)
