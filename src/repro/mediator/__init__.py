"""HERMES-style mediator layer.

Combines the constrained-Datalog substrate with the external-domain layer:
mediator programs, materialized mediated views, and the update entry points
studied by the paper.
"""

from repro.mediator.builder import MediatorBuilder
from repro.mediator.mediator import (
    DeletionAlgorithm,
    MaterializationOperator,
    MediatedView,
    Mediator,
)

__all__ = [
    "DeletionAlgorithm",
    "MaterializationOperator",
    "MediatedView",
    "Mediator",
    "MediatorBuilder",
]
