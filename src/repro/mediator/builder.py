"""Fluent construction of mediators.

The examples and workload generators assemble mediators from several pieces
(rule text, relational sources, special-purpose domains); the builder keeps
those call sites readable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis import analyze_program
from repro.datalog.clauses import Clause
from repro.datalog.parser import parse_program
from repro.datalog.program import ConstrainedDatabase
from repro.domains.base import Domain, DomainRegistry
from repro.domains.relational import make_relational_domain
from repro.errors import MediatorError
from repro.mediator.mediator import Mediator


class MediatorBuilder:
    """Step-by-step construction of a :class:`~repro.mediator.Mediator`."""

    def __init__(self) -> None:
        self._rule_texts: List[str] = []
        self._clauses: List[Clause] = []
        self._domains: List[Domain] = []
        self._mediator_kwargs: Dict[str, object] = {}

    def with_rules(self, rules: str) -> "MediatorBuilder":
        """Append rule text (parsed when :meth:`build` is called)."""
        self._rule_texts.append(rules)
        return self

    def with_clause(self, clause: Clause) -> "MediatorBuilder":
        """Append one pre-constructed clause."""
        self._clauses.append(clause)
        return self

    def with_domain(self, domain: Domain) -> "MediatorBuilder":
        """Register an external domain."""
        self._domains.append(domain)
        return self

    def with_relational_source(
        self,
        name: str,
        tables: Dict[str, Tuple[Sequence[str], Iterable[object]]],
    ) -> "MediatorBuilder":
        """Create and register a relational domain with the given tables."""
        self._domains.append(make_relational_domain(name, tables))
        return self

    def with_options(self, **kwargs: object) -> "MediatorBuilder":
        """Pass extra keyword options through to the Mediator constructor."""
        self._mediator_kwargs.update(kwargs)
        return self

    def build(self) -> Mediator:
        """Assemble the mediator."""
        clauses: List[Clause] = []
        for text in self._rule_texts:
            clauses.extend(parse_program(text).clauses)
        clauses.extend(self._clauses)
        if not clauses:
            raise MediatorError("a mediator needs at least one rule")
        # Renumber sequentially so rule text order defines clause numbers.
        program = ConstrainedDatabase(
            clause.with_number(None) for clause in clauses
        )
        registry = DomainRegistry(self._domains)
        # Fail fast on the analysis errors no program should ship with:
        # unsafe head variables and unstratified negation make the fixpoint
        # semantics itself ill-defined.  Registry-level errors (unknown
        # domains / arity conflicts) stay diagnostics -- builders routinely
        # assemble programs before all their sources are attached.
        report = analyze_program(program, registry)
        fatal = [
            diagnostic
            for diagnostic in report.errors()
            if diagnostic.code in ("unsafe-head-variable", "unstratified-negation")
        ]
        if fatal:
            rendered = "; ".join(diagnostic.render() for diagnostic in fatal)
            raise MediatorError(f"program fails static analysis: {rendered}")
        return Mediator(program, registry, **self._mediator_kwargs)  # type: ignore[arg-type]
