"""The mediator: rules + integrated domains + materialized mediated views.

A :class:`Mediator` bundles what HERMES calls a mediator program -- a set of
constrained clauses whose constraints reach external sources through
``in(X, domain:function(args))`` -- with the registry of those sources, and
exposes the operations the paper studies:

* materialization by unfolding (``T_P`` or ``W_P`` fixpoints),
* view updates of the first kind (constrained-atom deletion via Extended
  DRed or StDel, constrained-atom insertion), and
* view maintenance under updates of the second kind (source changes),
  either by re-materialization (``T_P``) or by doing nothing (``W_P``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from repro.analysis import ProgramReport, analyze_program
from repro.constraints.solver import ConstraintSolver, SolverOptions
from repro.datalog.atoms import ConstrainedAtom
from repro.datalog.fixpoint import FixpointOptions, compute_tp_fixpoint, compute_wp_fixpoint
from repro.datalog.parser import parse_constrained_atom, parse_program
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.domains.base import Domain, DomainRegistry
from repro.errors import MediatorError
from repro.maintenance.delete_dred import DRedOptions, DRedResult, ExtendedDRed
from repro.maintenance.delete_stdel import StDelOptions, StDelResult, StraightDelete
from repro.maintenance.insert import ConstrainedAtomInsertion, InsertionOptions, InsertionResult
from repro.maintenance.requests import DeletionRequest, InsertionRequest


class MaterializationOperator(enum.Enum):
    """Which fixpoint operator materializes the view."""

    TP = "tp"
    WP = "wp"


class DeletionAlgorithm(enum.Enum):
    """Which deletion algorithm maintains the view."""

    STDEL = "stdel"
    DRED = "dred"


@dataclass
class MediatedView:
    """A materialized mediated view bound to the mediator that produced it."""

    mediator: "Mediator"
    view: MaterializedView
    operator: MaterializationOperator

    def __len__(self) -> int:
        return len(self.view)

    def entries(self):
        """The underlying view entries."""
        return self.view.entries

    def query(
        self, predicate: str, universe: Optional[Iterable[object]] = None
    ) -> FrozenSet[Tuple[object, ...]]:
        """Ground tuples of *predicate* according to the view.

        For a ``W_P`` view this evaluates constraint solvability *now*
        (deferred evaluation, Corollary 1); for a ``T_P`` view the
        constraints were already filtered at materialization time but DCA
        atoms are still evaluated against the current sources.
        """
        return self.view.instances_for(
            predicate, solver=self.mediator.solver, universe=universe
        )

    def instances(
        self, universe: Optional[Iterable[object]] = None
    ) -> FrozenSet[Tuple[str, Tuple[object, ...]]]:
        """All ground instances ``[M]`` of the view."""
        return self.view.instances(solver=self.mediator.solver, universe=universe)

    # -- updates of the first kind ------------------------------------
    def delete(
        self,
        atom: Union[str, ConstrainedAtom],
        algorithm: DeletionAlgorithm = DeletionAlgorithm.STDEL,
    ) -> Union[StDelResult, DRedResult]:
        """Delete a constrained atom from this view (returns the result).

        The view object is updated in place to the algorithm's output view.
        """
        request = self.mediator.parse_update_atom(atom)
        result = self.mediator.delete_from(self.view, request, algorithm)
        self.view = result.view
        return result

    def insert(self, atom: Union[str, ConstrainedAtom]) -> InsertionResult:
        """Insert a constrained atom into this view (returns the result)."""
        request = self.mediator.parse_update_atom(atom)
        result = self.mediator.insert_into(self.view, request)
        self.view = result.view
        return result

    # -- updates of the second kind ------------------------------------
    def refresh(self) -> "MediatedView":
        """Re-materialize (only meaningful for ``T_P`` views).

        Under ``W_P`` this is unnecessary by Theorem 4; the method still
        recomputes and returns a fresh view for comparison purposes.
        """
        refreshed = self.mediator.materialize(self.operator)
        self.view = refreshed.view
        return self


class Mediator:
    """A HERMES-style mediator over a registry of external domains."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        registry: Optional[DomainRegistry] = None,
        solver_options: SolverOptions = SolverOptions(),
        fixpoint_options: Optional[FixpointOptions] = None,
        dred_options: Optional[DRedOptions] = None,
        stdel_options: Optional[StDelOptions] = None,
        insertion_options: Optional[InsertionOptions] = None,
    ) -> None:
        self._program = program
        self._registry = registry or DomainRegistry()
        self._solver = ConstraintSolver(self._registry, solver_options)
        self._fixpoint_options = fixpoint_options or FixpointOptions()
        self._dred_options = dred_options or DRedOptions()
        self._stdel_options = stdel_options or StDelOptions()
        self._insertion_options = insertion_options or InsertionOptions()
        #: Set by :meth:`open`: the recovered durable scheduler over the
        #: mediator's data directory (``None`` for in-memory mediators).
        self._durable_scheduler = None
        # Static analysis once per mediator: the report's interval-position
        # table is threaded into every fixpoint/unfolding configuration that
        # did not set one explicitly, so range postings stop probing
        # positions that can never carry a non-degenerate interval.
        # Diagnostics are not gated here -- the builder fails fast on them;
        # direct construction stays permissive for experiments.
        self._report = analyze_program(program, self._registry)
        eligible = self._report.interval_positions
        if self._fixpoint_options.range_eligible is None:
            self._fixpoint_options = replace(
                self._fixpoint_options, range_eligible=eligible
            )
        if self._dred_options.fixpoint.range_eligible is None:
            self._dred_options = replace(
                self._dred_options,
                fixpoint=replace(self._dred_options.fixpoint, range_eligible=eligible),
            )
        if self._insertion_options.range_eligible is None:
            self._insertion_options = replace(
                self._insertion_options, range_eligible=eligible
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rules(
        cls,
        rules: str,
        domains: Sequence[Domain] = (),
        **kwargs,
    ) -> "Mediator":
        """Build a mediator from rule text and a list of domains."""
        program = parse_program(rules)
        registry = DomainRegistry(domains)
        return cls(program, registry, **kwargs)

    @classmethod
    def open(
        cls,
        path,
        domains: Sequence[Domain] = (),
        rules: Optional[str] = None,
        stream_options=None,
        durability_options=None,
        **kwargs,
    ) -> "Mediator":
        """Open (or initialize) a durable mediator over a data directory.

        Recovery is the persistence layer's contract: the newest valid
        snapshot is loaded (checksums and program hash verified loudly),
        the WAL tail is replayed through the ordinary scheduler pipeline,
        and fresh transaction ids continue above the persisted high-water
        mark.  *rules* is required the first time (an empty directory has
        no program to recover) and optional afterwards -- when given, it
        must hash-identically match the program the directory was built
        from.  The durable scheduler is available as
        :attr:`durable_scheduler`; :meth:`serve` picks it up automatically.
        """
        from repro.persist import open_scheduler
        from repro.persist.manager import DurabilityOptions
        from repro.persist.snapshot import SnapshotStore
        from repro.stream import StreamOptions

        program = parse_program(rules) if rules is not None else None
        if program is None:
            # Recover the program from the manifest so the mediator can be
            # constructed before the scheduler (shared solver/registry).
            state = SnapshotStore(path).load_current()
            if state is None:
                raise MediatorError(
                    f"data directory {str(path)!r} holds no snapshot; "
                    "pass rules to initialize it"
                )
            program = state.program
        registry = DomainRegistry(domains)
        mediator = cls(program, registry, **kwargs)
        mediator._durable_scheduler = open_scheduler(
            path,
            program,
            solver=mediator._solver,
            options=(
                stream_options if stream_options is not None else StreamOptions()
            ),
            durability_options=(
                durability_options
                if durability_options is not None
                else DurabilityOptions()
            ),
        )
        return mediator

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def program(self) -> ConstrainedDatabase:
        """The mediator's constrained database (rules)."""
        return self._program

    @property
    def registry(self) -> DomainRegistry:
        """The registry of integrated domains."""
        return self._registry

    @property
    def solver(self) -> ConstraintSolver:
        """The constraint solver bound to the domain registry."""
        return self._solver

    @property
    def report(self) -> ProgramReport:
        """The static-analysis report computed at construction time."""
        return self._report

    @property
    def durable_scheduler(self):
        """The recovered durable scheduler (:meth:`open` only), else ``None``."""
        return self._durable_scheduler

    def add_domain(self, domain: Domain) -> None:
        """Register one more external domain."""
        self._registry.register(domain)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        operator: Union[str, MaterializationOperator] = MaterializationOperator.TP,
    ) -> MediatedView:
        """Materialize the mediated view by unfolding the rule set."""
        resolved = (
            operator
            if isinstance(operator, MaterializationOperator)
            else MaterializationOperator(operator)
        )
        if resolved is MaterializationOperator.TP:
            view = compute_tp_fixpoint(
                self._program, self._solver, options=self._fixpoint_options
            )
        else:
            view = compute_wp_fixpoint(
                self._program, self._solver, options=self._fixpoint_options
            )
        return MediatedView(self, view, resolved)

    # ------------------------------------------------------------------
    # Updates of the first kind
    # ------------------------------------------------------------------
    def parse_update_atom(self, atom: Union[str, ConstrainedAtom]) -> ConstrainedAtom:
        """Accept either rule-text (``"p(X) <- X = 3"``) or a constructed atom."""
        if isinstance(atom, ConstrainedAtom):
            return atom
        if isinstance(atom, str):
            return parse_constrained_atom(atom)
        raise MediatorError(f"cannot interpret update atom: {atom!r}")

    def delete_from(
        self,
        view: MaterializedView,
        atom: ConstrainedAtom,
        algorithm: DeletionAlgorithm = DeletionAlgorithm.STDEL,
    ) -> Union[StDelResult, DRedResult]:
        """Run the chosen deletion algorithm against *view*."""
        if algorithm is DeletionAlgorithm.STDEL:
            return StraightDelete(self._program, self._solver, self._stdel_options).delete(
                view, DeletionRequest(atom)
            )
        if algorithm is DeletionAlgorithm.DRED:
            return ExtendedDRed(self._program, self._solver, self._dred_options).delete(
                view, DeletionRequest(atom)
            )
        raise MediatorError(f"unknown deletion algorithm: {algorithm!r}")

    def insert_into(
        self, view: MaterializedView, atom: ConstrainedAtom
    ) -> InsertionResult:
        """Run the insertion algorithm against *view*."""
        return ConstrainedAtomInsertion(
            self._program, self._solver, self._insertion_options
        ).insert(view, InsertionRequest(atom))

    # ------------------------------------------------------------------
    # Streaming & serving
    # ------------------------------------------------------------------
    def streaming(self, options=None, view: Optional[MaterializedView] = None):
        """A :class:`~repro.stream.StreamScheduler` over this mediator.

        The scheduler shares the mediator's solver (and therefore its
        domain registry and memo discipline); *view* defaults to a fresh
        ``T_P`` materialization.  Batched updates submitted to the
        scheduler's log maintain the same view the mediator would.

        A mediator built by :meth:`open` hands out its recovered durable
        scheduler instead (options/view arguments then must be left unset:
        both were decided by recovery).
        """
        from repro.stream import StreamOptions, StreamScheduler

        if self._durable_scheduler is not None:
            if options is not None or view is not None:
                raise MediatorError(
                    "a durable mediator's scheduler was configured at open() "
                    "time; streaming() takes no options/view here"
                )
            return self._durable_scheduler
        return StreamScheduler(
            self._program,
            self._solver,
            view=view,
            options=options if options is not None else StreamOptions(),
        )

    def serve(
        self,
        serve_options=None,
        stream_options=None,
        view: Optional[MaterializedView] = None,
    ):
        """A :class:`~repro.serve.MediatorService` over this mediator.

        Returns the (not yet started) asyncio service: concurrent snapshot
        reads, a pipelined writer draining the update log, watermark
        backpressure.  Callers ``await service.start()`` (or use it as an
        async context manager) from their event loop.
        """
        from repro.serve import MediatorService, ServeOptions

        return MediatorService(
            self.streaming(stream_options, view=view),
            serve_options if serve_options is not None else ServeOptions(),
        )
