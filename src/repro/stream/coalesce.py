"""Net-effect coalescing of an update batch.

A drained batch is an ordered mix of deletions, insertions and external
notices.  Before any maintenance pass runs, the coalescer shrinks it to its
net effect:

* **Deduplication** -- a request identical (same atom, same canonical
  constraint) to an earlier one of the same kind is dropped, *unless* an
  opposite-kind request of the same predicate sits between the two
  occurrences (a deletion between two identical insertions makes the second
  insertion a genuine re-insertion, and symmetrically for deletions).
* **Cancellation** -- an insertion followed by a deletion of the same
  predicate whose instances cover it (checked with
  :meth:`~repro.constraints.solver.ConstraintSolver.subsumes_instances`)
  cancels: the insertion is dropped, the deletion stays (it still applies
  to whatever the pre-batch view held).
* **Deletion subsumption** -- a deletion whose instances are covered by a
  *later, wider* deletion is dropped (the wider one removes everything the
  narrower one would), *unless* an insertion of the same predicate sits
  between the two: the narrower delete then still shapes which instances
  that insertion's ``Add`` set may contribute, so both survive.
* **Narrowing** -- an insertion *partially* covered by later deletions is
  narrowed by ``not(delta & bindings)`` per overlapping deletion -- the
  same construction Section 3.1 uses to give deletion its declarative
  semantics -- so applying all deletions first and the narrowed insertions
  second reproduces the interleaved stream's net effect.
* **Grouping** -- the surviving requests are grouped by head predicate
  (``by_predicate``), the shape the stratified scheduler consumes.

External notices are compacted per source (net row effect, latest version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constraints.simplify import canonical_form, simplify
from repro.constraints.solver import ConstraintSolver
from repro.constraints.ast import conjoin
from repro.constraints.terms import FreshVariableFactory
from repro.datalog.atoms import ConstrainedAtom
from repro.maintenance.common import negated_atom_constraint
from repro.maintenance.requests import DeletionRequest, InsertionRequest
from repro.stream.log import ExternalChangeNotice, StreamPayload, Transaction


@dataclass
class CoalesceReport:
    """What coalescing a batch did, for the stream statistics."""

    #: Update requests submitted (external notices not counted).
    submitted: int = 0
    #: Exact duplicates dropped.
    deduplicated: int = 0
    #: Insertions cancelled outright by a later covering deletion.
    cancelled: int = 0
    #: Insertions narrowed by a later overlapping deletion.
    narrowed: int = 0
    #: Deletions swallowed by a later, wider deletion of the same predicate.
    subsumed: int = 0
    #: External notices received / compacted away.
    notices: int = 0
    notices_compacted: int = 0
    #: Solver work spent deciding cancellation (subsumption + overlap).
    solver_calls: int = 0
    quick_rejects: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "deduplicated": self.deduplicated,
            "cancelled": self.cancelled,
            "narrowed": self.narrowed,
            "subsumed": self.subsumed,
            "notices": self.notices,
            "notices_compacted": self.notices_compacted,
            "solver_calls": self.solver_calls,
            "quick_rejects": self.quick_rejects,
        }


@dataclass(frozen=True)
class CoalescedBatch:
    """The net effect of one drained batch, ready for scheduling."""

    #: Surviving deletions, in stream order.
    deletions: Tuple[DeletionRequest, ...]
    #: Surviving (possibly narrowed) insertions, in stream order.
    insertions: Tuple[InsertionRequest, ...]
    #: Compacted external notices, one per source, in first-seen order.
    notices: Tuple[ExternalChangeNotice, ...]
    report: CoalesceReport = field(default_factory=CoalesceReport)

    def __len__(self) -> int:
        return len(self.deletions) + len(self.insertions)

    def is_empty(self) -> bool:
        """True when nothing at all remains to apply."""
        return not (self.deletions or self.insertions or self.notices)

    def by_predicate(self) -> Dict[str, Tuple[Tuple[DeletionRequest, ...], Tuple[InsertionRequest, ...]]]:
        """Surviving requests grouped by their atom's head predicate."""
        deletions: Dict[str, List[DeletionRequest]] = {}
        insertions: Dict[str, List[InsertionRequest]] = {}
        for request in self.deletions:
            deletions.setdefault(request.atom.predicate, []).append(request)
        for request in self.insertions:
            insertions.setdefault(request.atom.predicate, []).append(request)
        grouped: Dict[str, Tuple[tuple, tuple]] = {}
        for predicate in sorted(set(deletions) | set(insertions)):
            grouped[predicate] = (
                tuple(deletions.get(predicate, ())),
                tuple(insertions.get(predicate, ())),
            )
        return grouped


def _request_key(request) -> Tuple[str, object, object]:
    """Dedup key: request kind, interned atom, interned canonical constraint.

    With hash-consed nodes the atom and the canonical form *are* identity
    keys -- hashing mixes cached ints and equality is pointer comparison --
    so the old double render (``str(atom)`` + ``str(canonical_form(...))``)
    that re-serialized every request per batch is gone.
    """
    atom = request.atom
    return (
        type(request).__name__,
        atom.atom,
        canonical_form(atom.constraint),
    )


class Coalescer:
    """Computes the net effect of an ordered update batch."""

    def __init__(
        self,
        solver: Optional[ConstraintSolver] = None,
        dedupe_insertions: bool = True,
    ) -> None:
        self._solver = solver or ConstraintSolver()
        #: Under duplicate-semantics experiments (``exclude_existing=False``)
        #: a repeated insertion creates a second derivation on purpose, so
        #: the scheduler turns insertion dedup off there.
        self._dedupe_insertions = dedupe_insertions

    def coalesce(self, payloads: Sequence[StreamPayload]) -> CoalescedBatch:
        """Shrink *payloads* (stream order) to their net effect."""
        report = CoalesceReport()
        # Unwrap transactions; split kinds, keeping stream positions.
        deletions: List[Tuple[int, DeletionRequest]] = []
        insertions: List[Tuple[int, InsertionRequest]] = []
        notices: List[ExternalChangeNotice] = []
        for position, payload in enumerate(payloads):
            if isinstance(payload, Transaction):
                payload = payload.payload
            if isinstance(payload, DeletionRequest):
                report.submitted += 1
                deletions.append((position, payload))
            elif isinstance(payload, InsertionRequest):
                report.submitted += 1
                insertions.append((position, payload))
            elif isinstance(payload, ExternalChangeNotice):
                report.notices += 1
                notices.append(payload)
            else:
                raise TypeError(f"not a stream payload: {payload!r}")

        kept_deletions = self._dedupe(
            deletions, opposite=insertions, report=report
        )
        kept_deletions = self._subsume_deletions(
            kept_deletions, insertions, report
        )
        kept_insertions = (
            self._dedupe(insertions, opposite=deletions, report=report)
            if self._dedupe_insertions
            else list(insertions)
        )
        surviving_insertions = self._cancel_and_narrow(
            kept_insertions, deletions, report
        )
        return CoalescedBatch(
            tuple(request for _, request in kept_deletions),
            tuple(surviving_insertions),
            self._compact_notices(notices, report),
            report,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _dedupe(requests, opposite, report: CoalesceReport):
        """Drop later duplicates with no intervening opposite-kind request."""
        opposite_positions: Dict[str, List[int]] = {}
        for position, request in opposite:
            opposite_positions.setdefault(request.atom.predicate, []).append(position)
        first_seen: Dict[Tuple[str, object, object], int] = {}
        kept = []
        for position, request in requests:
            key = _request_key(request)
            earlier = first_seen.get(key)
            if earlier is not None:
                between = opposite_positions.get(request.atom.predicate, ())
                if not any(earlier < other < position for other in between):
                    report.deduplicated += 1
                    continue
            # Track the *latest* kept occurrence: a still-later duplicate
            # only needs no opposite request since this one.
            first_seen[key] = position
            kept.append((position, request))
        return kept

    def _subsume_deletions(self, deletions, insertions, report: CoalesceReport):
        """Drop deletions covered by a later, wider same-predicate deletion.

        The coalescer previously cancelled *insertions* against later
        deletions only; a narrow delete followed by a wider one both reached
        the maintenance pass, and the narrow one's whole ``Del``/``P_OUT``
        propagation was pure waste (the wider delete removes a superset).
        A candidate is swallowed only when

        * a later deletion of the same signature subsumes its instances
          (``instances(narrow) ⊆ instances(wide)``, via
          :meth:`~repro.constraints.solver.ConstraintSolver.subsumes_instances`),
          and
        * no insertion of the predicate sits between the two: an intervening
          insertion's ``Add`` set is disjointified against the view state
          the narrow delete produced, so dropping it would change which
          derivations the insertion contributes (the same guard the
          deduplication pass applies).

        The *wider, later* request survives -- mirroring cancellation, where
        the deletion (the later request) also wins.  Quick-reject runs
        first: profile-disjoint pairs cannot subsume unless the narrow
        request is empty, which a solver call on an empty request would
        also conclude, so the skip is sound and counted.
        """
        insertion_positions: Dict[str, List[int]] = {}
        for position, request in insertions:
            insertion_positions.setdefault(request.atom.predicate, []).append(
                position
            )
        solver = self._solver
        kept = []
        for index, (position, request) in enumerate(deletions):
            atom = request.atom
            blocking = insertion_positions.get(atom.predicate, ())
            swallowed = False
            for later_position, later in deletions[index + 1:]:
                wider = later.atom
                if wider.atom.signature != atom.atom.signature:
                    continue
                if any(
                    position < between < later_position for between in blocking
                ):
                    continue
                if solver.identical_instances(
                    atom.atom.args, atom.constraint,
                    wider.atom.args, wider.constraint,
                ):
                    # A later repeat of the same deletion (pointer-identical
                    # interned constraint) trivially subsumes it -- no
                    # counted solver call.
                    swallowed = True
                    break
                if solver.quick_reject(
                    atom.atom.args, atom.constraint,
                    wider.atom.args, wider.constraint,
                ):
                    report.quick_rejects += 1
                    continue
                report.solver_calls += 1
                if solver.subsumes_instances(
                    atom.atom.args, atom.constraint,
                    wider.atom.args, wider.constraint,
                ):
                    swallowed = True
                    break
            if swallowed:
                report.subsumed += 1
            else:
                kept.append((position, request))
        return kept

    def _cancel_and_narrow(self, insertions, deletions, report: CoalesceReport):
        """Apply later deletions to each insertion (cancel or narrow)."""
        solver = self._solver
        survivors: List[InsertionRequest] = []
        reserved = set()
        for _, request in insertions:
            reserved.update(v.name for v in request.atom.variables())
        for _, request in deletions:
            reserved.update(v.name for v in request.atom.variables())
        factory = FreshVariableFactory(reserved)
        for position, insertion in insertions:
            atom = insertion.atom
            constraint = atom.constraint
            cancelled = False
            narrowed = False
            for deletion_position, deletion in deletions:
                if deletion_position < position:
                    continue
                deleted = deletion.atom
                if deleted.atom.signature != atom.atom.signature:
                    continue
                if solver.identical_instances(
                    atom.atom.args, constraint,
                    deleted.atom.args, deleted.constraint,
                ):
                    # Insert-then-delete of the very same constrained atom is
                    # the classic churn pattern: with interned nodes it is a
                    # pointer comparison, so the pair cancels without a
                    # counted subsumption call.
                    cancelled = True
                    break
                if solver.quick_reject(
                    atom.atom.args, constraint,
                    deleted.atom.args, deleted.constraint,
                ):
                    report.quick_rejects += 1
                    continue
                report.solver_calls += 1
                if solver.subsumes_instances(
                    atom.atom.args, constraint,
                    deleted.atom.args, deleted.constraint,
                ):
                    cancelled = True
                    break
                positive, negative = negated_atom_constraint(
                    atom.atom, deleted, factory
                )
                report.solver_calls += 1
                if not solver.is_satisfiable(conjoin(constraint, positive)):
                    continue  # no overlap after earlier narrowing
                constraint = simplify(conjoin(constraint, negative), solver)
                narrowed = True
            if cancelled:
                report.cancelled += 1
                continue
            if narrowed:
                report.solver_calls += 1
                if not solver.is_satisfiable(constraint):
                    report.cancelled += 1
                    continue
                report.narrowed += 1
                survivors.append(
                    InsertionRequest(ConstrainedAtom(atom.atom, constraint))
                )
            else:
                survivors.append(insertion)
        return survivors

    @staticmethod
    def _compact_notices(
        notices: Sequence[ExternalChangeNotice], report: CoalesceReport
    ) -> Tuple[ExternalChangeNotice, ...]:
        """One notice per source: net rows, latest version."""
        merged: Dict[str, ExternalChangeNotice] = {}
        order: List[str] = []
        for notice in notices:
            existing = merged.get(notice.source)
            if existing is None:
                merged[notice.source] = notice
                order.append(notice.source)
                continue
            report.notices_compacted += 1
            added = list(existing.added_rows)
            removed = list(existing.removed_rows)
            for row in notice.added_rows:
                if row in removed:
                    removed.remove(row)
                else:
                    added.append(row)
            for row in notice.removed_rows:
                if row in added:
                    added.remove(row)
                else:
                    removed.append(row)
            merged[notice.source] = ExternalChangeNotice(
                source=notice.source,
                added_rows=tuple(added),
                removed_rows=tuple(removed),
                version=notice.version
                if notice.version is not None
                else existing.version,
            )
        return tuple(merged[source] for source in order)
