"""The update-stream subsystem: batched maintenance of mediated views.

Section 3 of the paper defines three kinds of updates to a materialized
mediated view -- deletion of a constrained atom (Algorithms 1 and 2),
insertion of a constrained atom (Algorithm 3), and changes to the external
sources (Section 4) -- and analyzes the maintenance cost of **one** update
at a time.  This package treats the paper's update model as a *stream*: an
ordered sequence of those same three update kinds, applied in batches whose
maintenance cost is proportional to the batch's net effect rather than to
the number of requests submitted.

* :mod:`repro.stream.log` -- the transaction log.  Interleaved
  :class:`~repro.maintenance.requests.InsertionRequest` /
  :class:`~repro.maintenance.requests.DeletionRequest` objects and external
  source-change notices are accepted as timestamped transactions, exactly
  the three update kinds of Section 3/4, in arrival order.
* :mod:`repro.stream.coalesce` -- net effect of a batch.  Duplicate
  requests are dropped, an insertion followed by a deletion that covers it
  cancels outright (checked with
  :meth:`~repro.constraints.solver.ConstraintSolver.subsumes_instances`),
  and a partially-covered insertion is narrowed by ``not(delta)`` -- the
  same construction Section 3.1's deletion semantics uses -- so the batch
  the scheduler applies is the smallest one with the stream's semantics.
* :mod:`repro.stream.strata` -- predicate stratification.  The strongly
  connected components of the program's clause -> body-predicate dependency
  index bound how far an update can propagate; requests whose reachable
  components are disjoint form independent units that can be maintained
  concurrently and retried individually.
* :mod:`repro.stream.scheduler` -- one maintenance pass per algorithm per
  batch: StDel / Extended DRed seeded with the union of the batch's
  deletion atoms (one ``P_OUT`` unfolding, one rename/simplify regime, one
  final purge), one ``P_ADD`` fixpoint seeded with all insertions, and
  external changes folded in for free under the ``W_P`` discipline (the
  registry version token invalidates the solver's external memos; the view
  itself needs no work, per Theorem 4).  Queries served mid-batch read a
  snapshot-isolated pre-batch view.
"""

from repro.stream.coalesce import (
    CoalescedBatch,
    CoalesceReport,
    Coalescer,
)
from repro.stream.log import (
    ExternalChangeNotice,
    Transaction,
    UpdateLog,
    attach_changelog,
    notice_from_changelog,
)
from repro.stream.scheduler import (
    BatchResult,
    PreparedBatch,
    StreamOptions,
    StreamScheduler,
    StreamStats,
    UnitReport,
)
from repro.stream.strata import (
    PredicateStrata,
    StratumUnit,
)

__all__ = [
    "BatchResult",
    "CoalesceReport",
    "CoalescedBatch",
    "Coalescer",
    "ExternalChangeNotice",
    "PredicateStrata",
    "PreparedBatch",
    "StratumUnit",
    "StreamOptions",
    "StreamScheduler",
    "StreamStats",
    "Transaction",
    "UpdateLog",
    "attach_changelog",
    "notice_from_changelog",
]
