"""Predicate stratification for batch scheduling.

An update to predicate ``p`` can only disturb entries of predicates
*reachable* from ``p`` in the dependency graph the program's clause ->
body-predicate index induces (``q -> head`` for every clause using ``q`` in
its body).  Recursion is confined to the graph's strongly connected
components, so the condensation is a DAG and every predicate gets a stratum
index (bottom-up component order, via
:meth:`~repro.datalog.program.ConstrainedDatabase.predicate_sccs`).

The scheduler partitions a coalesced batch by the *upward closure* of each
request's predicate: requests whose closures intersect must be maintained
together (their propagation cones share entries); requests whose closures
are disjoint form independent :class:`StratumUnit` objects.  Independent
units write disjoint predicate sets and read nothing another unit writes --
a clause joining predicates from two closures would put its head in both,
merging them -- so the units can run concurrently and be retried
individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.datalog.program import ConstrainedDatabase
from repro.errors import MaintenanceError
from repro.maintenance.requests import DeletionRequest, InsertionRequest


@dataclass(frozen=True)
class StratumUnit:
    """One independently-maintainable slice of a coalesced batch."""

    #: Predicates the unit's requests target directly.
    predicates: FrozenSet[str]
    #: Every predicate the unit's maintenance may rewrite (upward closure).
    write_closure: FrozenSet[str]
    #: Stratum indexes the closure spans (sorted; reporting only).
    strata: Tuple[int, ...]
    #: The unit's deletions / insertions, each in stream order.
    deletions: Tuple[DeletionRequest, ...]
    insertions: Tuple[InsertionRequest, ...]
    #: Position of the unit's earliest request in the batch (ordering key).
    order: int

    def __len__(self) -> int:
        return len(self.deletions) + len(self.insertions)

    def describe(self) -> str:
        names = ",".join(sorted(self.predicates))
        return (
            f"unit[{names}] strata={list(self.strata)} "
            f"({len(self.deletions)} del, {len(self.insertions)} ins)"
        )


def check_disjoint_write_closures(units: Iterable[StratumUnit]) -> None:
    """Assert that no predicate belongs to two units' write closures.

    :meth:`PredicateStrata.partition` guarantees this by construction; the
    stream scheduler re-checks it immediately before a shard-pointer publish,
    because two units handing over the *same* predicate's shard would make
    the publish silently drop one unit's writes -- the one class of bug the
    merge-free design must turn into a loud failure.
    """
    owner: Dict[str, StratumUnit] = {}
    for unit in units:
        for predicate in unit.write_closure:
            claimed = owner.get(predicate)
            if claimed is not None:
                raise MaintenanceError(
                    f"stratum units overlap on predicate {predicate!r}: "
                    f"{claimed.describe()} vs {unit.describe()}"
                )
            owner[predicate] = unit


class PredicateStrata:
    """Stratum indexes and upward closures of a program's predicates."""

    def __init__(self, program: ConstrainedDatabase) -> None:
        self._edges = program.predicate_dependency_edges()
        self._components = program.predicate_sccs()
        self._stratum: Dict[str, int] = {}
        for index, component in enumerate(self._components):
            for predicate in component:
                self._stratum[predicate] = index
        self._closures: Dict[str, FrozenSet[str]] = {}

    @property
    def components(self) -> Tuple[Tuple[str, ...], ...]:
        """The SCCs in bottom-up order (stratum index = position)."""
        return self._components

    def stratum_of(self, predicate: str) -> int:
        """Stratum index of *predicate* (unknown predicates get a fresh top)."""
        stratum = self._stratum.get(predicate)
        if stratum is None:
            return len(self._components)
        return stratum

    def upward_closure(self, predicate: str) -> FrozenSet[str]:
        """*predicate* plus every predicate an update to it can disturb."""
        cached = self._closures.get(predicate)
        if cached is not None:
            return cached
        seen = {predicate}
        frontier = [predicate]
        while frontier:
            node = frontier.pop()
            for successor in self._edges.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        closure = frozenset(seen)
        self._closures[predicate] = closure
        return closure

    def partition(
        self,
        deletions: Sequence[DeletionRequest],
        insertions: Sequence[InsertionRequest],
    ) -> Tuple[StratumUnit, ...]:
        """Group the requests into independent units (closure overlap merge).

        Deletion positions precede insertion positions -- the scheduler
        applies a batch deletions-first, and within a unit each kind keeps
        its stream order -- and units come back sorted by their earliest
        request so scheduling is deterministic.
        """
        requests: List[Tuple[int, object]] = list(enumerate(deletions))
        offset = len(requests)
        requests.extend(
            (offset + index, request) for index, request in enumerate(insertions)
        )
        # Union-find keyed by predicate-closure membership.
        owner: Dict[str, int] = {}
        parent: Dict[int, int] = {}

        def find(node: int) -> int:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(left: int, right: int) -> int:
            root_left, root_right = find(left), find(right)
            if root_left == root_right:
                return root_left
            if root_right < root_left:
                root_left, root_right = root_right, root_left
            parent[root_right] = root_left
            return root_left

        closures: Dict[int, FrozenSet[str]] = {}
        for position, request in requests:
            parent[position] = position
            closures[position] = self.upward_closure(request.atom.predicate)
            root = position
            for predicate in closures[position]:
                claimed = owner.get(predicate)
                if claimed is not None:
                    root = union(root, claimed)
            for predicate in closures[position]:
                owner[predicate] = root

        groups: Dict[int, List[Tuple[int, object]]] = {}
        for position, request in requests:
            groups.setdefault(find(position), []).append((position, request))
        # Re-point stale owners at their final roots (unions may have
        # re-rooted a predicate's claimed group after it was recorded).
        units: List[StratumUnit] = []
        for root in sorted(groups):
            members = groups[root]
            unit_deletions = tuple(
                request
                for position, request in members
                if isinstance(request, DeletionRequest)
            )
            unit_insertions = tuple(
                request
                for position, request in members
                if isinstance(request, InsertionRequest)
            )
            predicates = frozenset(
                request.atom.predicate for _, request in members
            )
            write_closure = frozenset().union(
                *(closures[position] for position, _ in members)
            )
            strata = tuple(
                sorted({self.stratum_of(predicate) for predicate in write_closure})
            )
            units.append(
                StratumUnit(
                    predicates=predicates,
                    write_closure=write_closure,
                    strata=strata,
                    deletions=unit_deletions,
                    insertions=unit_insertions,
                    order=min(position for position, _ in members),
                )
            )
        units.sort(key=lambda unit: unit.order)
        return tuple(units)
