"""Predicate stratification for batch scheduling.

An update to predicate ``p`` can only disturb entries of predicates
*reachable* from ``p`` in the dependency graph the program's clause ->
body-predicate index induces (``q -> head`` for every clause using ``q`` in
its body).  Recursion is confined to the graph's strongly connected
components, so the condensation is a DAG and every predicate gets a stratum
index (bottom-up component order, via
:meth:`~repro.datalog.program.ConstrainedDatabase.predicate_sccs`).

The scheduler partitions a coalesced batch by the *upward closure* of each
request's predicate: requests whose closures intersect must be maintained
together (their propagation cones share entries); requests whose closures
are disjoint form independent :class:`StratumUnit` objects.  Independent
units write disjoint predicate sets and read nothing another unit writes --
a clause joining predicates from two closures would put its head in both,
merging them -- so the units can run concurrently and be retried
individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.datalog.program import ConstrainedDatabase
from repro.errors import MaintenanceError
from repro.maintenance.requests import DeletionRequest, InsertionRequest
from repro.sanitizer import sanitizer_enabled


@dataclass(frozen=True)
class StratumUnit:
    """One independently-maintainable slice of a coalesced batch."""

    #: Predicates the unit's requests target directly.
    predicates: FrozenSet[str]
    #: Every predicate the unit's maintenance may rewrite (upward closure).
    write_closure: FrozenSet[str]
    #: Stratum indexes the closure spans (sorted; reporting only).
    strata: Tuple[int, ...]
    #: The unit's deletions / insertions, each in stream order.
    deletions: Tuple[DeletionRequest, ...]
    insertions: Tuple[InsertionRequest, ...]
    #: Position of the unit's earliest request in the batch (ordering key).
    order: int

    def __len__(self) -> int:
        return len(self.deletions) + len(self.insertions)

    def describe(self) -> str:
        names = ",".join(sorted(self.predicates))
        return (
            f"unit[{names}] strata={list(self.strata)} "
            f"({len(self.deletions)} del, {len(self.insertions)} ins)"
        )


def check_disjoint_write_closures(
    units: Iterable[StratumUnit],
    groups: Optional[Mapping[str, int]] = None,
) -> None:
    """Assert that no predicate belongs to two units' write closures.

    :meth:`PredicateStrata.partition` guarantees this by construction; the
    stream scheduler re-checks it immediately before a shard-pointer publish,
    because two units handing over the *same* predicate's shard would make
    the publish silently drop one unit's writes -- the one class of bug the
    merge-free design must turn into a loud failure.

    With the analyzer's *groups* table (predicate -> connected-component id
    of the undirected dependency graph) the check is a group-id comparison:
    every write closure lies inside one component, so units whose group-id
    sets are pairwise disjoint cannot overlap.  Predicates the analyzer
    never saw (no group id) keep the exact per-predicate walk.
    """
    units = tuple(units)
    if groups is not None:
        claimed_groups: Dict[int, StratumUnit] = {}
        table_decided = True
        for unit in units:
            unit_groups = set()
            for predicate in unit.write_closure:
                group = groups.get(predicate)
                if group is None:  # predicate unknown to the analyzer
                    table_decided = False
                    break
                unit_groups.add(group)
            if not table_decided:
                break
            for group in unit_groups:
                if group in claimed_groups:
                    # Same component twice: possible-but-unproven overlap;
                    # only the exact walk can tell (and raise accurately).
                    table_decided = False
                    break
                claimed_groups[group] = unit
            if not table_decided:
                break
        if table_decided:
            return
    owner: Dict[str, StratumUnit] = {}
    for unit in units:
        for predicate in unit.write_closure:
            claimed = owner.get(predicate)
            if claimed is not None:
                raise MaintenanceError(
                    f"stratum units overlap on predicate {predicate!r}: "
                    f"{claimed.describe()} vs {unit.describe()}"
                )
            owner[predicate] = unit


class PredicateStrata:
    """Stratum indexes and upward closures of a program's predicates.

    With the static analyzer's precomputed tables (*closures*,
    *components*, *groups* -- see :func:`repro.analysis.analyze_program`)
    the runtime never walks the dependency graph: closures are table
    lookups, and the publish-time disjointness check compares group ids.
    Without them the class recomputes everything from the program, exactly
    as before.  Under ``REPRO_SHARD_SANITIZER=1`` every precomputed closure
    is re-derived by the runtime walk on first use and asserted equal --
    the analyzer is the source of truth, the walk its auditor.
    """

    def __init__(
        self,
        program: ConstrainedDatabase,
        closures: Optional[Mapping[str, FrozenSet[str]]] = None,
        components: Optional[Sequence[Tuple[str, ...]]] = None,
        groups: Optional[Mapping[str, int]] = None,
    ) -> None:
        self._edges = program.predicate_dependency_edges()
        self._components = (
            tuple(tuple(component) for component in components)
            if components is not None
            else program.predicate_sccs()
        )
        self._stratum: Dict[str, int] = {}
        for index, component in enumerate(self._components):
            for predicate in component:
                self._stratum[predicate] = index
        self._closures: Dict[str, FrozenSet[str]] = (
            dict(closures) if closures is not None else {}
        )
        self._precomputed = frozenset(self._closures)
        self._groups: Optional[Dict[str, int]] = (
            dict(groups) if groups is not None else None
        )
        self._audited: set = set()

    @classmethod
    def from_report(
        cls, program: ConstrainedDatabase, report: "object"
    ) -> "PredicateStrata":
        """Build from an analyzer :class:`~repro.analysis.ProgramReport`."""
        return cls(
            program,
            closures=report.write_closures,
            components=report.components,
            groups=report.closure_groups,
        )

    @property
    def components(self) -> Tuple[Tuple[str, ...], ...]:
        """The SCCs in bottom-up order (stratum index = position)."""
        return self._components

    @property
    def groups(self) -> Optional[Mapping[str, int]]:
        """The analyzer's closure-group table, when precomputed."""
        return self._groups

    def stratum_of(self, predicate: str) -> int:
        """Stratum index of *predicate* (unknown predicates get a fresh top)."""
        stratum = self._stratum.get(predicate)
        if stratum is None:
            return len(self._components)
        return stratum

    def _walk_closure(self, predicate: str) -> FrozenSet[str]:
        seen = {predicate}
        frontier = [predicate]
        while frontier:
            node = frontier.pop()
            for successor in self._edges.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return frozenset(seen)

    def upward_closure(self, predicate: str) -> FrozenSet[str]:
        """*predicate* plus every predicate an update to it can disturb."""
        cached = self._closures.get(predicate)
        if cached is not None:
            if (
                predicate in self._precomputed
                and predicate not in self._audited
                and sanitizer_enabled()
            ):
                self._audited.add(predicate)
                walked = self._walk_closure(predicate)
                if walked != cached:
                    raise MaintenanceError(
                        f"analyzer write closure of {predicate!r} "
                        f"({sorted(cached)}) disagrees with the runtime "
                        f"dependency walk ({sorted(walked)})"
                    )
            return cached
        closure = self._walk_closure(predicate)
        self._closures[predicate] = closure
        return closure

    def partition(
        self,
        deletions: Sequence[DeletionRequest],
        insertions: Sequence[InsertionRequest],
    ) -> Tuple[StratumUnit, ...]:
        """Group the requests into independent units (closure overlap merge).

        Deletion positions precede insertion positions -- the scheduler
        applies a batch deletions-first, and within a unit each kind keeps
        its stream order -- and units come back sorted by their earliest
        request so scheduling is deterministic.
        """
        requests: List[Tuple[int, object]] = list(enumerate(deletions))
        offset = len(requests)
        requests.extend(
            (offset + index, request) for index, request in enumerate(insertions)
        )
        # Union-find keyed by predicate-closure membership.
        owner: Dict[str, int] = {}
        parent: Dict[int, int] = {}

        def find(node: int) -> int:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(left: int, right: int) -> int:
            root_left, root_right = find(left), find(right)
            if root_left == root_right:
                return root_left
            if root_right < root_left:
                root_left, root_right = root_right, root_left
            parent[root_right] = root_left
            return root_left

        closures: Dict[int, FrozenSet[str]] = {}
        for position, request in requests:
            parent[position] = position
            closures[position] = self.upward_closure(request.atom.predicate)
            root = position
            for predicate in closures[position]:
                claimed = owner.get(predicate)
                if claimed is not None:
                    root = union(root, claimed)
            for predicate in closures[position]:
                owner[predicate] = root

        groups: Dict[int, List[Tuple[int, object]]] = {}
        for position, request in requests:
            groups.setdefault(find(position), []).append((position, request))
        # Re-point stale owners at their final roots (unions may have
        # re-rooted a predicate's claimed group after it was recorded).
        units: List[StratumUnit] = []
        for root in sorted(groups):
            members = groups[root]
            unit_deletions = tuple(
                request
                for position, request in members
                if isinstance(request, DeletionRequest)
            )
            unit_insertions = tuple(
                request
                for position, request in members
                if isinstance(request, InsertionRequest)
            )
            predicates = frozenset(
                request.atom.predicate for _, request in members
            )
            write_closure = frozenset().union(
                *(closures[position] for position, _ in members)
            )
            strata = tuple(
                sorted({self.stratum_of(predicate) for predicate in write_closure})
            )
            units.append(
                StratumUnit(
                    predicates=predicates,
                    write_closure=write_closure,
                    strata=strata,
                    deletions=unit_deletions,
                    insertions=unit_insertions,
                    order=min(position for position, _ in members),
                )
            )
        units.sort(key=lambda unit: unit.order)
        return tuple(units)
