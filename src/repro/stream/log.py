"""The update-stream transaction log.

Accepts the paper's three update kinds -- insertion requests, deletion
requests (Section 3) and external source-change notices (Section 4) -- as
timestamped transactions in arrival order.  The log is the only producer /
consumer hand-off point of the subsystem: writers ``append`` from any
thread, the scheduler ``drain``\\ s a batch atomically, and everything that
was ever appended stays readable for audits.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.maintenance.requests import DeletionRequest, InsertionRequest

UpdateRequest = Union[DeletionRequest, InsertionRequest]


@dataclass(frozen=True)
class ExternalChangeNotice:
    """Notification that an integrated external source changed.

    Carries the net effect when the producer knows it (rows whose net effect
    over the notified interval is an insertion / deletion, in the sense of
    :meth:`repro.reldb.changelog.ChangeLog.inserted_rows`); an empty notice
    just says "something about *source* changed".  Under the ``W_P``
    maintenance discipline the scheduler needs no row detail at all -- the
    view is syntactically invariant (Theorem 4) and only the solver's
    external memos must be dropped -- so the rows exist for reporting and
    for ``T_P``-style consumers.
    """

    source: str
    added_rows: Tuple[Tuple[object, ...], ...] = ()
    removed_rows: Tuple[Tuple[object, ...], ...] = ()
    version: Optional[int] = None

    def __str__(self) -> str:
        return (
            f"external change {self.source}"
            f" (+{len(self.added_rows)}/-{len(self.removed_rows)} rows)"
        )


StreamPayload = Union[UpdateRequest, ExternalChangeNotice]


@dataclass(frozen=True)
class Transaction:
    """One logged stream event: a payload plus its position and wall time."""

    txn_id: int
    timestamp: float
    payload: StreamPayload

    def __str__(self) -> str:
        return f"txn {self.txn_id} @ {self.timestamp:.6f}: {self.payload}"


class UpdateLog:
    """An append-only, thread-safe log of update transactions.

    ``append`` assigns monotonically increasing transaction ids (the
    stream's total order; wall-clock timestamps are attached for operators
    but never used for ordering).  ``drain`` atomically hands the pending
    suffix to the caller -- the scheduler turns exactly one drain into one
    coalesced batch -- while the full history stays available.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        first_txn_id: int = 1,
    ) -> None:
        # The clock is injectable so tests (and replay tooling) can stamp
        # transactions deterministically; the stream layer otherwise bans
        # direct wall-clock / randomness calls (see tools/lint_rules.py).
        self._clock: Callable[[], float] = clock if clock is not None else time.time
        self._lock = threading.Lock()
        # ``first_txn_id`` exists for recovery: a fresh process's log would
        # otherwise restart ids at 1, colliding with the journaled/replayed
        # transactions of its previous life.  The durability layer passes
        # the persisted high-water mark + 1.
        if not isinstance(first_txn_id, int) or first_txn_id < 1:
            raise ValueError(
                f"first_txn_id must be a positive int: {first_txn_id!r}"
            )
        self._ids = itertools.count(first_txn_id)
        self._transactions: List[Transaction] = []
        self._consumed = 0

    def append(self, payload: StreamPayload) -> Transaction:
        """Log one request / notice; returns the recorded transaction."""
        if not isinstance(
            payload, (DeletionRequest, InsertionRequest, ExternalChangeNotice)
        ):
            raise TypeError(f"not a stream payload: {payload!r}")
        with self._lock:
            transaction = Transaction(next(self._ids), self._clock(), payload)
            self._transactions.append(transaction)
            return transaction

    def extend(self, payloads) -> Tuple[Transaction, ...]:
        """Log several payloads in order."""
        return tuple(self.append(payload) for payload in payloads)

    def __len__(self) -> int:
        with self._lock:
            return len(self._transactions)

    def __iter__(self):
        return iter(self.history())

    def history(self) -> Tuple[Transaction, ...]:
        """Every transaction ever logged, in order."""
        with self._lock:
            return tuple(self._transactions)

    def pending(self) -> Tuple[Transaction, ...]:
        """Transactions appended since the last :meth:`drain` (not consumed)."""
        with self._lock:
            return tuple(self._transactions[self._consumed:])

    def pending_count(self) -> int:
        """How many transactions a drain would return right now."""
        with self._lock:
            return len(self._transactions) - self._consumed

    def drain(self, limit: Optional[int] = None) -> Tuple[Transaction, ...]:
        """Atomically consume and return the pending transactions.

        With *limit*, at most that many transactions are consumed (oldest
        first); the rest stay pending for the next drain.  The serve
        layer's writer uses this to bound batch size under load instead of
        swallowing an arbitrarily large backlog in one maintenance pass.
        """
        with self._lock:
            end = len(self._transactions)
            if limit is not None:
                end = min(end, self._consumed + max(0, limit))
            batch = tuple(self._transactions[self._consumed:end])
            self._consumed = end
            return batch


def notice_from_changelog(
    changelog,
    from_version: int,
    to_version: int,
    table: Optional[str] = None,
    source: Optional[str] = None,
) -> ExternalChangeNotice:
    """Summarize a :class:`~repro.reldb.changelog.ChangeLog` interval.

    The notice carries the interval's *net effect* (the changelog's own
    insert/delete cancellation), so a row inserted and deleted inside the
    interval never reaches the stream at all -- the relational layer's
    version of the coalescer's cancellation rule.
    """
    return ExternalChangeNotice(
        source=source or table or "reldb",
        added_rows=tuple(changelog.inserted_rows(from_version, to_version, table)),
        removed_rows=tuple(changelog.deleted_rows(from_version, to_version, table)),
        version=to_version,
    )


def attach_changelog(
    log: UpdateLog,
    changelog,
    source: Optional[str] = None,
) -> Callable[[], None]:
    """Subscribe *log* to a table change log; returns the detach callable.

    Every change the relational layer records is forwarded to the update
    log as an :class:`ExternalChangeNotice` (one notice per change; the
    coalescer compacts consecutive notices of one source).  This is how
    base-table writes behind the domain layer reach the same stream as the
    view-level requests.
    """

    def forward(change) -> None:
        kind = getattr(change.kind, "value", str(change.kind))
        added: Tuple[Tuple[object, ...], ...] = ()
        removed: Tuple[Tuple[object, ...], ...] = ()
        if kind == "insert":
            added = (change.row,)
        elif kind == "delete":
            removed = (change.row,)
        else:  # update = delete old + insert new
            added = (change.row,)
            if change.old_row is not None:
                removed = (change.old_row,)
        log.append(
            ExternalChangeNotice(
                source=source or change.table,
                added_rows=added,
                removed_rows=removed,
                version=change.version,
            )
        )

    return changelog.subscribe(forward)
