"""The stream scheduler: one maintenance pass per algorithm per batch.

``StreamScheduler`` owns a materialized view and applies drained update
batches to it with the batch entry points of the maintenance algorithms:

* all of a unit's deletions go through **one**
  :meth:`~repro.maintenance.delete_stdel.StraightDelete.delete_many` /
  :meth:`~repro.maintenance.delete_dred.ExtendedDRed.delete_many` pass (one
  ``P_OUT`` unfolding, one rename/simplify regime, one final purge, the
  child-support index shared across the whole batch);
* all of a unit's insertions go through one
  :meth:`~repro.maintenance.insert.ConstrainedAtomInsertion.insert_many`
  pass (one ``P_ADD`` fixpoint seeded with every inserted atom);
* external change notices cost nothing: under the ``W_P`` reading of
  Section 4 the view is syntactically invariant (Theorem 4), so the
  scheduler only drops the solver's external memos -- the registry version
  token already does this for well-behaved sources, the explicit
  invalidation covers sources mutated behind the domain layer's back.

Independent strata (disjoint upward closures, see
:mod:`repro.stream.strata`) are applied as separate units -- concurrently
on a ``ThreadPoolExecutor`` when ``max_workers > 1`` -- and each unit is
individually retried and reported.  Each unit *checks out* exactly the
shards of its write closure from the predicate-sharded view
(:meth:`~repro.datalog.view.MaterializedView.checkout`): copy-on-write
clones only the shards the unit actually rewrites, parallel units write
their clones in place, and the batch publishes by adopting the applied
units' shard pointers into the next view -- no whole-view copy, no
entry-by-entry merge.  Readers are snapshot-isolated: the scheduler
publishes a new view reference only after the whole batch applied, so a
query served mid-batch sees the complete pre-batch view.

**Batch pipeline.**  Applying a batch is two stages with separate locks:

1. *Prepare* (:meth:`StreamScheduler.prepare_batch`, under the coalesce
   lock): compute the batch's net effect, partition it into stratum units
   and register an admission claim.  Preparing batch ``n+1`` runs
   concurrently with applying batch ``n`` -- the coalescer never waits for
   a maintenance pass.
2. *Apply* (:meth:`StreamScheduler.apply_prepared`): wait for admission,
   run the units against the published view, and commit with a single
   pointer swap under the (tiny) commit lock.

Admission is decided by the static analyzer's *closure groups* (connected
components of the undirected dependency graph): two prepared batches whose
write closures fall in disjoint groups cannot read or write any common
predicate, so they apply **fully concurrently** and each commits by
adopting only its own groups' shard pointers onto the latest published
view.  Conflicting (or group-less) batches are admitted strictly in
prepare order -- a claim never waits on a later claim, so admission is
deadlock-free and the stream's total order is preserved wherever it can
matter.  ``StreamOptions(concurrent_batches=False)`` restores the fully
serialized one-big-lock behaviour (every batch exclusive); benchmarks use
it as the baseline.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis import ProgramReport, analyze_program
from repro.constraints.solver import ConstraintSolver
from repro.datalog.fixpoint import compute_tp_fixpoint
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.errors import MaintenanceError, ShardSanitizerError, WriteScopeError
from repro.sanitizer import sanitizer_enabled
from repro.maintenance.declarative import deletion_rewrite, insertion_rewrite
from repro.maintenance.delete_dred import DRedOptions, ExtendedDRed
from repro.maintenance.delete_stdel import StDelOptions, StraightDelete
from repro.maintenance.insert import ConstrainedAtomInsertion, InsertionOptions
from repro.maintenance.requests import (
    DeletionRequest,
    InsertionRequest,
    MaintenanceStats,
)
from repro.obs import Observability
from repro.obs.trace import Span, Trace
from repro.stream.coalesce import CoalescedBatch, CoalesceReport, Coalescer
from repro.stream.log import ExternalChangeNotice, StreamPayload, Transaction, UpdateLog
from repro.stream.strata import (
    PredicateStrata,
    StratumUnit,
    check_disjoint_write_closures,
)


def _default_max_workers() -> int:
    """Worker-count default, overridable via ``REPRO_STREAM_MAX_WORKERS``.

    CI sets the variable to force every stream test through the parallel
    scheduling path (the ``parallel == sequential`` invariant is then
    exercised on every push, not only where a test opts in); explicit
    ``max_workers=...`` arguments always win over the environment.
    """
    raw = os.environ.get("REPRO_STREAM_MAX_WORKERS", "")
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        # Falling back silently would quietly disable the parallel path CI
        # exists to force (a typo'd "4x" or "four" used to mean "1 worker,
        # no warning") -- say so loudly instead.
        warnings.warn(
            f"REPRO_STREAM_MAX_WORKERS={raw!r} is not an integer; "
            "falling back to 1 worker (parallel scheduling disabled)",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def _describe_groups(group_ids: Optional[FrozenSet[int]]) -> str:
    """Closure-group claim as a span attribute ('exclusive' = conflicts
    with everything)."""
    if group_ids is None:
        return "exclusive"
    return ",".join(str(gid) for gid in sorted(group_ids)) or "-"


@dataclass(frozen=True)
class StreamOptions:
    """Tunable behaviour of the stream scheduler."""

    #: Deletion algorithm for the batched pass (``stdel`` or ``dred``).
    #: StDel runs against the *original* program (it never rederives, so the
    #: deletion rewrites are irrelevant to it -- the documented advantage);
    #: DRed runs against the threaded rewritten program it requires.
    deletion_algorithm: str = "stdel"
    #: Compute the net effect of a batch before applying it.
    coalesce: bool = True
    #: Threads for independent strata (1 = apply units sequentially; the
    #: default honours ``REPRO_STREAM_MAX_WORKERS`` so CI can force the
    #: parallel path across the whole stream suite).
    max_workers: int = field(default_factory=_default_max_workers)
    #: How often a failing unit is attempted before it is reported failed.
    max_unit_attempts: int = 2
    #: Admit batches whose write closures fall in disjoint closure groups
    #: concurrently (each commits its own shard pointers).  ``False``
    #: restores the fully serialized one-batch-at-a-time behaviour -- the
    #: baseline the serve benchmark measures against.
    concurrent_batches: bool = True
    stdel: StDelOptions = StDelOptions()
    dred: DRedOptions = DRedOptions()
    insertion: InsertionOptions = InsertionOptions()
    #: Observability hook, called with each finished :class:`UnitReport`
    #: *before* the batch publishes (tests use it to observe snapshot
    #: isolation; operators can stream progress from it).
    on_unit_complete: Optional[Callable[["UnitReport"], None]] = None


@dataclass
class UnitReport:
    """Outcome of one stratum unit of one batch."""

    description: str
    predicates: Tuple[str, ...]
    strata: Tuple[int, ...]
    deletions: int
    insertions: int
    #: How many times the unit was attempted (1 = first try succeeded).
    attempts: int
    status: str  # "applied" | "failed"
    error: Optional[str] = None
    stats: MaintenanceStats = field(default_factory=MaintenanceStats)
    seconds: float = 0.0
    #: Every predicate the unit was allowed to rewrite (its checkout scope).
    write_closure: Tuple[str, ...] = ()
    #: Predicate shards the unit's passes actually cloned (copy-on-write).
    #: Untouched predicates -- inside or outside the closure -- cost nothing.
    shard_checkouts: int = 0


@dataclass
class StreamStats:
    """Per-batch statistics of the stream scheduler."""

    #: Requests submitted to the batch (before coalescing).
    submitted: int = 0
    #: Requests that survived coalescing and were applied.
    applied: int = 0
    coalesce: CoalesceReport = field(default_factory=CoalesceReport)
    units: List[UnitReport] = field(default_factory=list)
    #: External notices folded in (cost-free under ``W_P``).
    external_notices: int = 0
    #: Wall time spent *waiting* -- coalesce-lock wait plus admission wait
    #: behind conflicting in-flight batches.  Kept apart from
    #: :attr:`apply_seconds` so a batch queued behind another does not
    #: report inflated apply cost.
    queue_seconds: float = 0.0
    #: Wall time spent doing the batch's own work: coalescing, the
    #: maintenance passes, and the commit pointer swap.
    apply_seconds: float = 0.0
    #: Total = queue + apply (the historical ``seconds`` reading).
    seconds: float = 0.0
    #: True when a disjoint-group batch committed while this one was
    #: applying, so the commit rebased onto the newer published view.
    rebased: bool = False

    def totals(self) -> MaintenanceStats:
        """All units' maintenance counters, summed."""
        total = MaintenanceStats()
        for unit in self.units:
            total.merge(unit.stats)
        return total

    @property
    def derivation_attempts(self) -> int:
        return sum(unit.stats.derivation_attempts for unit in self.units)

    @property
    def solver_calls(self) -> int:
        return sum(unit.stats.solver_calls for unit in self.units)

    @property
    def shard_checkouts(self) -> int:
        """Predicate shards cloned (copy-on-write) across the batch's units.

        The predicate-sharded store's headline number: bounded by the units'
        write closures, independent of how many predicates the view holds --
        untouched predicates are never copied.
        """
        return sum(unit.shard_checkouts for unit in self.units)

    def as_dict(self) -> Dict[str, object]:
        """Flat rendering for benchmark snapshots."""
        return {
            "submitted": self.submitted,
            "applied": self.applied,
            "units": len(self.units),
            "failed_units": sum(1 for unit in self.units if unit.status != "applied"),
            "external_notices": self.external_notices,
            "shard_checkouts": self.shard_checkouts,
            "queue_seconds": round(self.queue_seconds, 4),
            "apply_seconds": round(self.apply_seconds, 4),
            "seconds": round(self.seconds, 4),
            "rebased": self.rebased,
            "coalesce": self.coalesce.as_dict(),
            "stats": self.totals().as_dict(),
        }


@dataclass
class BatchResult:
    """Outcome of applying one batch."""

    view: MaterializedView
    stats: StreamStats
    coalesced: CoalescedBatch

    @property
    def failed_units(self) -> Tuple[UnitReport, ...]:
        return tuple(
            unit for unit in self.stats.units if unit.status != "applied"
        )

    @property
    def ok(self) -> bool:
        return not self.failed_units


@dataclass
class PreparedBatch:
    """A coalesced, partitioned batch holding an admission claim.

    Produced by :meth:`StreamScheduler.prepare_batch` (stage 1 of the
    pipeline) and consumed exactly once by
    :meth:`StreamScheduler.apply_prepared` -- or released without applying
    via :meth:`StreamScheduler.abandon_prepared`.  Until one of the two
    happens, the claim blocks admission of every later *conflicting* batch,
    so a prepared batch must not be parked indefinitely.
    """

    coalesced: CoalescedBatch
    #: ``(phase, units)`` pairs, in application order (one pair when the
    #: batch was coalesced; one per same-kind run otherwise).
    phases: Tuple[Tuple[CoalescedBatch, Tuple[StratumUnit, ...]], ...]
    #: The batch's stats object; prepare fills the coalesce counters, apply
    #: fills the rest (shared by reference with the scheduler's history).
    stats: StreamStats
    #: Closure groups the batch writes -- the admission key.  ``None`` means
    #: the batch is exclusive (conflicts with everything): concurrent
    #: admission disabled, no group table, or a predicate the analyzer
    #: never saw.
    group_ids: Optional[FrozenSet[int]]
    #: Admission ticket (prepare order; lower tickets are admitted first
    #: among conflicting claims).
    ticket: int
    #: Time spent inside prepare (coalescing + partitioning); folded into
    #: :attr:`StreamStats.apply_seconds` when the batch applies.
    prepare_seconds: float
    #: Ids of the logged transactions this batch drains (empty when the
    #: payloads were raw requests, e.g. direct ``apply_batch`` calls).  The
    #: durability layer marks these committed -- and advances the snapshot
    #: watermark -- from the commit hook.
    txn_ids: Tuple[int, ...] = ()
    #: The batch's lifecycle trace (``None`` when tracing is off).  Born at
    #: drain (or at prepare for raw batches), finished by the scheduler's
    #: batch epilogue after commit.
    trace: Optional[Trace] = None

    def __len__(self) -> int:
        return len(self.coalesced)


class StreamScheduler:
    """Maintains one materialized view across batched update streams."""

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        view: Optional[MaterializedView] = None,
        options: StreamOptions = StreamOptions(),
        log: Optional[UpdateLog] = None,
        effective_program: Optional[ConstrainedDatabase] = None,
        deletion_program: Optional[ConstrainedDatabase] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if options.deletion_algorithm not in ("stdel", "dred"):
            raise MaintenanceError(
                f"unknown deletion algorithm {options.deletion_algorithm!r};"
                " use 'stdel' or 'dred'"
            )
        self._program = program
        self._solver = solver or ConstraintSolver()
        self._options = options
        self._published = (
            view if view is not None else compute_tp_fixpoint(program, self._solver)
        )
        # Static analysis once, up front: the scheduler consumes the report's
        # write closures / SCCs / closure groups as precomputed truth (no
        # runtime dependency walks; under the sanitizer the walks come back
        # as audits).  Diagnostics are NOT gated here -- the mediator builder
        # fails fast on them; a bare scheduler only needs the tables.
        self._report: ProgramReport = analyze_program(program)
        self._strata = PredicateStrata.from_report(program, self._report)
        # Thread the interval-position table into the maintenance passes'
        # configurations (unless a caller pinned one explicitly).
        eligible = self._report.interval_positions
        stdel = options.stdel
        dred = options.dred
        insertion = options.insertion
        if dred.fixpoint.range_eligible is None:
            dred = replace(
                dred, fixpoint=replace(dred.fixpoint, range_eligible=eligible)
            )
        if insertion.range_eligible is None:
            insertion = replace(insertion, range_eligible=eligible)
        if dred is not options.dred or insertion is not options.insertion:
            options = replace(options, stdel=stdel, dred=dred, insertion=insertion)
        self._options = options
        self._coalescer = Coalescer(
            self._solver,
            dedupe_insertions=options.insertion.exclude_existing,
        )
        self._log = log if log is not None else UpdateLog()
        #: The program DRed deletions run against (threads the rewrites the
        #: algorithm's rederivation step requires; == original for StDel).
        #: Recovery passes the persisted rewritten program explicitly --
        #: starting from the base program would lose every pre-snapshot
        #: rewrite and let replayed insertions re-derive deleted instances.
        self._deletion_program = (
            deletion_program if deletion_program is not None else program
        )
        #: The original program composed with every applied rewrite -- the
        #: declarative semantics of everything applied so far (verify()).
        self._effective_program = (
            effective_program if effective_program is not None else program
        )
        # Stage-1 lock: coalescing + partitioning (prepare_batch).  Held
        # only while computing a batch's net effect -- never during a
        # maintenance pass, so batch n+1 coalesces while batch n applies.
        self._coalesce_lock = threading.Lock()
        # Stage-2 lock: the commit pointer swap plus the program rewrites
        # (and any reader needing a consistent view/program pair).  Held
        # for O(#shards) pointer work, never for maintenance.
        self._commit_lock = threading.Lock()
        # Admission: prepared batches carry tickets (prepare order) and the
        # closure groups they write; a batch applies once no earlier ticket
        # holds a conflicting claim.  Disjoint-group batches overlap fully.
        self._admission = threading.Condition()
        self._tickets = itertools.count(1)
        self._claims: Dict[int, Optional[FrozenSet[int]]] = {}
        self._active: Set[int] = set()
        self._inflight_peak = 0
        self._concurrent_commits = 0
        self._batches: List[StreamStats] = []
        # Observability: one bundle threaded through every seam.  Traces
        # created at drain wait here (keyed by first txn id) for the
        # prepare stage to claim -- drain and prepare may run on different
        # threads (the serve layer's writer pipeline).
        self._obs = obs if obs is not None else Observability.disabled()
        self._trace_lock = threading.Lock()
        self._pending_traces: Dict[int, Trace] = {}

    # ------------------------------------------------------------------
    # Introspection & snapshot-isolated reads
    # ------------------------------------------------------------------
    @property
    def view(self) -> MaterializedView:
        """The last *published* view.

        Mid-batch this is still the complete pre-batch view (snapshot
        isolation): the scheduler works on private copies and swaps the
        reference only once the whole batch has applied.  Treat it as
        read-only.
        """
        return self._published

    def snapshot(self) -> MaterializedView:
        """An independent copy of the published view (safe to mutate)."""
        return self._published.copy()

    def query(self, predicate: str, universe=None):
        """Ground instances of *predicate* from the published view."""
        return self._published.instances_for(
            predicate, solver=self._solver, universe=universe
        )

    @property
    def program(self) -> ConstrainedDatabase:
        return self._program

    @property
    def effective_program(self) -> ConstrainedDatabase:
        """Original program composed with every rewrite applied so far."""
        return self._effective_program

    @property
    def options(self) -> StreamOptions:
        return self._options

    @property
    def report(self) -> ProgramReport:
        """The static-analysis report the scheduler's tables come from."""
        return self._report

    @property
    def log(self) -> UpdateLog:
        """The transaction log this scheduler drains."""
        return self._log

    @property
    def batches(self) -> Tuple[StreamStats, ...]:
        """Per-batch statistics, in application order."""
        return tuple(self._batches)

    @property
    def obs(self) -> Observability:
        """The observability bundle this scheduler reports into."""
        return self._obs

    # ------------------------------------------------------------------
    # Submitting & applying
    # ------------------------------------------------------------------
    def submit(self, payload: StreamPayload) -> Transaction:
        """Log one request / notice for the next :meth:`flush`."""
        return self._log.append(payload)

    def drain(self, limit: Optional[int] = None) -> Tuple[Transaction, ...]:
        """Consume the log's pending transactions for one batch.

        The single seam between the update log and the batch pipeline: the
        serve layer's writer and :meth:`flush` both come through here, so a
        subclass that journals drained batches (the durability layer's
        scheduler) interposes once and covers every write path.

        When tracing is on, the batch's trace is born here -- drain is the
        first thing that happens to a batch -- and parked until
        :meth:`prepare_batch` claims it by the first transaction id (the
        serve writer drains and prepares on different pool threads).
        """
        if not self._obs.trace_enabled:
            return self._log.drain(limit=limit)
        trace = self._obs.start_trace("batch")
        span = trace.span("drain")
        transactions = self._log.drain(limit=limit)
        if not transactions:
            # Nothing drained: drop the trace unfinished (no span was
            # finished, so no event was emitted).
            return transactions
        span.set(
            transactions=len(transactions),
            txn_first=transactions[0].txn_id,
            txn_last=transactions[-1].txn_id,
        ).finish()
        with self._trace_lock:
            self._pending_traces[transactions[0].txn_id] = trace
        return transactions

    def _pending_trace_for(
        self, transactions: Sequence[Transaction]
    ) -> Optional[Trace]:
        """Peek (without claiming) the trace a drain parked for a batch.

        The durability subclass wraps its WAL append in a child span while
        the batch is between drain and prepare."""
        if not transactions:
            return None
        with self._trace_lock:
            return self._pending_traces.get(transactions[0].txn_id)

    def _trace_for_payloads(
        self, payloads: Sequence[StreamPayload]
    ) -> Optional[Trace]:
        """Claim the batch's parked trace, or start one for raw payloads.

        Batches that bypass drain (direct ``apply_batch`` calls, recovery
        replay) still get a trace -- just without a drain span, which is
        why trace verification takes a ``require_drain`` flag."""
        if not self._obs.trace_enabled or not payloads:
            return None
        first = payloads[0]
        if isinstance(first, Transaction):
            with self._trace_lock:
                trace = self._pending_traces.pop(first.txn_id, None)
            if trace is not None:
                return trace
        return self._obs.start_trace("batch")

    def flush(self) -> BatchResult:
        """Drain the log and apply the pending transactions as one batch."""
        return self.apply_batch(self.drain())

    def apply_batch(
        self,
        payloads: Sequence[StreamPayload],
        coalesce: Optional[bool] = None,
    ) -> BatchResult:
        """Apply one ordered batch of requests / notices.

        The batch is coalesced (unless disabled), partitioned into
        independent stratum units, applied -- deletions first, then
        insertions, matching the net-effect construction of the coalescer --
        and published atomically at the end.  Equivalent to
        :meth:`prepare_batch` immediately followed by
        :meth:`apply_prepared`; callers that want the two stages pipelined
        (the serve layer's writer) call them separately.
        """
        return self.apply_prepared(self.prepare_batch(payloads, coalesce))

    def prepare_batch(
        self,
        payloads: Sequence[StreamPayload],
        coalesce: Optional[bool] = None,
    ) -> PreparedBatch:
        """Stage 1: coalesce, partition, and claim admission for one batch.

        Runs under the coalesce lock only -- preparing the next batch never
        waits for an in-flight maintenance pass.  The returned batch holds
        an admission ticket in prepare order; it must be handed to
        :meth:`apply_prepared` (or :meth:`abandon_prepared`) because the
        claim blocks later conflicting batches until released.
        """
        queued = time.perf_counter()
        with self._coalesce_lock:
            start = time.perf_counter()
            stats = StreamStats()
            stats.queue_seconds = start - queued
            trace = self._trace_for_payloads(payloads)
            prepare_span = (
                trace.span("prepare") if trace is not None else None
            )
            effective_coalesce = (
                self._options.coalesce if coalesce is None else coalesce
            )
            if effective_coalesce:
                coalesce_span = (
                    trace.span("coalesce", parent=prepare_span)
                    if trace is not None
                    else None
                )
                coalesced = self._coalescer.coalesce(payloads)
                if coalesce_span is not None:
                    coalesce_span.set(
                        raw_ops=coalesced.report.submitted,
                        coalesced_ops=len(coalesced),
                    ).finish()
                stats.coalesce = coalesced.report
                stats.submitted = coalesced.report.submitted
                # One phase: the coalescer's cancel/narrow pass is exactly
                # what makes deletions-first-then-insertions reproduce the
                # interleaved stream's net effect.
                raw_phases = [coalesced]
            else:
                coalesced = self._raw_batch(payloads)
                stats.submitted = len(coalesced)
                # Without coalescing there is no cancel/narrow pass, so the
                # stream order must be preserved: consecutive same-kind runs
                # become phases, applied in order.
                raw_phases = self._raw_phases(payloads)
            stats.applied = len(coalesced)
            stats.external_notices = len(coalesced.notices)
            phases = tuple(
                (phase, self._strata.partition(phase.deletions, phase.insertions))
                for phase in raw_phases
            )
            # Register the claim before releasing the coalesce lock: ticket
            # order is then exactly prepare order, so conflicting batches
            # are admitted in the order their net effects were computed --
            # the stream's total order wherever it can matter.
            group_ids = self._closure_group_ids(phases)
            ticket = self._register_claim(group_ids)
            prepare_seconds = time.perf_counter() - start
            if prepare_span is not None:
                prepare_span.set(
                    units=sum(len(units) for _, units in phases),
                    groups=_describe_groups(group_ids),
                ).finish()
            metrics = self._obs.metrics
            if metrics.enabled:
                metrics.inc("repro_batches_prepared_total")
                metrics.observe("repro_prepare_seconds", prepare_seconds)
            return PreparedBatch(
                coalesced=coalesced,
                phases=phases,
                stats=stats,
                group_ids=group_ids,
                ticket=ticket,
                prepare_seconds=prepare_seconds,
                txn_ids=tuple(
                    payload.txn_id
                    for payload in payloads
                    if isinstance(payload, Transaction)
                ),
                trace=trace,
            )

    def apply_prepared(self, prepared: PreparedBatch) -> BatchResult:
        """Stage 2: admit, run the units, and commit one prepared batch.

        Blocks until every earlier-ticketed *conflicting* claim has
        released (committed or abandoned); batches writing disjoint closure
        groups are admitted immediately and run fully concurrently, each
        committing its own groups' shard pointers under the commit lock.
        """
        stats = prepared.stats
        trace = prepared.trace
        queued = time.perf_counter()
        admit_span = trace.span("admit") if trace is not None else None
        self._await_admission(prepared.ticket)
        admitted = time.perf_counter()
        stats.queue_seconds += admitted - queued
        if admit_span is not None:
            admit_span.set(
                ticket=prepared.ticket,
                groups=_describe_groups(prepared.group_ids),
            ).finish()
        try:
            coalesced = prepared.coalesced
            apply_span = trace.span("apply") if trace is not None else None

            # External changes first: the batch must be maintained against
            # the sources' *current* behaviour.  Under W_P-style memoization
            # the registry version token already invalidates stale results;
            # the explicit call covers behind-the-back mutations.
            if coalesced.notices:
                self._solver.invalidate_external_functions()

            # One consistent (view, programs) snapshot to maintain against.
            # A concurrent batch can commit while this one runs, but only a
            # *disjoint-group* one -- its view writes and clause rewrites
            # touch predicates this batch neither reads nor writes (closure
            # groups are connected components of the undirected dependency
            # graph), so the stale snapshot is maintenance-equivalent.
            with self._commit_lock:
                base = self._published
                local_effective = self._effective_program
                local_deletion = self._deletion_program

            working = base
            # Program rewrites of this batch's applied units, in unit
            # order; replayed onto the shared programs at commit (rewrites
            # of disjoint closure groups touch disjoint clause sets, so the
            # replay commutes with concurrently-committed batches').
            pending: List[Tuple[str, Tuple]] = []
            written: Set[str] = set()
            for phase, units in prepared.phases:
                outcomes = self._run_units(
                    working,
                    units,
                    local_effective,
                    local_deletion,
                    trace=trace,
                    parent=apply_span,
                )

                # Publish: each successful unit rewrote copy-on-write clones
                # of exactly its disjoint write closure's shards, so the
                # next view adopts those shard pointers; every other
                # predicate keeps the phase base's shards untouched.
                working = self._publish(working, units, outcomes)

                # Thread the programs for the successful units, in unit
                # order, before the next phase runs (its insertion passes
                # must see this phase's deletion rewrites).
                for unit, (result_view, report, del_result, ins_result) in zip(
                    units, outcomes
                ):
                    stats.units.append(report)
                    if report.status != "applied":
                        continue
                    written.update(unit.write_closure)
                    del_atoms = tuple(getattr(del_result, "del_atoms", ()) or ())
                    if del_atoms:
                        # Only DRed results carry Del atoms: StDel needs no
                        # threaded rewrite for its own deletions.
                        local_deletion = deletion_rewrite(
                            local_deletion, del_atoms
                        )
                        pending.append(("deletion", del_atoms))
                    if unit.deletions:
                        atoms = tuple(
                            request.atom for request in unit.deletions
                        )
                        for atom in atoms:
                            local_effective = deletion_rewrite(
                                local_effective, (atom,)
                            )
                        pending.append(("effective_delete", atoms))
                    if ins_result is not None and ins_result.add_atoms:
                        add_atoms = tuple(ins_result.add_atoms)
                        local_effective = insertion_rewrite(
                            local_effective, add_atoms
                        )
                        pending.append(("effective_insert", add_atoms))

            if apply_span is not None:
                apply_span.set(
                    units=len(stats.units),
                    failed=sum(
                        1 for unit in stats.units if unit.status != "applied"
                    ),
                ).finish()
            commit_span = trace.span("commit") if trace is not None else None
            next_view = self._commit(
                base, working, written, pending, stats, prepared
            )
            if commit_span is not None:
                commit_span.set(
                    shards=len(written), rebased=stats.rebased
                ).finish()
        finally:
            self._release_claim(prepared.ticket)
        stats.apply_seconds = prepared.prepare_seconds + (
            time.perf_counter() - admitted
        )
        stats.seconds = stats.queue_seconds + stats.apply_seconds
        self._batch_epilogue(prepared)
        return BatchResult(next_view, stats, prepared.coalesced)

    def _batch_epilogue(self, prepared: PreparedBatch) -> None:
        """Called once per batch after apply completes (timings final).

        The durability subclass interposes here to run its checkpoint
        policy inside the batch's trace before the trace seals.  The base
        implementation records the batch's metrics, finishes the trace,
        and applies the slow-batch policy."""
        stats = prepared.stats
        metrics = self._obs.metrics
        if metrics.enabled:
            metrics.inc("repro_batches_total")
            metrics.inc("repro_updates_applied_total", stats.applied)
            metrics.observe("repro_batch_seconds", stats.seconds)
            metrics.observe("repro_batch_queue_seconds", stats.queue_seconds)
            metrics.observe("repro_batch_apply_seconds", stats.apply_seconds)
            for unit in stats.units:
                metrics.inc("repro_units_total", status=unit.status)
            if stats.shard_checkouts:
                metrics.inc(
                    "repro_shard_checkouts_total", stats.shard_checkouts
                )
            if stats.rebased:
                metrics.inc("repro_rebased_commits_total")
            # Mirror the hash-consing tables once per batch: the intern
            # layer keeps its own monotonic totals, so this is a cheap
            # absolute-value sync, not a per-construction hot-path hook.
            metrics.record_intern()
        trace = prepared.trace
        if trace is not None:
            # Totals on the root are a convenience reading; reconciliation
            # sums the unit spans (TraceView.counter_totals skips roots).
            trace.root.set(
                applied=stats.applied,
                units=len(stats.units),
                failed=sum(
                    1 for unit in stats.units if unit.status != "applied"
                ),
                solver_calls=stats.solver_calls,
                derivation_attempts=stats.derivation_attempts,
                shard_checkouts=stats.shard_checkouts,
                rebased=stats.rebased,
            )
            trace.finish()
        self._obs.note_slow_batch(
            stats.seconds,
            trace=trace.trace_id if trace is not None else "-",
            applied=stats.applied,
            units=len(stats.units),
        )

    def abandon_prepared(self, prepared: PreparedBatch) -> None:
        """Release a prepared batch's admission claim without applying it."""
        self._release_claim(prepared.ticket)

    def verify(self, universe=None) -> bool:
        """Cross-check the published view against the effective program.

        Recomputes ``T_P_effective`` from scratch and compares instance sets
        -- the executable form of Theorems 1-3 for the whole stream.
        Expensive; for tests and audits.
        """
        from repro.maintenance.baselines import full_recompute

        # One atomic (view, program) pair: reading the two attributes
        # separately races a concurrent commit into a torn snapshot (a
        # pre-batch view checked against a post-batch program).
        published, effective = self.snapshot_state()
        expected = full_recompute(effective, self._solver).view
        return published.instances(
            self._solver, universe
        ) == expected.instances(self._solver, universe)

    def snapshot_state(self) -> Tuple[MaterializedView, ConstrainedDatabase]:
        """An atomically consistent (published view, effective program) pair.

        Readers pairing the view with the program it satisfies must come
        through here; the commit step swaps both under the same lock.
        """
        with self._commit_lock:
            return self._published, self._effective_program

    # ------------------------------------------------------------------
    # Admission & commit
    # ------------------------------------------------------------------
    @property
    def inflight_peak(self) -> int:
        """Most batches ever admitted (running) at the same time."""
        with self._admission:
            return self._inflight_peak

    @property
    def concurrent_commits(self) -> int:
        """Commits that rebased onto a concurrently-published view."""
        with self._commit_lock:
            return self._concurrent_commits

    @property
    def solver(self) -> ConstraintSolver:
        """The solver shared by maintenance passes and read queries."""
        return self._solver

    def _closure_group_ids(
        self,
        phases: Tuple[Tuple[CoalescedBatch, Tuple[StratumUnit, ...]], ...],
    ) -> Optional[FrozenSet[int]]:
        """The closure groups a prepared batch writes; ``None`` = exclusive.

        Concurrent admission is only sound when every written predicate has
        a group id: the analyzer's groups are connected components of the
        *undirected* dependency graph, so disjoint group sets guarantee
        disjoint read *and* write cones.  Any unknown predicate (or
        ``concurrent_batches=False``) downgrades the batch to exclusive.
        """
        if not self._options.concurrent_batches:
            return None
        groups = self._strata.groups
        if groups is None:
            return None
        ids: Set[int] = set()
        for _, units in phases:
            for unit in units:
                for predicate in unit.write_closure:
                    group = groups.get(predicate)
                    if group is None:
                        return None
                    ids.add(group)
        return frozenset(ids)

    @staticmethod
    def _claims_conflict(
        left: Optional[FrozenSet[int]], right: Optional[FrozenSet[int]]
    ) -> bool:
        if left is None or right is None:
            return True
        return bool(left & right)

    def _register_claim(self, group_ids: Optional[FrozenSet[int]]) -> int:
        with self._admission:
            ticket = next(self._tickets)
            self._claims[ticket] = group_ids
            return ticket

    def _await_admission(self, ticket: int) -> None:
        """Block until no earlier-ticketed conflicting claim remains.

        A claim only ever waits on strictly earlier tickets, so admission
        is deadlock-free, and conflicting batches are admitted in prepare
        order (FIFO per conflict class).
        """
        with self._admission:
            if ticket not in self._claims:
                raise MaintenanceError(
                    f"prepared batch (ticket {ticket}) was already applied "
                    "or abandoned"
                )
            mine = self._claims[ticket]
            while any(
                other < ticket and self._claims_conflict(groups, mine)
                for other, groups in self._claims.items()
            ):
                self._admission.wait()
            self._active.add(ticket)
            if len(self._active) > self._inflight_peak:
                self._inflight_peak = len(self._active)

    def _release_claim(self, ticket: int) -> None:
        with self._admission:
            self._claims.pop(ticket, None)
            self._active.discard(ticket)
            self._admission.notify_all()

    def _commit(
        self,
        base: MaterializedView,
        working: MaterializedView,
        written: Set[str],
        pending: List[Tuple[str, Tuple]],
        stats: StreamStats,
        prepared: Optional[PreparedBatch] = None,
    ) -> MaterializedView:
        """Swap in the batch's view and replay its program rewrites.

        The fast path (nothing committed since ``base`` was snapshotted)
        publishes ``working`` directly.  Otherwise a disjoint-group batch
        committed concurrently: rebase by copying the *current* published
        view and adopting only this batch's written closures' shard
        pointers from ``working`` -- adopting anything more would revert
        the sibling batch's shards.  Both paths are pointer work.
        """
        with self._commit_lock:
            current = self._published
            if working is base:
                # No unit applied; the view is unchanged (but failed-unit
                # stats still land in the history below).
                next_view = current
            elif current is base:
                next_view = working.without_write_scope()
                self._published = next_view
            else:
                stats.rebased = True
                self._concurrent_commits += 1
                next_view = current.copy()
                next_view.adopt_shards(working, sorted(written))
                self._published = next_view
            for kind, atoms in pending:
                if kind == "deletion":
                    self._deletion_program = deletion_rewrite(
                        self._deletion_program, atoms
                    )
                elif kind == "effective_delete":
                    for atom in atoms:
                        self._effective_program = deletion_rewrite(
                            self._effective_program, (atom,)
                        )
                else:
                    self._effective_program = insertion_rewrite(
                        self._effective_program, atoms
                    )
            self._batches.append(stats)
            self._commit_hook(prepared, next_view)
            return next_view

    def _commit_hook(
        self, prepared: Optional[PreparedBatch], next_view: MaterializedView
    ) -> None:
        """Called under the commit lock after every batch commits.

        The published view, effective program and deletion program are all
        current when this runs, so an override observes an atomically
        consistent post-commit state -- the durability layer uses it to
        mark the batch's transactions committed and capture checkpoint
        candidates.  The base implementation does nothing.  Overrides must
        stay cheap and must not call back into the scheduler: the commit
        lock is held."""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _raw_batch(payloads: Sequence[StreamPayload]) -> CoalescedBatch:
        """Wrap a batch without computing its net effect."""
        deletions: List[DeletionRequest] = []
        insertions: List[InsertionRequest] = []
        notices: List[ExternalChangeNotice] = []
        for payload in payloads:
            if isinstance(payload, Transaction):
                payload = payload.payload
            if isinstance(payload, DeletionRequest):
                deletions.append(payload)
            elif isinstance(payload, InsertionRequest):
                insertions.append(payload)
            elif isinstance(payload, ExternalChangeNotice):
                notices.append(payload)
            else:
                raise MaintenanceError(f"unknown update request: {payload!r}")
        return CoalescedBatch(
            tuple(deletions), tuple(insertions), tuple(notices), CoalesceReport()
        )

    @staticmethod
    def _raw_phases(payloads: Sequence[StreamPayload]) -> List[CoalescedBatch]:
        """Split an uncoalesced batch into consecutive same-kind runs.

        Without the coalescer's cancel/narrow pass, applying all deletions
        before all insertions would silently change the meaning of an
        insert-then-delete sequence; replaying the stream as alternating
        deletion-only / insertion-only phases preserves it exactly.
        """
        phases: List[CoalescedBatch] = []
        run: List[object] = []
        run_kind: Optional[type] = None

        def close_run() -> None:
            if not run:
                return
            if run_kind is DeletionRequest:
                phases.append(CoalescedBatch(tuple(run), (), ()))
            else:
                phases.append(CoalescedBatch((), tuple(run), ()))
            run.clear()

        for payload in payloads:
            if isinstance(payload, Transaction):
                payload = payload.payload
            if isinstance(payload, ExternalChangeNotice):
                continue
            kind = type(payload)
            if kind is not run_kind:
                close_run()
                run_kind = kind
            run.append(payload)
        close_run()
        return phases

    def _run_units(
        self,
        base: MaterializedView,
        units: Sequence[StratumUnit],
        effective: ConstrainedDatabase,
        deletion_program: ConstrainedDatabase,
        trace: Optional[Trace] = None,
        parent: Optional[Span] = None,
    ) -> List[tuple]:
        """Apply every unit (with retries), concurrently when configured.

        Each unit receives a *checkout* of the current view scoped to its
        write closure: shards it rewrites are cloned copy-on-write, shards
        it only reads stay shared with the base (and with the other units),
        and a write outside the closure raises instead of being silently
        dropped by the publish step.  The programs are the calling batch's
        local snapshots -- never the scheduler's shared attributes, which a
        concurrent disjoint-group commit may be rewriting.
        """
        workers = min(self._options.max_workers, len(units))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(
                        self._apply_unit_with_retry,
                        base.checkout(unit.write_closure),
                        unit,
                        effective,
                        deletion_program,
                        trace,
                        parent,
                    )
                    for unit in units
                ]
                outcomes = [future.result() for future in futures]
        else:
            outcomes = []
            current = base
            for unit in units:
                outcome = self._apply_unit_with_retry(
                    current.checkout(unit.write_closure),
                    unit,
                    effective,
                    deletion_program,
                    trace,
                    parent,
                )
                if outcome[1].status == "applied":
                    current = outcome[0]
                outcomes.append(outcome)
        return outcomes

    def _publish(
        self,
        base: MaterializedView,
        units: Sequence[StratumUnit],
        outcomes: Sequence[tuple],
    ) -> MaterializedView:
        """Combine unit results into the next published view (pointer swap).

        Sequential application already threaded the view through the units,
        so the last successful unit's result is complete.  Parallel units
        each hand over the shards of their own write closure; the closures
        are disjoint (re-checked here), so adoption order cannot matter and
        no unit's writes can overwrite another's.
        """
        applied = [
            (unit, outcome)
            for unit, outcome in zip(units, outcomes)
            if outcome[1].status == "applied"
        ]
        if not applied:
            return base
        if self._options.max_workers <= 1 or len(units) == 1:
            return applied[-1][1][0].without_write_scope()
        check_disjoint_write_closures(
            (unit for unit, _ in applied), groups=self._strata.groups
        )
        if sanitizer_enabled():
            # Torn-publish check: a unit whose result view rewrote a shard
            # outside its declared closure would have that write silently
            # dropped by the scoped adoption below -- fail loudly instead.
            for unit, (result_view, _, _, _) in applied:
                result_view.assert_publish_scope(base, unit.write_closure)
        merged = base.copy()
        for unit, (result_view, _, _, _) in applied:
            merged.adopt_shards(result_view, sorted(unit.write_closure))
        return merged

    def _apply_unit_with_retry(
        self,
        base: MaterializedView,
        unit: StratumUnit,
        effective: ConstrainedDatabase,
        deletion_program: ConstrainedDatabase,
        trace: Optional[Trace] = None,
        parent: Optional[Span] = None,
    ) -> tuple:
        """Run one unit up to ``max_unit_attempts`` times."""
        attempts = 0
        error: Optional[str] = None
        started = time.perf_counter()
        # The unit span is born *here*, on the worker thread, so the span's
        # thread field records the actual pool handoff.
        span = trace.span("unit", parent=parent) if trace is not None else None
        while attempts < max(1, self._options.max_unit_attempts):
            attempts += 1
            try:
                view, stats, del_result, ins_result = self._apply_unit(
                    base, unit, effective, deletion_program
                )
            except (WriteScopeError, ShardSanitizerError) as exc:
                # Sanitizer verdicts are deterministic facts about the code,
                # not transient unit failures: retrying would only repeat
                # (or worse, mask) the illegal write.  Fail the unit now.
                error = f"{type(exc).__name__}: {exc}"
                break
            except Exception as exc:  # individually retryable by design
                error = f"{type(exc).__name__}: {exc}"
                continue
            report = UnitReport(
                description=unit.describe(),
                predicates=tuple(sorted(unit.predicates)),
                strata=unit.strata,
                deletions=len(unit.deletions),
                insertions=len(unit.insertions),
                attempts=attempts,
                status="applied",
                stats=stats,
                seconds=time.perf_counter() - started,
                write_closure=tuple(sorted(unit.write_closure)),
                # Copy-on-write clones this unit's passes made on top of the
                # checkout it was handed (the counter is carried through
                # ``copy()``, so the difference is exactly this unit's own).
                shard_checkouts=view.shard_checkouts - base.shard_checkouts,
            )
            if span is not None:
                # Counter deltas come from the same stats object StreamStats
                # sums, so span deltas reconcile with scheduler totals
                # exactly, by construction.
                span.set(
                    unit=unit.describe(),
                    attempts=attempts,
                    status="applied",
                    solver_calls=stats.solver_calls,
                    derivation_attempts=stats.derivation_attempts,
                    shard_checkouts=report.shard_checkouts,
                ).finish()
            if self._options.on_unit_complete is not None:
                self._options.on_unit_complete(report)
            return (view, report, del_result, ins_result)
        report = UnitReport(
            description=unit.describe(),
            predicates=tuple(sorted(unit.predicates)),
            strata=unit.strata,
            deletions=len(unit.deletions),
            insertions=len(unit.insertions),
            attempts=attempts,
            status="failed",
            error=error,
            seconds=time.perf_counter() - started,
            write_closure=tuple(sorted(unit.write_closure)),
        )
        if span is not None:
            # Failed units contributed nothing to StreamStats' counters
            # (their attempts' work was discarded), so the span records
            # explicit zeros -- reconciliation stays exact.
            span.status = "error"
            span.set(
                unit=unit.describe(),
                attempts=attempts,
                status="failed",
                error=error,
                solver_calls=0,
                derivation_attempts=0,
                shard_checkouts=0,
            ).finish()
        if self._options.on_unit_complete is not None:
            self._options.on_unit_complete(report)
        return (base, report, None, None)

    def _apply_unit(
        self,
        base: MaterializedView,
        unit: StratumUnit,
        effective: ConstrainedDatabase,
        deletion_program: ConstrainedDatabase,
    ) -> tuple:
        """One unit = at most one batched deletion pass + one insertion pass."""
        stats = MaintenanceStats()
        current = base
        del_result = None
        if unit.deletions:
            # The purge scan is restricted to the unit's write closure: the
            # published view carries no unsolvable entries, so only entries
            # this unit's propagation can touch need the final solvability
            # sweep.
            purge = tuple(sorted(unit.write_closure))
            if self._options.deletion_algorithm == "stdel":
                del_result = StraightDelete(
                    self._program,
                    self._solver,
                    self._options.stdel,
                    metrics=self._obs.metrics,
                ).delete_many(current, unit.deletions, purge_predicates=purge)
            else:
                del_result = ExtendedDRed(
                    deletion_program,
                    self._solver,
                    self._options.dred,
                    metrics=self._obs.metrics,
                ).delete_many(current, unit.deletions, purge_predicates=purge)
            current = del_result.view
            stats.merge(del_result.stats)
        ins_result = None
        if unit.insertions:
            # The P_ADD unfolding must run against the program carrying
            # every deletion rewrite applied so far -- previous batches'
            # (already in the effective program) AND this unit's own, which
            # precede the insertions in batch order -- or it would re-derive
            # instances those deletions removed.  Other concurrent units'
            # deletions rewrite clauses outside this unit's closure and
            # cannot affect its unfolding.
            insert_program = effective
            if unit.deletions:
                insert_program = deletion_rewrite(
                    insert_program,
                    tuple(request.atom for request in unit.deletions),
                )
            ins_result = ConstrainedAtomInsertion(
                insert_program,
                self._solver,
                self._options.insertion,
                metrics=self._obs.metrics,
            ).insert_many(current, unit.insertions)
            current = ins_result.view
            stats.merge(ins_result.stats)
        return current, stats, del_result, ins_result
