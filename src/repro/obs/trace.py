"""Batch-lifecycle tracing: traces, spans, and JSON-lines exporters.

One *trace* follows one drained batch across every pipeline seam and every
thread it touches: ``drain`` (+ ``journal`` on durable schedulers) on the
drain thread, ``prepare``/``coalesce`` on the prepare thread, ``admit``,
``apply`` with one ``unit`` child span per stratum unit (each recording the
worker thread that ran it and the counter deltas it incurred), ``commit``
on the applying thread, and ``checkpoint`` when the durability policy
fires.  Spans carry **monotonic** timestamps only (``time.monotonic``;
``time.time`` is banned in this package by ``tools/lint_rules.py``) -- the
trace is a timeline, not a calendar, and wall clocks can step backwards
mid-batch.

A finished span is emitted as one JSON-lines event::

    {"type": "span", "trace": "t3", "span": 2, "parent": 1,
     "name": "unit", "start": 8.1231, "end": 8.1310, "thread": "...",
     "attrs": {"solver_calls": 4, ...}}

Root spans (``"parent": null``, name ``"batch"``) additionally carry the
number of spans the trace recorded, so a reader can detect truncated
traces.  Events are append-only and self-contained: the file needs no
header, can be tailed live, and interleaves safely when spans finish out
of order across threads (the exporter serializes writes under a lock).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: The one clock spans may use.  Monotonic by contract; injectable for
#: deterministic tests.
monotonic: Callable[[], float] = time.monotonic

_TRACE_IDS = itertools.count(1)


class Span:
    """One timed operation inside a trace.

    Usable as a context manager (an exception marks the span failed and
    re-raises) or finished explicitly via :meth:`finish`.  Attributes set
    after :meth:`finish` are lost -- the span has already been emitted.
    """

    __slots__ = (
        "trace",
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "thread",
        "attrs",
        "status",
        "_finished",
    )

    def __init__(
        self,
        trace: "Trace",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
    ) -> None:
        self.trace = trace
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.thread = threading.current_thread().name
        self.attrs: Dict[str, object] = {}
        self.status = "ok"
        self._finished = False

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (txn ranges, counter deltas, outcomes)."""
        self.attrs.update(attrs)
        return self

    def finish(self, end: Optional[float] = None) -> None:
        if self._finished:
            return
        self._finished = True
        self.end = monotonic() if end is None else end
        self.trace._record(self)

    @property
    def seconds(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.finish()


class Trace:
    """The span tree of one batch; thread-safe, emitted span by span."""

    def __init__(self, tracer: "Tracer", trace_id: str, name: str, start: float):
        self._tracer = tracer
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._span_ids = itertools.count(2)
        self._recorded = 0
        self._finished = False
        self.root = Span(self, name, span_id=1, parent_id=None, start=start)

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        start: Optional[float] = None,
    ) -> Span:
        """Open a child span (of *parent*, or of the root)."""
        with self._lock:
            span_id = next(self._span_ids)
        return Span(
            self,
            name,
            span_id=span_id,
            parent_id=(parent or self.root).span_id,
            start=monotonic() if start is None else start,
        )

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        """Record an already-measured interval as a completed span.

        Used where the caller only knows *after the fact* that the interval
        is worth a span (e.g. a checkpoint policy check that actually wrote
        a checkpoint).
        """
        span = self.span(name, parent=parent, start=start)
        span.set(**attrs)
        span.finish(end)
        return span

    def finish(self, end: Optional[float] = None) -> None:
        """End the root span and seal the trace (idempotent)."""
        with self._lock:
            if self._finished:
                return
            self._finished = True
        self.root.set(spans=self._recorded + 1)
        self.root.finish(end)

    # ------------------------------------------------------------------
    def _record(self, span: Span) -> None:
        with self._lock:
            self._recorded += 1
        self._tracer._export(
            {
                "type": "span",
                "trace": self.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": round(span.start, 6),
                "end": round(span.end, 6) if span.end is not None else None,
                "thread": span.thread,
                "status": span.status,
                "attrs": span.attrs,
            }
        )


class JsonLinesExporter:
    """Append trace events to a JSON-lines file (one event per line)."""

    def __init__(self, path) -> None:
        self._path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self._path, "a", encoding="utf-8")
        self.events_written = 0

    @property
    def path(self) -> str:
        return self._path

    def export(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self.events_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class RingExporter:
    """Keep the most recent trace events in memory (bounded deque).

    Backs the server's ``trace`` operation: operators can ask a live
    service for its recent batch timelines without any file plumbing.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=max(1, capacity))
        self.events_seen = 0

    def export(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)
            self.events_seen += 1

    def events(self) -> Tuple[dict, ...]:
        with self._lock:
            return tuple(self._events)

    def traces(self, limit: Optional[int] = None) -> List[dict]:
        """The most recent complete traces, oldest first, as summary dicts.

        A trace is *complete* once its root span ("batch", parent null) has
        been emitted; spans evicted from the ring leave a partial trace,
        which is reported with ``"truncated": true``.
        """
        by_trace: Dict[str, List[dict]] = {}
        order: List[str] = []
        for event in self.events():
            trace_id = event.get("trace")
            if trace_id not in by_trace:
                by_trace[trace_id] = []
                order.append(trace_id)
            by_trace[trace_id].append(event)
        summaries = []
        for trace_id in order:
            events = by_trace[trace_id]
            root = next((e for e in events if e.get("parent") is None), None)
            if root is None:
                continue  # still in flight (or root evicted)
            expected = root.get("attrs", {}).get("spans")
            summaries.append(
                {
                    "trace": trace_id,
                    "name": root.get("name"),
                    "seconds": round(
                        (root.get("end") or 0) - (root.get("start") or 0), 6
                    ),
                    "status": root.get("status"),
                    "attrs": root.get("attrs", {}),
                    "truncated": (
                        expected is not None and len(events) < expected
                    ),
                    "spans": sorted(
                        events, key=lambda e: (e.get("start") or 0, e.get("span"))
                    ),
                }
            )
        if limit is not None:
            summaries = summaries[-max(0, limit):]
        return summaries


class Tracer:
    """Creates traces and fans finished spans out to the exporters."""

    def __init__(self, exporters: Sequence[object] = ()) -> None:
        self._exporters = tuple(exporters)

    @property
    def exporters(self) -> Tuple[object, ...]:
        return self._exporters

    def start_trace(
        self, name: str = "batch", start: Optional[float] = None
    ) -> Trace:
        trace_id = f"t{next(_TRACE_IDS)}"
        return Trace(
            self, trace_id, name, monotonic() if start is None else start
        )

    def _export(self, event: dict) -> None:
        for exporter in self._exporters:
            exporter.export(event)
