"""Reading, verifying, and rendering JSON-lines trace files.

The serving pipeline emits one JSON object per finished span (see
``trace.py``); this module is the consumer side: ``repro trace <file>``
renders per-batch waterfalls and the top-k slowest spans, and the test
suite uses :func:`verify_batch_traces` to assert the acceptance criterion
that every applied batch carries a complete drain→commit span tree whose
counter deltas reconcile with the scheduler totals.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

#: Pipeline seams, in batch-lifecycle order; used for waterfall sorting
#: and for the completeness check.
SPAN_ORDER: Tuple[str, ...] = (
    "batch",
    "drain",
    "journal",
    "prepare",
    "coalesce",
    "admit",
    "apply",
    "unit",
    "commit",
    "checkpoint",
)

#: Spans every *applied* (non-empty, successfully drained) batch must have.
REQUIRED_SPANS: Tuple[str, ...] = ("prepare", "admit", "apply", "commit")

#: The per-span counter attrs that must reconcile with scheduler totals.
COUNTER_ATTRS: Tuple[str, ...] = (
    "solver_calls",
    "derivation_attempts",
    "shard_checkouts",
)


def read_events(path) -> List[dict]:
    """Parse a JSON-lines trace file, skipping blank/corrupt lines."""
    events = []
    with open(str(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict) and event.get("type") == "span":
                events.append(event)
    return events


def group_traces(events: Iterable[dict]) -> "List[TraceView]":
    """Group span events into :class:`TraceView` objects, oldest first."""
    by_trace: Dict[str, List[dict]] = {}
    order: List[str] = []
    for event in events:
        trace_id = event.get("trace")
        if trace_id is None:
            continue
        if trace_id not in by_trace:
            by_trace[trace_id] = []
            order.append(trace_id)
        by_trace[trace_id].append(event)
    return [TraceView(trace_id, by_trace[trace_id]) for trace_id in order]


class TraceView:
    """One reconstructed trace: spans indexed, tree-checked, summarizable."""

    def __init__(self, trace_id: str, spans: List[dict]) -> None:
        self.trace_id = trace_id
        self.spans = sorted(
            spans, key=lambda e: (e.get("start") or 0.0, e.get("span") or 0)
        )
        self.by_id = {e.get("span"): e for e in self.spans}
        self.root = next(
            (e for e in self.spans if e.get("parent") is None), None
        )

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return [e.get("name") for e in self.spans]

    def find(self, name: str) -> List[dict]:
        return [e for e in self.spans if e.get("name") == name]

    def counter_totals(self) -> Dict[str, int]:
        """Sum the counter attrs across the trace's non-root spans.

        Root spans carry the batch *totals* as convenience attrs; counting
        them would double every delta, so reconciliation sums only the
        spans that actually incurred the work (the ``unit`` spans).
        """
        totals = {attr: 0 for attr in COUNTER_ATTRS}
        for event in self.spans:
            if event.get("parent") is None:
                continue
            attrs = event.get("attrs") or {}
            for attr in COUNTER_ATTRS:
                value = attrs.get(attr)
                if isinstance(value, (int, float)):
                    totals[attr] += value
        return totals

    def problems(self, require_drain: bool = True) -> List[str]:
        """Structural defects: missing seams, orphans, bad nesting."""
        issues = []
        if self.root is None:
            return [f"{self.trace_id}: no root span"]
        expected = (self.root.get("attrs") or {}).get("spans")
        if isinstance(expected, int) and expected != len(self.spans):
            issues.append(
                f"{self.trace_id}: expected {expected} spans, "
                f"found {len(self.spans)}"
            )
        names = set(self.names())
        required = REQUIRED_SPANS + (("drain",) if require_drain else ())
        for name in required:
            if name not in names:
                issues.append(f"{self.trace_id}: missing '{name}' span")
        root_id = self.root.get("span")
        for event in self.spans:
            if event is self.root:
                continue
            parent_id = event.get("parent")
            parent = self.by_id.get(parent_id)
            if parent is None:
                issues.append(
                    f"{self.trace_id}: span {event.get('span')} "
                    f"('{event.get('name')}') has unknown parent {parent_id}"
                )
                continue
            start = event.get("start")
            p_start = parent.get("start")
            if (
                start is not None
                and p_start is not None
                and start + 1e-9 < p_start
            ):
                issues.append(
                    f"{self.trace_id}: span {event.get('span')} "
                    f"('{event.get('name')}') starts before its parent"
                )
            # Root ends last by construction; only check non-root parents.
            end = event.get("end")
            p_end = parent.get("end")
            if (
                parent_id != root_id
                and end is not None
                and p_end is not None
                and end - 1e-9 > p_end
            ):
                issues.append(
                    f"{self.trace_id}: span {event.get('span')} "
                    f"('{event.get('name')}') ends after its parent"
                )
        return issues


def verify_batch_traces(
    events: Iterable[dict],
    require_drain: bool = True,
    expected_totals: Optional[Dict[str, int]] = None,
) -> List[str]:
    """All structural problems across *events*, plus counter reconciliation.

    When *expected_totals* is given (scheduler ``StreamStats`` totals), the
    sum of per-span counter deltas across every trace must match exactly.
    An empty return value means the acceptance criterion holds.
    """
    traces = group_traces(events)
    issues: List[str] = []
    if not traces:
        issues.append("no traces found")
    for view in traces:
        issues.extend(view.problems(require_drain=require_drain))
    if expected_totals is not None:
        summed = {attr: 0 for attr in COUNTER_ATTRS}
        for view in traces:
            for attr, value in view.counter_totals().items():
                summed[attr] += value
        for attr in COUNTER_ATTRS:
            expected = expected_totals.get(attr)
            if expected is not None and summed[attr] != expected:
                issues.append(
                    f"counter '{attr}' does not reconcile: "
                    f"spans sum to {summed[attr]}, scheduler says {expected}"
                )
    return issues


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_waterfall(view: TraceView, width: int = 48) -> str:
    """An ASCII waterfall of one trace, bars scaled to the root span."""
    if view.root is None or not view.spans:
        return f"{view.trace_id}: (no root span)"
    origin = view.root.get("start") or 0.0
    total = max((view.root.get("end") or origin) - origin, 1e-9)
    lines = [
        "{} {} {:.3f}s {}".format(
            view.trace_id,
            view.root.get("name"),
            total,
            _attr_brief(view.root),
        )
    ]
    rank = {name: i for i, name in enumerate(SPAN_ORDER)}
    ordered = sorted(
        (e for e in view.spans if e is not view.root),
        key=lambda e: (
            e.get("start") or 0.0,
            rank.get(e.get("name"), len(SPAN_ORDER)),
            e.get("span") or 0,
        ),
    )
    for event in ordered:
        start = (event.get("start") or origin) - origin
        end = (event.get("end") or origin) - origin
        left = int(round(width * max(start, 0.0) / total))
        right = int(round(width * max(end, start) / total))
        bar = " " * min(left, width) + "#" * max(right - left, 1)
        depth = _depth(view, event)
        label = "  " * depth + (event.get("name") or "?")
        status = "" if event.get("status") == "ok" else " !"
        lines.append(
            "  {:<18} |{:<{width}}| {:>8.3f}s{} {}".format(
                label[:18],
                bar[:width],
                max(end - start, 0.0),
                status,
                _attr_brief(event),
                width=width,
            )
        )
    return "\n".join(lines)


def top_spans(
    events: Iterable[dict], k: int = 10, exclude_roots: bool = True
) -> List[dict]:
    """The *k* slowest spans across all traces, slowest first."""
    candidates = []
    for event in events:
        if exclude_roots and event.get("parent") is None:
            continue
        start, end = event.get("start"), event.get("end")
        if start is None or end is None:
            continue
        candidates.append((end - start, event))
    candidates.sort(key=lambda pair: pair[0], reverse=True)
    return [event for _, event in candidates[: max(0, k)]]


def render_top_spans(events: Iterable[dict], k: int = 10) -> str:
    lines = [f"top {k} slowest spans:"]
    for event in top_spans(events, k=k):
        lines.append(
            "  {:>9.3f}s  {:<10} {:<8} thread={} {}".format(
                (event.get("end") or 0) - (event.get("start") or 0),
                event.get("name") or "?",
                event.get("trace") or "?",
                event.get("thread") or "?",
                _attr_brief(event),
            )
        )
    if len(lines) == 1:
        lines.append("  (no spans)")
    return "\n".join(lines)


def _depth(view: TraceView, event: dict) -> int:
    depth, seen = 0, set()
    current = event
    while True:
        parent_id = current.get("parent")
        if parent_id is None or parent_id in seen:
            return depth
        seen.add(parent_id)
        parent = view.by_id.get(parent_id)
        if parent is None:
            return depth
        depth += 1
        current = parent


def _attr_brief(event: dict, limit: int = 5) -> str:
    attrs = event.get("attrs") or {}
    shown = [
        f"{key}={attrs[key]}"
        for key in sorted(attrs)
        if isinstance(attrs[key], (int, float, str)) and key != "spans"
    ][:limit]
    return " ".join(shown)
