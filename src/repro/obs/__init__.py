"""Unified observability: metrics registry, batch tracing, renderers.

See ``README.md`` in this package for the span-to-pipeline-seam map and
``config.Observability`` for the single handle every subsystem takes.
"""

from .config import (
    DEFAULT_SLOW_BATCH_SECONDS,
    OBS_DISABLED,
    Observability,
)
from .metrics import (
    DEFAULT_BUCKETS,
    MAINTENANCE_COUNTERS,
    Metrics,
    NULL_METRICS,
    NullMetrics,
)
from .render import (
    COUNTER_ATTRS,
    REQUIRED_SPANS,
    SPAN_ORDER,
    TraceView,
    group_traces,
    read_events,
    render_top_spans,
    render_waterfall,
    top_spans,
    verify_batch_traces,
)
from .trace import (
    JsonLinesExporter,
    RingExporter,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "COUNTER_ATTRS",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLOW_BATCH_SECONDS",
    "JsonLinesExporter",
    "MAINTENANCE_COUNTERS",
    "Metrics",
    "NULL_METRICS",
    "NullMetrics",
    "OBS_DISABLED",
    "Observability",
    "REQUIRED_SPANS",
    "RingExporter",
    "SPAN_ORDER",
    "Span",
    "Trace",
    "TraceView",
    "Tracer",
    "group_traces",
    "read_events",
    "render_top_spans",
    "render_waterfall",
    "top_spans",
    "verify_batch_traces",
]
