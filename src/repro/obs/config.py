"""The ``Observability`` bundle: one object carrying metrics + tracing.

Every injection point in the pipeline takes a single ``obs`` parameter
rather than separate metrics/tracer handles, so wiring a new subsystem is
one argument and disabling everything is one singleton
(:func:`Observability.disabled`).  Environment activation follows the
repo's existing ``REPRO_*`` convention:

``REPRO_OBS=1``
    Enable metrics + in-memory trace ring (the live operator surface).
``REPRO_OBS_TRACE_PATH=/path/file.jsonl``
    Additionally export trace events to a JSON-lines file (implies
    ``REPRO_OBS``).
``REPRO_OBS_SLOW_BATCH_MS=250``
    Log a warning for any batch whose drain→commit wall time exceeds the
    threshold (default 1000 ms; only meaningful when obs is enabled).
"""

from __future__ import annotations

import logging
import os
from typing import Optional

from .metrics import Metrics, NULL_METRICS, NullMetrics
from .trace import JsonLinesExporter, RingExporter, Trace, Tracer

logger = logging.getLogger("repro.obs")

DEFAULT_SLOW_BATCH_SECONDS = 1.0
DEFAULT_RING_CAPACITY = 4096


class Observability:
    """Metrics registry + tracer + slow-batch policy, as one handle."""

    def __init__(
        self,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Tracer] = None,
        ring: Optional[RingExporter] = None,
        file_exporter: Optional[JsonLinesExporter] = None,
        slow_batch_seconds: float = DEFAULT_SLOW_BATCH_SECONDS,
    ) -> None:
        self.metrics = NULL_METRICS if metrics is None else metrics
        self.ring = ring
        self.file_exporter = file_exporter
        if tracer is None:
            exporters = [e for e in (ring, file_exporter) if e is not None]
            tracer = Tracer(exporters) if exporters else None
        self.tracer = tracer
        self.slow_batch_seconds = slow_batch_seconds

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer is not None

    @property
    def trace_enabled(self) -> bool:
        return self.tracer is not None

    def start_trace(self, name: str = "batch") -> Optional[Trace]:
        """A new trace, or ``None`` when tracing is off.

        Callers hold the ``Optional`` -- the scheduler's instrumentation
        branches once per batch, never per span.
        """
        if self.tracer is None:
            return None
        return self.tracer.start_trace(name)

    def note_slow_batch(self, seconds: float, **context: object) -> bool:
        """Log (and count) a batch that blew the slow-batch threshold."""
        if seconds < self.slow_batch_seconds:
            return False
        self.metrics.inc("repro_slow_batches_total")
        detail = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
        logger.warning(
            "slow batch: %.3fs (threshold %.3fs) %s",
            seconds,
            self.slow_batch_seconds,
            detail,
        )
        return True

    def close(self) -> None:
        if self.file_exporter is not None:
            self.file_exporter.close()

    # ------------------------------------------------------------------
    @staticmethod
    def disabled() -> "Observability":
        """The shared no-op bundle (default at every injection point)."""
        return OBS_DISABLED

    @staticmethod
    def enabled_with(
        trace_path: Optional[str] = None,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        slow_batch_seconds: float = DEFAULT_SLOW_BATCH_SECONDS,
    ) -> "Observability":
        """A live bundle: real registry, ring exporter, optional file."""
        return Observability(
            metrics=Metrics(),
            ring=RingExporter(capacity=ring_capacity),
            file_exporter=(
                JsonLinesExporter(trace_path) if trace_path else None
            ),
            slow_batch_seconds=slow_batch_seconds,
        )

    @staticmethod
    def from_env(environ: Optional[dict] = None) -> "Observability":
        """Resolve the bundle from ``REPRO_OBS*`` environment variables."""
        env = os.environ if environ is None else environ
        trace_path = env.get("REPRO_OBS_TRACE_PATH") or None
        flag = env.get("REPRO_OBS", "").strip().lower()
        enabled = flag not in ("", "0", "false", "no") or trace_path is not None
        if not enabled:
            return OBS_DISABLED
        slow_ms = env.get("REPRO_OBS_SLOW_BATCH_MS", "").strip()
        try:
            slow_seconds = float(slow_ms) / 1000.0 if slow_ms else (
                DEFAULT_SLOW_BATCH_SECONDS
            )
        except ValueError:
            slow_seconds = DEFAULT_SLOW_BATCH_SECONDS
        return Observability.enabled_with(
            trace_path=trace_path, slow_batch_seconds=slow_seconds
        )


class _DisabledObservability(Observability):
    """The no-op bundle: NullMetrics, no tracer, nothing to close."""

    def __init__(self) -> None:
        super().__init__(metrics=NULL_METRICS, slow_batch_seconds=float("inf"))

    def note_slow_batch(self, seconds: float, **context: object) -> bool:
        return False


#: Shared disabled bundle; ``Observability.disabled()`` returns it.
OBS_DISABLED = _DisabledObservability()
