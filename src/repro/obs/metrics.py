"""A thread-safe metrics registry: counters, gauges, bounded histograms.

One :class:`Metrics` handle is injected through the stream scheduler, the
serving layer, the durability manager and the maintenance algorithms; it
absorbs the per-subsystem counters those layers used to keep in scattered
dataclasses behind a single queryable surface.  Two renderings exist:
``as_dict()`` for the JSON-lines wire protocol and benchmark snapshots, and
``render_prometheus()`` for scrape-style text exposition.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  :data:`NULL_METRICS` is a
   singleton whose mutators are empty methods -- one attribute lookup and
   one no-op call per instrumentation point, no branches at the call site,
   no locks, no allocation.  Every injection point defaults to it.
2. **Thread-safe when enabled.**  The scheduler bumps counters from worker
   threads, the serve layer from the event loop's pools, the durability
   manager from whichever thread checkpoints; one registry lock covers all
   mutation (the touched state is a dict update -- the lock is never held
   across anything slow).
3. **Bounded memory.**  Histograms carry a fixed bucket ladder (no
   per-observation storage) and label cardinality is in the caller's hands
   -- the instrumentation only ever uses small closed label sets
   (algorithm names, unit status), never user data.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Optional, Tuple

#: Default histogram ladder (seconds): microbenchmark floor to "something
#: is badly wrong" ceiling.  ``+Inf`` is implicit (the overflow bucket).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: The MaintenanceStats counters mirrored into the registry per algorithm
#: pass (a closed set: free-form ``extra`` counters stay out of the
#: registry to keep label/metric cardinality bounded).
MAINTENANCE_COUNTERS: Tuple[str, ...] = (
    "solver_calls",
    "derivation_attempts",
    "index_probes",
    "quick_rejects",
    "support_probes",
    "removed_entries",
    "rederived_entries",
    "replaced_entries",
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(key, value.replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in items
    )
    return "{" + body + "}"


class Metrics:
    """The registry and the handle are the same object.

    Instrumented code calls the three mutators (:meth:`inc`, :meth:`gauge`,
    :meth:`observe`); operators read :meth:`as_dict` /
    :meth:`render_prometheus`.  All methods are safe from any thread.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelItems, float]] = {}
        self._gauges: Dict[str, Dict[LabelItems, float]] = {}
        # name -> (bounds, {labels -> [bucket counts..., overflow]}, sums, counts)
        self._histograms: Dict[
            str,
            Tuple[
                Tuple[float, ...],
                Dict[LabelItems, list],
                Dict[LabelItems, float],
                Dict[LabelItems, int],
            ],
        ] = {}

    # ------------------------------------------------------------------
    # Mutators (instrumentation points)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        """Add *amount* to the counter *name* (monotonically increasing)."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + amount

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge *name* to *value* (last write wins)."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> None:
        """Record *value* into the bounded-bucket histogram *name*.

        The bucket ladder is fixed at the histogram's first observation
        (*buckets* is ignored afterwards), so memory per histogram is
        ``O(len(ladder))`` regardless of observation count.
        """
        key = _label_key(labels)
        with self._lock:
            entry = self._histograms.get(name)
            if entry is None:
                bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
                entry = (bounds, {}, {}, {})
                self._histograms[name] = entry
            bounds, counts, sums, totals = entry
            row = counts.get(key)
            if row is None:
                row = counts[key] = [0] * (len(bounds) + 1)
            index = len(bounds)
            for position, bound in enumerate(bounds):
                if value <= bound:
                    index = position
                    break
            row[index] += 1
            sums[key] = sums.get(key, 0.0) + value
            totals[key] = totals.get(key, 0) + 1

    def record_maintenance(self, algorithm: str, stats) -> None:
        """Mirror one maintenance pass's counters, labelled by algorithm.

        *stats* is a :class:`~repro.maintenance.requests.MaintenanceStats`;
        only the closed :data:`MAINTENANCE_COUNTERS` set is mirrored, so the
        registry's cardinality stays bounded no matter what free-form extras
        a pass records.
        """
        for counter in MAINTENANCE_COUNTERS:
            value = getattr(stats, counter, 0)
            if value:
                self.inc(
                    f"repro_maintenance_{counter}_total",
                    value,
                    algorithm=algorithm,
                )

    def set_counter(self, name: str, value: float, **labels: object) -> None:
        """Advance the counter *name* to the absolute *value*.

        For sources that keep their own monotonic totals (the intern
        tables' lock-protected hit/miss ints): the series is set to the
        observed total, never moved backwards, so scrapes stay monotonic
        even when several recording points race.
        """
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            current = series.get(key, 0)
            if value > current:
                series[key] = value

    def record_intern(self, stats: Optional[Mapping[str, object]] = None) -> None:
        """Mirror the hash-consing tables' totals into the registry.

        *stats* defaults to a fresh
        :func:`repro.constraints.intern.intern_stats` snapshot.  Per-table
        hit/miss totals become the
        ``repro_constraints_intern_{hits,misses}_total`` counters (labelled
        by table) and the live node count becomes the
        ``repro_constraints_intern_table_size`` gauge -- the table set is
        closed (one per node kind), so cardinality stays bounded.
        """
        if stats is None:
            from repro.constraints.intern import intern_stats

            stats = intern_stats()
        tables = stats.get("tables", {})
        for table_name, row in tables.items():
            self.set_counter(
                "repro_constraints_intern_hits_total",
                row["hits"],
                table=table_name,
            )
            self.set_counter(
                "repro_constraints_intern_misses_total",
                row["misses"],
                table=table_name,
            )
            self.gauge(
                "repro_constraints_intern_table_size",
                row["size"],
                table=table_name,
            )
        for event, value in stats.get("events", {}).items():
            self.set_counter(f"repro_constraints_{event}_total", value)

    # ------------------------------------------------------------------
    # Readers (operator surface)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """A JSON-friendly snapshot of every series."""
        with self._lock:
            counters = {
                name: {
                    (",".join(f"{k}={v}" for k, v in key) or "_"): value
                    for key, value in series.items()
                }
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: {
                    (",".join(f"{k}={v}" for k, v in key) or "_"): value
                    for key, value in series.items()
                }
                for name, series in sorted(self._gauges.items())
            }
            histograms = {}
            for name, (bounds, counts, sums, totals) in sorted(
                self._histograms.items()
            ):
                histograms[name] = {
                    (",".join(f"{k}={v}" for k, v in key) or "_"): {
                        "buckets": dict(
                            zip([str(b) for b in bounds] + ["+Inf"], row)
                        ),
                        "sum": sums[key],
                        "count": totals[key],
                    }
                    for key, row in counts.items()
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (v0.0.4) of every series."""
        lines = []
        with self._lock:
            for name, series in sorted(self._counters.items()):
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{_render_labels(key)} {_format(value)}")
            for name, series in sorted(self._gauges.items()):
                lines.append(f"# TYPE {name} gauge")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{_render_labels(key)} {_format(value)}")
            for name, (bounds, counts, sums, totals) in sorted(
                self._histograms.items()
            ):
                lines.append(f"# TYPE {name} histogram")
                for key in sorted(counts):
                    row = counts[key]
                    cumulative = 0
                    for bound, bucket in zip(bounds, row):
                        cumulative += bucket
                        items = key + (("le", _format(bound)),)
                        lines.append(
                            f"{name}_bucket{_render_labels(items)} {cumulative}"
                        )
                    cumulative += row[-1]
                    items = key + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_render_labels(items)} {cumulative}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} {_format(sums[key])}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {totals[key]}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def counter_value(self, name: str, **labels: object) -> float:
        """One counter's current value (0 when the series never moved)."""
        key = _label_key(labels)
        with self._lock:
            return self._counters.get(name, {}).get(key, 0)


class NullMetrics(Metrics):
    """The disabled handle: every mutator is an empty method, no locks.

    The readers stay functional (they report an empty registry), so the
    operator surface never has to branch on whether metrics are on.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> None:
        pass

    def record_maintenance(self, algorithm: str, stats) -> None:
        pass

    def set_counter(self, name: str, value: float, **labels: object) -> None:
        pass

    def record_intern(self, stats: Optional[Mapping[str, object]] = None) -> None:
        pass


def _format(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


#: Shared disabled handle -- the default at every injection point.
NULL_METRICS = NullMetrics()
