"""Command-line interface: materialize, query and maintain views from rule files.

The CLI makes the library usable without writing Python: point it at a rule
file (the same syntax the parser accepts, see :mod:`repro.datalog.parser`)
and materialize, query, or apply updates.

Examples
--------
::

    python -m repro materialize rules.pl
    python -m repro query rules.pl b --universe 0:10
    python -m repro delete rules.pl "b(X) <- X = 6" --query b --universe 0:10
    python -m repro insert rules.pl "b(X) <- X = 1" --query c --universe 0:10
    python -m repro analyze rules.pl --strict
    python -m repro serve rules.pl --port 8737
    python -m repro stats --data-dir ./data      # durability summary
    python -m repro trace trace.jsonl --top 5    # batch waterfalls
    python -m repro examples          # list the bundled example scripts

External domains cannot be configured from the command line (they are Python
objects); the CLI therefore targets pure constrained databases, which is
also everything the paper's worked examples need.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import analyze_program
from repro.constraints import ConstraintSolver
from repro.datalog import compute_tp_fixpoint, compute_wp_fixpoint, parse_constrained_atom, parse_program
from repro.errors import ReproError
from repro.maintenance import DeletionRequest, InsertionRequest, ViewMaintainer


def parse_universe(spec: Optional[str]) -> Optional[List[object]]:
    """Parse ``--universe`` values: ``0:10`` (range) or ``a,b,c`` (list).

    Public because the serve layer's request router reuses it for the
    wire-format ``"universe"`` field.
    """
    if spec is None:
        return None
    if ":" in spec:
        low_text, high_text = spec.split(":", 1)
        return list(range(int(low_text), int(high_text)))
    values: List[object] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            values.append(int(chunk))
        except ValueError:
            values.append(chunk)
    return values


def _load_program(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_program(text)


def _print_view(view, stream) -> None:
    for entry in view:
        print(entry, file=stream)


def _print_instances(view, predicate: str, solver, universe, stream) -> None:
    try:
        tuples = sorted(view.instances_for(predicate, solver, universe), key=repr)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2)
    for values in tuples:
        rendered = ", ".join(str(value) for value in values)
        print(f"{predicate}({rendered})", file=stream)
    print(f"-- {len(tuples)} instances", file=stream)


def _cmd_materialize(args, stream) -> int:
    program = _load_program(args.rules)
    solver = ConstraintSolver()
    compute = compute_wp_fixpoint if args.operator == "wp" else compute_tp_fixpoint
    view = compute(program, solver)
    _print_view(view, stream)
    print(f"-- {len(view)} entries ({args.operator})", file=stream)
    if args.query:
        _print_instances(view, args.query, solver, parse_universe(args.universe), stream)
    return 0


def _cmd_query(args, stream) -> int:
    program = _load_program(args.rules)
    solver = ConstraintSolver()
    view = compute_tp_fixpoint(program, solver)
    _print_instances(view, args.predicate, solver, parse_universe(args.universe), stream)
    return 0


def _cmd_update(args, stream, kind: str) -> int:
    program = _load_program(args.rules)
    solver = ConstraintSolver()
    maintainer = ViewMaintainer(
        program, solver, deletion_algorithm=args.algorithm
    )
    atom = parse_constrained_atom(args.atom)
    request = DeletionRequest(atom) if kind == "delete" else InsertionRequest(atom)
    record = maintainer.apply(request)
    print(
        f"applied {kind} of {atom} using {record.algorithm}; "
        f"view now has {record.view_size_after} entries",
        file=stream,
    )
    if args.verify:
        ok = maintainer.verify(parse_universe(args.universe))
        print(f"verification against declarative semantics: {'OK' if ok else 'MISMATCH'}",
              file=stream)
        if not ok:
            return 1
    if args.query:
        _print_instances(
            maintainer.view, args.query, solver, parse_universe(args.universe), stream
        )
    return 0


def _cmd_analyze(args, stream) -> int:
    program = _load_program(args.rules)
    report = analyze_program(program)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True, default=str),
              file=stream)
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic.render(), file=stream)
        print(f"-- {report.summary()}", file=stream)
    if report.errors():
        return 1
    if args.strict and report.warnings():
        return 1
    return 0


def _cmd_serve(args, stream) -> int:
    import asyncio

    # Imported lazily: the serve layer pulls in the stream scheduler and
    # asyncio machinery no other subcommand needs.
    from repro.serve import MediatorServer, MediatorService, ServeOptions
    from repro.stream import StreamOptions, StreamScheduler

    from repro.obs import Observability

    program = _load_program(args.rules)
    stream_options = StreamOptions(deletion_algorithm=args.algorithm)
    # REPRO_OBS / REPRO_OBS_TRACE_PATH / REPRO_OBS_SLOW_BATCH_MS activate
    # the observability bundle; --trace-file forces file export on.
    if args.trace_file:
        obs = Observability.enabled_with(trace_path=args.trace_file)
    else:
        obs = Observability.from_env()
    if obs.enabled:
        where = (
            f", tracing to {obs.file_exporter.path}"
            if obs.file_exporter is not None
            else ""
        )
        print(f"observability enabled{where}", file=stream)
    if args.data_dir:
        # Durable serving: recover the newest snapshot + WAL tail from the
        # data directory, journal every drained batch, checkpoint on exit.
        from repro.persist import open_scheduler

        scheduler = open_scheduler(
            args.data_dir, program, options=stream_options, obs=obs
        )
        print(
            f"recovered {args.data_dir}: view has {len(scheduler.view)} "
            f"entries, watermark txn {scheduler.durability.watermark}",
            file=stream,
        )
    else:
        scheduler = StreamScheduler(
            program,
            ConstraintSolver(),
            options=stream_options,
            obs=obs,
        )

    async def run() -> int:
        service = MediatorService(scheduler, ServeOptions())
        await service.start()
        server = MediatorServer(service, host=args.host, port=args.port)
        host, port = await server.start()
        print(f"serving {args.rules} on {host}:{port}", file=stream)
        print(
            'protocol: one JSON object per line, e.g. '
            '{"op": "query", "predicate": "p"}',
            file=stream,
        )
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await server.stop()
            await service.stop()
        stats = service.stats()
        print(
            f"-- served {stats['batches_applied']} batches, "
            f"view has {stats['view_entries']} entries",
            file=stream,
        )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0
    finally:
        obs.close()


def _cmd_stats(args, stream) -> int:
    """Durability summary of a data directory, without starting a server."""
    from repro.persist.snapshot import SnapshotStore
    from repro.persist.wal import WriteAheadLog

    root = Path(args.data_dir)
    if not root.is_dir():
        print(f"error: {args.data_dir!r} is not a directory", file=sys.stderr)
        return 2
    store = SnapshotStore(root)
    wal = WriteAheadLog(root / "wal")
    segments = wal.segments()
    data = {
        "data_dir": str(root),
        "snapshot_id": store.current_name(),
        "wal_segments": len(segments),
        "wal_bytes": sum(path.stat().st_size for path in segments),
    }
    name = store.current_name()
    if name is not None:
        manifest_path = root / "snapshots" / name
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as error:
            print(f"error: manifest {name!r} unreadable: {error}", file=sys.stderr)
            return 2
        data["txn_watermark"] = manifest.get("txn_watermark")
        data["txn_high"] = manifest.get("txn_high")
        data["shards"] = len(manifest.get("shards", ()))
        data["format"] = manifest.get("format")
    print(json.dumps(data, indent=2, sort_keys=True), file=stream)
    return 0


def _cmd_trace(args, stream) -> int:
    """Render a JSON-lines trace file: waterfalls + slowest spans."""
    from repro.obs import (
        group_traces,
        read_events,
        render_top_spans,
        render_waterfall,
        verify_batch_traces,
    )

    try:
        events = read_events(args.file)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not events:
        print("no trace events found", file=stream)
        return 1
    views = group_traces(events)
    shown = views if args.limit is None else views[-args.limit:]
    for view in shown:
        print(render_waterfall(view), file=stream)
        print(file=stream)
    print(render_top_spans(events, k=args.top), file=stream)
    complete = [view for view in views if view.root is not None]
    print(
        f"-- {len(events)} events, {len(views)} traces "
        f"({len(complete)} complete)",
        file=stream,
    )
    if args.check:
        problems = verify_batch_traces(events, require_drain=False)
        for problem in problems:
            print(f"problem: {problem}", file=stream)
        return 1 if problems else 0
    return 0


def _cmd_examples(stream) -> int:
    examples_dir = Path(__file__).resolve().parent.parent.parent / "examples"
    print("Bundled examples (run with `python examples/<name>.py`):", file=stream)
    if examples_dir.is_dir():
        for script in sorted(examples_dir.glob("*.py")):
            print(f"  {script.name}", file=stream)
    else:  # installed without the examples directory
        for name in ("quickstart.py", "law_enforcement.py",
                     "constrained_database.py", "external_sources.py"):
            print(f"  {name}", file=stream)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Materialize and maintain constrained (mediated) views.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    materialize = subparsers.add_parser(
        "materialize", help="materialize a rule file and print the view entries"
    )
    materialize.add_argument("rules", help="path to a rule file")
    materialize.add_argument("--operator", choices=("tp", "wp"), default="tp")
    materialize.add_argument("--query", help="also print instances of this predicate")
    materialize.add_argument("--universe", help="value universe, e.g. 0:20 or a,b,c")

    query = subparsers.add_parser("query", help="print the instances of one predicate")
    query.add_argument("rules")
    query.add_argument("predicate")
    query.add_argument("--universe")

    for kind in ("delete", "insert"):
        update = subparsers.add_parser(
            kind, help=f"{kind} a constrained atom and report the maintained view"
        )
        update.add_argument("rules")
        update.add_argument("atom", help="e.g. \"b(X) <- X = 6\"")
        update.add_argument(
            "--algorithm", choices=("stdel", "dred"), default="stdel",
            help="deletion algorithm (ignored for insert)",
        )
        update.add_argument("--query", help="print instances of this predicate afterwards")
        update.add_argument("--universe")
        update.add_argument(
            "--verify", action="store_true",
            help="recompute the declarative semantics and compare",
        )

    analyze = subparsers.add_parser(
        "analyze",
        help="statically analyze a rule file (safety, stratification, "
        "signatures, write closures)",
    )
    analyze.add_argument("rules", help="path to a rule file")
    analyze.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not only errors",
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON instead of rendered diagnostics",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a rule file over TCP (JSON lines): concurrent queries "
        "and update transactions against a maintained view",
    )
    serve.add_argument("rules", help="path to a rule file")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = pick a free one and print it)")
    serve.add_argument(
        "--algorithm", choices=("stdel", "dred"), default="stdel",
        help="deletion algorithm for the maintenance pipeline",
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds then exit (default: forever)",
    )
    serve.add_argument(
        "--data-dir", default=None,
        help="durable data directory: recover the newest snapshot + WAL "
        "tail on start, journal updates, checkpoint on exit",
    )
    serve.add_argument(
        "--trace-file", default=None,
        help="enable observability and append batch-lifecycle trace events "
        "to this JSON-lines file (also honours REPRO_OBS/REPRO_OBS_TRACE_PATH)",
    )

    stats = subparsers.add_parser(
        "stats",
        help="print a durability summary (snapshot id, watermark, WAL "
        "segments/bytes) of a data directory without starting a server",
    )
    stats.add_argument("--data-dir", required=True,
                       help="data directory to inspect")

    trace = subparsers.add_parser(
        "trace",
        help="render a JSON-lines batch trace file: per-batch waterfalls "
        "and the top-k slowest spans",
    )
    trace.add_argument("file", help="trace file written by serve --trace-file")
    trace.add_argument("--top", type=int, default=10,
                       help="how many slowest spans to list (default 10)")
    trace.add_argument("--limit", type=int, default=None,
                       help="render only the newest N traces")
    trace.add_argument(
        "--check", action="store_true",
        help="verify span-tree integrity and exit non-zero on problems",
    )

    subparsers.add_parser("examples", help="list the bundled example scripts")
    return parser


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    """CLI entry point; returns the process exit code."""
    stream = stream or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "materialize":
            return _cmd_materialize(args, stream)
        if args.command == "query":
            return _cmd_query(args, stream)
        if args.command == "delete":
            return _cmd_update(args, stream, "delete")
        if args.command == "insert":
            return _cmd_update(args, stream, "insert")
        if args.command == "analyze":
            return _cmd_analyze(args, stream)
        if args.command == "serve":
            return _cmd_serve(args, stream)
        if args.command == "stats":
            return _cmd_stats(args, stream)
        if args.command == "trace":
            return _cmd_trace(args, stream)
        if args.command == "examples":
            return _cmd_examples(stream)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
