"""Segment-rotated, fsync'd write-ahead log of drained update batches.

The WAL journals batches at the pipeline's *drain* boundary: one record per
:meth:`~repro.stream.UpdateLog.drain`, holding the drained transactions
(the paper's three update kinds) with their ids, appended and fsync'd
**before** the batch enters ``prepare_batch``/``apply_prepared``.  A batch
that committed in memory is therefore always reconstructible from disk, and
a batch that never reached the WAL was never acknowledged as applied.

Record framing is one line per batch::

    <crc32 hex, 8 chars> <canonical JSON>\\n

The CRC covers the JSON bytes, so a torn tail (partial final line after a
crash mid-append) is detected and dropped; coalescing is deterministic, so
re-driving the decoded transactions through the scheduler pipeline at
replay reproduces the original batch exactly.

Segments (``wal-<n>.log``) rotate at checkpoint time; a segment whose
largest transaction id is at or below the snapshot watermark holds only
already-checkpointed batches and is deleted.  Recovery always rotates to a
fresh segment before appending again, so new records are never written
after a torn tail.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WalError
from repro.persist import codec
from repro.persist.faults import InjectedFault, fire, should_fire
from repro.stream.log import Transaction

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def _segment_index(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    stem = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        return None


def _encode_record(transactions: Sequence[Transaction]) -> bytes:
    body = codec.canonical_bytes(codec.encode_transactions(transactions))
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + body + b"\n"


def _decode_record(line: bytes) -> Optional[Tuple[Transaction, ...]]:
    """Decode one record line; ``None`` means damaged (torn tail)."""
    if not line.endswith(b"\n") or len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        expected = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:-1]
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return codec.decode_transactions(payload)


class WriteAheadLog:
    """Appender/replayer over the ``wal/`` directory of a data dir."""

    def __init__(self, root: Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: Closed or active segment -> largest txn id of its decoded records
        #: (0 = only id-less batches); pruning compares this watermark.
        self._segment_max: Dict[int, int] = {}
        self._active: Optional[int] = None
        self._active_bytes = 0
        self._total_bytes = 0
        self._max_txn_seen = 0

    # ------------------------------------------------------------------
    # Replay (recovery)
    # ------------------------------------------------------------------
    def segments(self) -> Tuple[Path, ...]:
        found = [
            (index, path)
            for path in self._root.iterdir()
            if (index := _segment_index(path)) is not None
        ]
        return tuple(path for _, path in sorted(found))

    def replay(self) -> Tuple[Tuple[Transaction, ...], ...]:
        """Decode every journaled batch, in append order.

        A damaged record ends its segment's replay (append-only writes mean
        damage can only be a torn tail; anything after it in the same file
        is the same interrupted write).  Later segments still replay --
        recovery rotates before appending, so a post-recovery record never
        sits behind a torn tail.  Non-monotonic transaction ids across the
        decoded sequence are corruption the torn-tail model cannot explain
        and raise :class:`~repro.errors.WalError`.
        """
        batches: List[Tuple[Transaction, ...]] = []
        last_id = 0
        with self._lock:
            self._segment_max.clear()
            self._total_bytes = 0
            for path in self.segments():
                index = _segment_index(path)
                data = path.read_bytes()
                self._total_bytes += len(data)
                segment_max = 0
                offset = 0
                while offset < len(data):
                    newline = data.find(b"\n", offset)
                    line = data[offset : len(data) if newline < 0 else newline + 1]
                    batch = _decode_record(line)
                    if batch is None:
                        break  # torn tail; rest of this segment is the same write
                    offset += len(line)
                    ids = [txn.txn_id for txn in batch]
                    if ids:
                        if min(ids) <= last_id:
                            raise WalError(
                                f"WAL segment {path.name} replays transaction "
                                f"{min(ids)} after {last_id}: ids must be "
                                "strictly monotonic"
                            )
                        last_id = max(ids)
                        segment_max = max(segment_max, last_id)
                    if batch:
                        batches.append(batch)
                if index is not None:
                    self._segment_max[index] = segment_max
            self._max_txn_seen = last_id
            self._active = None  # always rotate before the next append
            self._active_bytes = 0
        return tuple(batches)

    @property
    def max_txn_seen(self) -> int:
        """Largest transaction id decoded by :meth:`replay` / appended since."""
        with self._lock:
            return self._max_txn_seen

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _segment_path(self, index: int) -> Path:
        return self._root / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"

    def _next_index_locked(self) -> int:
        existing = [
            index
            for path in self._root.iterdir()
            if (index := _segment_index(path)) is not None
        ]
        return max(existing, default=0) + 1

    def append(self, transactions: Sequence[Transaction]) -> None:
        """Journal one drained batch: write the record, flush, fsync."""
        if not transactions:
            return
        record = _encode_record(transactions)
        with self._lock:
            fire("wal.append.before")
            if self._active is None:
                self._active = self._next_index_locked()
                self._segment_max.setdefault(self._active, 0)
            path = self._segment_path(self._active)
            torn = should_fire("wal.append.torn")
            with open(path, "ab") as handle:
                if torn:
                    # Simulated crash mid-write: half the record reaches the
                    # file (and disk), the rest never does.
                    handle.write(record[: max(1, len(record) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                else:
                    handle.write(record)
                    handle.flush()
                    os.fsync(handle.fileno())
            if torn:
                self._active_bytes += len(record) // 2
                self._total_bytes += len(record) // 2
                raise InjectedFault("wal.append.torn")
            ids = [txn.txn_id for txn in transactions]
            top = max(ids) if ids else 0
            self._segment_max[self._active] = max(
                self._segment_max.get(self._active, 0), top
            )
            self._max_txn_seen = max(self._max_txn_seen, top)
            self._active_bytes += len(record)
            self._total_bytes += len(record)
            fire("wal.append.after")

    def size_bytes(self) -> int:
        """Total bytes across live segments (the checkpoint policy input)."""
        with self._lock:
            return self._total_bytes

    def segment_count(self) -> int:
        """How many live segment files the WAL currently holds."""
        return len(self.segments())

    # ------------------------------------------------------------------
    # Rotation & pruning (checkpoint time)
    # ------------------------------------------------------------------
    def rotate(self) -> None:
        """Close the active segment; the next append opens a fresh one."""
        with self._lock:
            self._active = None
            self._active_bytes = 0

    def prune_through(self, watermark: int) -> int:
        """Delete closed segments wholly covered by the snapshot *watermark*.

        A segment is deletable when it is not the active one and every
        decoded transaction in it has id <= watermark (its batches are all
        inside the checkpointed view).  Returns the number deleted.
        """
        removed = 0
        with self._lock:
            for index, top in sorted(self._segment_max.items()):
                if index == self._active:
                    continue
                if top > watermark:
                    continue
                path = self._segment_path(index)
                try:
                    size = path.stat().st_size
                    path.unlink()
                except FileNotFoundError:
                    size = 0
                self._total_bytes = max(0, self._total_bytes - size)
                del self._segment_max[index]
                removed += 1
        return removed
