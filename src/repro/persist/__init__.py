"""Durability: shard snapshots, write-ahead logging, crash recovery.

The persistence layer makes the predicate-sharded materialized view
survive the process.  Three cooperating pieces:

* :mod:`repro.persist.codec` -- versioned deterministic byte codec for
  shards, programs and WAL payloads (canonical JSON; re-encoding a decoded
  value is byte-identical, so checksums are stable);
* :mod:`repro.persist.wal` -- segment-rotated, fsync'd write-ahead log of
  drained update batches;
* :mod:`repro.persist.snapshot` -- atomic shard-granular checkpoints
  (content-addressed shard files + manifest + ``CURRENT`` swing).

:func:`repro.persist.manager.open_scheduler` ties them together into a
:class:`~repro.persist.manager.DurableScheduler`; see ``README.md`` in
this directory for the on-disk layout and the recovery invariants.
"""

from repro.persist.codec import (
    FORMAT_VERSION,
    checksum,
    decode_payload,
    decode_program,
    decode_shard,
    decode_transactions,
    encode_payload,
    encode_program,
    encode_shard,
    encode_transactions,
    program_hash,
    report_digest,
)
from repro.persist.faults import (
    FaultInjector,
    InjectedFault,
    fire,
    set_fault_injector,
    should_fire,
)
from repro.persist.manager import (
    DurabilityManager,
    DurabilityOptions,
    DurabilityStats,
    DurableScheduler,
    open_scheduler,
)
from repro.persist.snapshot import CheckpointInfo, RecoveredState, SnapshotStore
from repro.persist.wal import WriteAheadLog

__all__ = [
    "FORMAT_VERSION",
    "checksum",
    "decode_payload",
    "decode_program",
    "decode_shard",
    "decode_transactions",
    "encode_payload",
    "encode_program",
    "encode_shard",
    "encode_transactions",
    "program_hash",
    "report_digest",
    "FaultInjector",
    "InjectedFault",
    "fire",
    "set_fault_injector",
    "should_fire",
    "DurabilityManager",
    "DurabilityOptions",
    "DurabilityStats",
    "DurableScheduler",
    "open_scheduler",
    "CheckpointInfo",
    "RecoveredState",
    "SnapshotStore",
    "WriteAheadLog",
]
