"""Durability coordination: WAL journaling, watermarks, checkpoint policy.

:class:`DurableScheduler` is a :class:`~repro.stream.StreamScheduler` whose
drain/commit seams are wired into a :class:`DurabilityManager`:

* **drain** journals the drained batch to the WAL (fsync'd) *before* the
  batch enters ``prepare_batch`` -- every acknowledged batch is on disk
  first;
* **commit** (under the scheduler's commit lock) marks the batch's
  transaction ids committed.  Disjoint-group batches may commit out of
  transaction order, so the durable *watermark* is the contiguous committed
  prefix; only when the committed set has no holes does the freshly
  published view become a checkpoint candidate -- a snapshot must contain
  exactly the transactions at or below its watermark, nothing more;
* **after apply**, the WAL-size policy may turn the latest candidate into
  an on-disk checkpoint (dirty shards + manifest + ``CURRENT`` swing +
  WAL rotation/pruning), off the commit lock -- published views are never
  mutated in place, so serializing one concurrently with later batches is
  safe under the copy-on-write discipline.

:func:`open_scheduler` is the recovery entry point: load the newest valid
snapshot, replay the WAL tail through the ordinary pipeline, and hand back
a scheduler whose update log continues above the persisted high-water mark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Set, Tuple

from repro.analysis import analyze_program
from repro.constraints.solver import ConstraintSolver
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView
from repro.errors import ProgramHashMismatchError, RecoveryError
from repro.obs import Observability
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import monotonic
from repro.persist import codec
from repro.persist.faults import fire
from repro.persist.snapshot import CheckpointInfo, SnapshotStore
from repro.persist.wal import WriteAheadLog
from repro.stream.log import Transaction, UpdateLog
from repro.stream.scheduler import (
    PreparedBatch,
    StreamOptions,
    StreamScheduler,
)


@dataclass(frozen=True)
class DurabilityOptions:
    """Tunable behaviour of the durability layer."""

    #: Checkpoint once the live WAL grows past this many bytes (the
    #: WAL-size policy; ``checkpoint()`` forces one regardless).
    checkpoint_wal_bytes: int = 1 << 20


@dataclass
class DurabilityStats:
    """Counters for operators and the persist benchmark."""

    journaled_batches: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    shards_written: int = 0
    shards_reused: int = 0
    segments_pruned: int = 0
    last_watermark: int = 0


class DurabilityManager:
    """Owns the WAL, the snapshot store and the committed-set watermark."""

    def __init__(
        self,
        store: SnapshotStore,
        wal: WriteAheadLog,
        options: DurabilityOptions = DurabilityOptions(),
        *,
        watermark: int = 0,
        txn_high: int = 0,
    ) -> None:
        self._store = store
        self._wal = wal
        self._options = options
        self._lock = threading.Lock()
        self._watermark = watermark
        self._txn_high = max(txn_high, watermark)
        #: Committed transaction ids above the watermark (holes = some
        #: earlier-ticketed batch has not committed yet).
        self._committed: Set[int] = set()
        #: Latest hole-free (view, watermark, programs) commit -- what the
        #: next checkpoint writes.  ``None`` until the first clean commit.
        self._candidate: Optional[
            Tuple[MaterializedView, int, ConstrainedDatabase, ConstrainedDatabase]
        ] = None
        self._checkpoint_lock = threading.Lock()
        self._program: Optional[ConstrainedDatabase] = None
        self._report_digest = ""
        self.stats = DurabilityStats()
        self.stats.last_watermark = watermark
        self._metrics = NULL_METRICS

    def attach_metrics(self, metrics) -> None:
        """Point the manager at a live registry (the owning scheduler's)."""
        self._metrics = metrics

    def bind(self, program: ConstrainedDatabase, report_digest: str) -> None:
        """Attach the base program identity the manifests carry."""
        self._program = program
        self._report_digest = report_digest

    def seed_candidate(
        self,
        view: MaterializedView,
        effective_program: ConstrainedDatabase,
        deletion_program: ConstrainedDatabase,
    ) -> None:
        """Make the scheduler's opening state checkpointable.

        A freshly opened scheduler's published view is by construction the
        state at the recovered watermark (snapshot view before replay, or
        the initial materialization at watermark 0), so it is a valid
        snapshot candidate even though no commit has happened yet --
        without this, a durable mediator that serves only reads could
        never persist its initial materialization."""
        with self._lock:
            if self._candidate is None and not self._committed:
                self._candidate = (
                    view,
                    self._watermark,
                    effective_program,
                    deletion_program,
                )

    @property
    def store(self) -> SnapshotStore:
        return self._store

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def watermark(self) -> int:
        """Contiguous committed transaction prefix (snapshot boundary)."""
        with self._lock:
            return self._watermark

    @property
    def txn_high(self) -> int:
        """Largest transaction id ever journaled or committed."""
        with self._lock:
            return self._txn_high

    # ------------------------------------------------------------------
    # The scheduler's two seams
    # ------------------------------------------------------------------
    def journal(self, transactions: Tuple[Transaction, ...]) -> None:
        """Append one drained batch to the WAL (fsync'd) before it applies."""
        self._wal.append(transactions)
        with self._lock:
            self.stats.journaled_batches += 1
            for txn in transactions:
                if txn.txn_id > self._txn_high:
                    self._txn_high = txn.txn_id
        if self._metrics.enabled:
            self._metrics.inc("repro_wal_journaled_batches_total")
            self._metrics.inc("repro_wal_journaled_txns_total", len(transactions))
            self._metrics.gauge("repro_wal_bytes", self._wal.size_bytes())

    def note_commit(
        self,
        txn_ids: Tuple[int, ...],
        view: MaterializedView,
        effective_program: ConstrainedDatabase,
        deletion_program: ConstrainedDatabase,
    ) -> None:
        """Record one committed batch (called under the commit lock)."""
        fire("commit.before")
        with self._lock:
            for txn_id in txn_ids:
                if txn_id > self._watermark:
                    self._committed.add(txn_id)
                if txn_id > self._txn_high:
                    self._txn_high = txn_id
            while self._watermark + 1 in self._committed:
                self._watermark += 1
                self._committed.discard(self._watermark)
            if not self._committed:
                # No holes: the published view contains exactly the
                # transactions <= watermark and is safe to snapshot.
                self._candidate = (
                    view,
                    self._watermark,
                    effective_program,
                    deletion_program,
                )
            self.stats.last_watermark = self._watermark
            watermark = self._watermark
        self._metrics.gauge("repro_txn_watermark", watermark)
        fire("commit.after")

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def maybe_checkpoint(self) -> Optional[CheckpointInfo]:
        """Checkpoint when the WAL-size policy says so; else do nothing."""
        if self._wal.size_bytes() < self._options.checkpoint_wal_bytes:
            return None
        return self.checkpoint()

    def checkpoint(self) -> Optional[CheckpointInfo]:
        """Write the latest hole-free candidate as an atomic snapshot.

        Returns ``None`` when there is nothing to snapshot yet.  Safe to
        call from any thread; checkpoints serialize among themselves and
        never hold the scheduler's locks -- the candidate view is a
        published snapshot the copy-on-write discipline guarantees is no
        longer mutated."""
        if self._program is None:
            raise RecoveryError("durability manager is not bound to a program")
        with self._checkpoint_lock:
            with self._lock:
                candidate = self._candidate
            if candidate is None:
                return None
            view, watermark, effective_program, deletion_program = candidate
            with self._lock:
                txn_high = self._txn_high
            info = self._store.write_checkpoint(
                view,
                program=self._program,
                report_digest=self._report_digest,
                effective_program=effective_program,
                deletion_program=deletion_program,
                watermark=watermark,
                txn_high=txn_high,
            )
            self._wal.rotate()
            pruned = self._wal.prune_through(watermark)
            with self._lock:
                self.stats.checkpoints += 1
                self.stats.checkpoint_bytes += info.bytes_written
                self.stats.shards_written += info.shards_written
                self.stats.shards_reused += info.shards_reused
                self.stats.segments_pruned += pruned
            if self._metrics.enabled:
                self._metrics.inc("repro_checkpoints_total")
                self._metrics.inc(
                    "repro_checkpoint_bytes_total", info.bytes_written
                )
                self._metrics.inc(
                    "repro_checkpoint_shards_total",
                    info.shards_written,
                    outcome="written",
                )
                self._metrics.inc(
                    "repro_checkpoint_shards_total",
                    info.shards_reused,
                    outcome="reused",
                )
                self._metrics.gauge("repro_wal_bytes", self._wal.size_bytes())
                self._metrics.gauge(
                    "repro_wal_segments", self._wal.segment_count()
                )
            return info


class DurableScheduler(StreamScheduler):
    """A stream scheduler whose batches survive the process.

    Identical to :class:`~repro.stream.StreamScheduler` except that drained
    batches are journaled to the write-ahead log before they apply, commits
    advance the durable watermark, and the WAL-size policy triggers atomic
    shard-granular checkpoints.  Built by :func:`open_scheduler`.
    """

    def __init__(
        self,
        program: ConstrainedDatabase,
        solver: Optional[ConstraintSolver] = None,
        view: Optional[MaterializedView] = None,
        options: StreamOptions = StreamOptions(),
        log: Optional[UpdateLog] = None,
        *,
        durability: DurabilityManager,
        effective_program: Optional[ConstrainedDatabase] = None,
        deletion_program: Optional[ConstrainedDatabase] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(
            program,
            solver,
            view=view,
            options=options,
            log=log,
            effective_program=effective_program,
            deletion_program=deletion_program,
            obs=obs,
        )
        self._durability = durability
        durability.bind(program, codec.report_digest(self.report))
        durability.attach_metrics(self._obs.metrics)
        durability.seed_candidate(
            self.view, self._effective_program, self._deletion_program
        )

    @property
    def durability(self) -> DurabilityManager:
        return self._durability

    def drain(self, limit: Optional[int] = None) -> Tuple[Transaction, ...]:
        transactions = super().drain(limit)
        if transactions:
            # The batch's trace was parked by the base drain; the WAL
            # append happens between drain and prepare, so its span hangs
            # directly off the trace root.
            trace = self._pending_trace_for(transactions)
            if trace is not None:
                with trace.span("journal") as span:
                    span.set(records=len(transactions))
                    self._durability.journal(transactions)
            else:
                self._durability.journal(transactions)
        return transactions

    def _commit_hook(
        self, prepared: Optional[PreparedBatch], next_view: MaterializedView
    ) -> None:
        self._durability.note_commit(
            prepared.txn_ids if prepared is not None else (),
            next_view,
            self._effective_program,
            self._deletion_program,
        )

    def _batch_epilogue(self, prepared: PreparedBatch) -> None:
        # Policy check off the commit lock, on the applying thread (the
        # serve layer's apply pool): disk I/O never blocks the event loop
        # or the commit pointer swap.  Runs before super() so a triggered
        # checkpoint lands inside the batch's trace before it seals.
        started = monotonic()
        info = self._durability.maybe_checkpoint()
        if info is not None and prepared.trace is not None:
            prepared.trace.record_span(
                "checkpoint",
                started,
                monotonic(),
                watermark=info.watermark,
                shards_written=info.shards_written,
                shards_reused=info.shards_reused,
            )
        super()._batch_epilogue(prepared)

    def checkpoint(self) -> Optional[CheckpointInfo]:
        """Force a snapshot of the latest clean commit."""
        return self._durability.checkpoint()

    def checkpoint_if_due(self) -> Optional[CheckpointInfo]:
        """The WAL-size policy seam the serve coordinator polls when idle."""
        return self._durability.maybe_checkpoint()


def open_scheduler(
    data_dir,
    program: Optional[ConstrainedDatabase] = None,
    solver: Optional[ConstraintSolver] = None,
    options: StreamOptions = StreamOptions(),
    durability_options: DurabilityOptions = DurabilityOptions(),
    clock=None,
    obs: Optional[Observability] = None,
) -> DurableScheduler:
    """Open (or initialize) a durable scheduler over *data_dir*.

    Recovery order:

    1. load the snapshot ``CURRENT`` points at (checksums and program hash
       verified loudly; a fresh directory needs *program* to initialize);
    2. replay the WAL tail -- every journaled batch whose transactions lie
       above the snapshot watermark -- through the ordinary
       ``prepare_batch``/``apply_prepared`` pipeline (coalescing is
       deterministic, so the replayed net effects equal the originals);
    3. start the update log at the persisted high-water mark + 1, so fresh
       transaction ids can never collide with replayed ones.
    """
    root = Path(data_dir)
    store = SnapshotStore(root)
    wal = WriteAheadLog(root / "wal")
    state = store.load_current(expected_program=program)
    journaled = wal.replay()

    if state is not None:
        if program is not None:
            # load_current verified the hash; keep the caller's object so
            # solver/registry identities line up with their expectations.
            base_program = program
        else:
            base_program = state.program
        fresh_digest = codec.report_digest(analyze_program(base_program))
        if state.report_digest and state.report_digest != fresh_digest:
            raise ProgramHashMismatchError(
                "the analyzer report digest on disk does not match a fresh "
                "analysis of the same program: the closure tables this "
                "snapshot was maintained with are stale, and WAL replay "
                "would not be maintenance-equivalent"
            )
        view: Optional[MaterializedView] = state.view
        effective_program: Optional[ConstrainedDatabase] = state.effective_program
        deletion_program: Optional[ConstrainedDatabase] = state.deletion_program
        watermark = state.watermark
        txn_high = state.txn_high
    else:
        if program is None:
            raise RecoveryError(
                f"data directory {str(root)!r} holds no snapshot and no "
                "program was supplied to initialize it"
            )
        base_program = program
        view = None
        effective_program = None
        deletion_program = None
        watermark = 0
        txn_high = 0

    txn_high = max(txn_high, wal.max_txn_seen)
    manager = DurabilityManager(
        store,
        wal,
        durability_options,
        watermark=watermark,
        txn_high=txn_high,
    )
    scheduler = DurableScheduler(
        base_program,
        solver,
        view=view,
        options=options,
        log=UpdateLog(clock=clock, first_txn_id=txn_high + 1),
        durability=manager,
        effective_program=effective_program,
        deletion_program=deletion_program,
        obs=obs,
    )
    replayed = 0
    for batch in journaled:
        ids = [txn.txn_id for txn in batch]
        if ids and max(ids) <= watermark:
            continue  # wholly inside the snapshot
        # Batches commit atomically, so a batch is either wholly inside or
        # wholly outside the snapshot watermark; replay it through the
        # ordinary pipeline (no re-journaling: drain() is not involved).
        scheduler.apply_batch(batch)
        replayed += 1
    scheduler._replayed_batches = replayed  # introspection for tests/benchmarks
    return scheduler
