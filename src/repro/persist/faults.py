"""Fault-injection points for the durability layer's crash harness.

The crash-recovery suite proves, for every point where a real process can
die, that recovery from disk reaches a state key-identical to a reference
run.  Simulating the death needs hooks *inside* the durability code -- a
test cannot interpose between "the WAL record's first byte hit the file"
and "the fsync returned" from the outside -- so the WAL append, checkpoint
write/rename and commit paths each call :func:`fire` with a stable point
name.  With no injector installed (production), ``fire`` is a dict lookup
against an empty table; the hot paths pay nothing measurable.

Points instrumented by the subsystem:

* ``wal.append.before`` -- before any byte of a batch record is written
  (crash = the batch was never journaled);
* ``wal.append.torn`` -- special: the WAL writes *half* the record, flushes
  it, then raises (crash = a torn tail the replay must reject);
* ``wal.append.after`` -- after the fsync (crash = journaled, not applied);
* ``checkpoint.write`` -- before shard files are written;
* ``checkpoint.manifest`` -- after shard files, before the manifest rename;
* ``checkpoint.rename`` -- before the atomic ``CURRENT`` pointer swap;
* ``commit.before`` / ``commit.after`` -- around the durable commit
  bookkeeping inside the scheduler's commit lock.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import PersistError


class InjectedFault(PersistError):
    """Raised by an armed fault point; the harness treats it as the crash."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class FaultInjector:
    """Arms named fault points; thread-safe, one-shot per arming."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: Dict[str, int] = {}
        self.fired: Optional[str] = None

    def arm(self, point: str, hits: int = 1) -> None:
        """Trip *point* on its *hits*-th execution (1 = next time)."""
        if hits < 1:
            raise ValueError("hits counts from 1")
        with self._lock:
            self._armed[point] = hits

    def check(self, point: str) -> bool:
        """True exactly once, on the armed execution of *point*.

        Used directly by code that must do custom damage before crashing
        (the torn WAL write); everything else goes through :func:`fire`.
        """
        with self._lock:
            hits = self._armed.get(point)
            if hits is None:
                return False
            if hits > 1:
                self._armed[point] = hits - 1
                return False
            del self._armed[point]
            self.fired = point
            return True


_injector: Optional[FaultInjector] = None


def set_fault_injector(injector: Optional[FaultInjector]) -> None:
    """Install (or with ``None`` remove) the process-wide injector."""
    global _injector
    _injector = injector


def should_fire(point: str) -> bool:
    """True when an installed injector armed *point* (consumes the arming)."""
    injector = _injector
    return injector is not None and injector.check(point)


def fire(point: str) -> None:
    """Raise :class:`InjectedFault` when *point* is armed; no-op otherwise."""
    if should_fire(point):
        raise InjectedFault(point)
