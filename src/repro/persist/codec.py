"""Versioned, deterministic codec for shards, programs and stream payloads.

Everything the durability layer puts on disk goes through this module: shard
payloads (the entries of one :class:`~repro.datalog.view.PredicateShard`
with their façade-allocated sequence numbers), encoded programs (the base
program plus the effective/deletion programs the scheduler's rewrites
produced), and WAL records (drained transaction batches).

Design rules:

* **Structural, not textual.**  Entries are encoded as tagged JSON trees
  mirroring the constructors (``{"v": name}`` for a variable, ``{"c": value}``
  for a constant, ...), never by rendering and re-parsing rule text --
  the parser cannot round-trip arbitrary constant values, and a codec that
  loses information silently is worse than none.
* **Deterministic bytes.**  :func:`canonical_bytes` serializes with sorted
  keys, fixed separators and ASCII escapes, so encoding the same object
  twice yields the same bytes and checksums are meaningful.  Indexes are
  *not* serialized -- they rebuild lazily on load, so only entries and
  sequence numbers need to be byte-stable.
* **Typed rejection.**  Every decoder raises
  :class:`~repro.errors.CodecError` on malformed input (unknown format
  version, unknown tag, truncated or bit-flipped payload).  A decode never
  returns a wrong value.
* **Decoding interns.**  The decoders build nodes through the public
  constructors, and the constraint language hash-conses in ``__new__``
  (see :mod:`repro.constraints.intern`), so sharing survives the disk
  seam for free: replaying a WAL or loading a snapshot yields the *same*
  term and constraint objects the live process uses, and every
  pointer-identity fast path (solver memos, view-entry keys, coalescer
  dedup) applies to persisted state exactly as to freshly built state.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constraints.ast import (
    Comparison,
    Conjunction,
    Constraint,
    DomainCall,
    FalseConstraint,
    Membership,
    NegatedConjunction,
    TrueConstraint,
    FALSE,
    TRUE,
)
from repro.constraints.terms import Constant, Term, Variable
from repro.datalog.atoms import Atom, ConstrainedAtom
from repro.datalog.clauses import Clause
from repro.datalog.program import ConstrainedDatabase
from repro.datalog.support import Support
from repro.datalog.view import ViewEntry
from repro.errors import CodecError, ReproError
from repro.maintenance.requests import DeletionRequest, InsertionRequest
from repro.stream.log import ExternalChangeNotice, StreamPayload, Transaction

#: On-disk format version.  Bump on any incompatible encoding change; the
#: decoder rejects versions it does not know rather than guessing.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Canonical bytes & checksums
# ----------------------------------------------------------------------
def canonical_bytes(obj: object) -> bytes:
    """Deterministic JSON serialization of an encoded object."""
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    ).encode("utf-8")


def checksum(data: bytes) -> str:
    """Hex SHA-256 of *data* (the manifest's per-shard integrity check)."""
    return hashlib.sha256(data).hexdigest()


def _loads(data: bytes) -> object:
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"payload is not valid UTF-8 JSON: {exc}") from exc


def _check_format(obj: object, what: str) -> Dict[str, object]:
    if not isinstance(obj, dict):
        raise CodecError(f"{what} payload must be a JSON object, got {type(obj).__name__}")
    version = obj.get("format")
    if version != FORMAT_VERSION:
        raise CodecError(
            f"{what} payload has format version {version!r}; this codec "
            f"reads version {FORMAT_VERSION}"
        )
    return obj


# ----------------------------------------------------------------------
# Constant values
# ----------------------------------------------------------------------
def encode_value(value: object) -> object:
    """Encode one constant value (None, bool, int, float, str, tuple)."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise CodecError(f"non-finite float constant cannot be persisted: {value!r}")
        return value
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    raise CodecError(
        f"constant value of type {type(value).__name__} is not persistable: {value!r}"
    )


def decode_value(obj: object) -> object:
    if obj is None or isinstance(obj, (bool, str, int, float)):
        return obj
    if isinstance(obj, dict):
        if set(obj) != {"t"} or not isinstance(obj["t"], list):
            raise CodecError(f"unknown value encoding: {obj!r}")
        return tuple(decode_value(item) for item in obj["t"])
    raise CodecError(f"unknown value encoding: {obj!r}")


# ----------------------------------------------------------------------
# Terms, atoms, constraints, supports
# ----------------------------------------------------------------------
def encode_term(term: Term) -> object:
    if isinstance(term, Variable):
        return {"v": term.name}
    if isinstance(term, Constant):
        return {"c": encode_value(term.value)}
    raise CodecError(f"not a term: {term!r}")


def decode_term(obj: object) -> Term:
    if isinstance(obj, dict):
        if set(obj) == {"v"}:
            return Variable(obj["v"])
        if set(obj) == {"c"}:
            return Constant(decode_value(obj["c"]))
    raise CodecError(f"unknown term encoding: {obj!r}")


def encode_atom(atom: Atom) -> object:
    return {"p": atom.predicate, "a": [encode_term(term) for term in atom.args]}


def decode_atom(obj: object) -> Atom:
    if (
        not isinstance(obj, dict)
        or set(obj) != {"p", "a"}
        or not isinstance(obj["a"], list)
    ):
        raise CodecError(f"unknown atom encoding: {obj!r}")
    return Atom(obj["p"], tuple(decode_term(term) for term in obj["a"]))


def _encode_call(call: DomainCall) -> object:
    return {
        "d": call.domain,
        "f": call.function,
        "a": [encode_term(term) for term in call.args],
    }


def _decode_call(obj: object) -> DomainCall:
    if not isinstance(obj, dict) or set(obj) != {"d", "f", "a"}:
        raise CodecError(f"unknown domain-call encoding: {obj!r}")
    return DomainCall(
        obj["d"], obj["f"], tuple(decode_term(term) for term in obj["a"])
    )


def encode_constraint(constraint: Constraint) -> object:
    if isinstance(constraint, TrueConstraint):
        return {"k": "true"}
    if isinstance(constraint, FalseConstraint):
        return {"k": "false"}
    if isinstance(constraint, Comparison):
        return {
            "k": "cmp",
            "l": encode_term(constraint.left),
            "o": constraint.op,
            "r": encode_term(constraint.right),
        }
    if isinstance(constraint, Membership):
        return {
            "k": "in",
            "e": encode_term(constraint.element),
            "call": _encode_call(constraint.call),
            "pos": constraint.positive,
        }
    if isinstance(constraint, NegatedConjunction):
        return {
            "k": "not",
            "parts": [encode_constraint(part) for part in constraint.parts],
        }
    if isinstance(constraint, Conjunction):
        return {
            "k": "and",
            "parts": [encode_constraint(part) for part in constraint.parts],
        }
    raise CodecError(f"unknown constraint node: {constraint!r}")


def decode_constraint(obj: object) -> Constraint:
    if not isinstance(obj, dict):
        raise CodecError(f"unknown constraint encoding: {obj!r}")
    kind = obj.get("k")
    if kind == "true":
        return TRUE
    if kind == "false":
        return FALSE
    if kind == "cmp":
        return Comparison(
            decode_term(obj["l"]), obj["o"], decode_term(obj["r"])
        )
    if kind == "in":
        return Membership(
            decode_term(obj["e"]), _decode_call(obj["call"]), obj["pos"]
        )
    if kind == "not":
        return NegatedConjunction(
            tuple(decode_constraint(part) for part in obj["parts"])
        )
    if kind == "and":
        return Conjunction(
            tuple(decode_constraint(part) for part in obj["parts"])
        )
    raise CodecError(f"unknown constraint kind: {kind!r}")


def encode_support(support: Support) -> object:
    return [
        support.clause_number,
        [encode_support(child) for child in support.children],
    ]


def decode_support(obj: object) -> Support:
    if not isinstance(obj, list) or len(obj) != 2 or not isinstance(obj[1], list):
        raise CodecError(f"unknown support encoding: {obj!r}")
    return Support(obj[0], tuple(decode_support(child) for child in obj[1]))


def encode_entry(entry: ViewEntry, seq: int) -> object:
    return {
        "atom": encode_atom(entry.atom),
        "constraint": encode_constraint(entry.constraint),
        "support": encode_support(entry.support),
        "seq": seq,
    }


def decode_entry(obj: object) -> Tuple[ViewEntry, int]:
    if not isinstance(obj, dict) or set(obj) != {"atom", "constraint", "support", "seq"}:
        raise CodecError(f"unknown entry encoding: {obj!r}")
    seq = obj["seq"]
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise CodecError(f"entry sequence number must be a non-negative int: {seq!r}")
    entry = ViewEntry(
        decode_atom(obj["atom"]),
        decode_constraint(obj["constraint"]),
        decode_support(obj["support"]),
    )
    return entry, seq


# ----------------------------------------------------------------------
# Shard payloads
# ----------------------------------------------------------------------
def encode_shard(
    predicate: str, rows: Sequence[Tuple[ViewEntry, int]]
) -> bytes:
    """Serialize one shard: entries in insertion order with their global
    sequence numbers.  Indexes are rebuilt lazily on load and are never
    written."""
    payload = {
        "format": FORMAT_VERSION,
        "predicate": predicate,
        "entries": [encode_entry(entry, seq) for entry, seq in rows],
    }
    return canonical_bytes(payload)


def decode_shard(data: bytes) -> Tuple[str, Tuple[Tuple[ViewEntry, int], ...]]:
    """Decode one shard payload; raises :class:`CodecError` on any damage."""
    try:
        payload = _check_format(_loads(data), "shard")
        predicate = payload.get("predicate")
        entries = payload.get("entries")
        if not isinstance(predicate, str) or not isinstance(entries, list):
            raise CodecError("shard payload missing predicate/entries")
        rows: List[Tuple[ViewEntry, int]] = []
        for item in entries:
            entry, seq = decode_entry(item)
            if entry.predicate != predicate:
                raise CodecError(
                    f"entry predicate {entry.predicate!r} does not match "
                    f"shard predicate {predicate!r}"
                )
            rows.append((entry, seq))
        return predicate, tuple(rows)
    except CodecError:
        raise
    except (ReproError, KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CodecError(f"malformed shard payload: {exc}") from exc


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
def encode_clause(clause: Clause) -> object:
    return {
        "head": encode_atom(clause.head),
        "constraint": encode_constraint(clause.constraint),
        "body": [encode_atom(atom) for atom in clause.body],
        "n": clause.number,
    }


def decode_clause(obj: object) -> Clause:
    if not isinstance(obj, dict) or set(obj) != {"head", "constraint", "body", "n"}:
        raise CodecError(f"unknown clause encoding: {obj!r}")
    return Clause(
        decode_atom(obj["head"]),
        decode_constraint(obj["constraint"]),
        tuple(decode_atom(atom) for atom in obj["body"]),
        obj["n"],
    )


def encode_program(program: ConstrainedDatabase) -> bytes:
    payload = {
        "format": FORMAT_VERSION,
        "clauses": [encode_clause(clause) for clause in program.clauses],
    }
    return canonical_bytes(payload)


def decode_program(data: bytes) -> ConstrainedDatabase:
    try:
        payload = _check_format(_loads(data), "program")
        clauses = payload.get("clauses")
        if not isinstance(clauses, list):
            raise CodecError("program payload missing clauses")
        return ConstrainedDatabase(decode_clause(item) for item in clauses)
    except CodecError:
        raise
    except (ReproError, KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CodecError(f"malformed program payload: {exc}") from exc


def program_hash(program: ConstrainedDatabase) -> str:
    """Stable identity of a program: checksum of its canonical encoding."""
    return checksum(encode_program(program))


def report_digest(report) -> str:
    """Stable digest of an analyzer :class:`ProgramReport`.

    Recovery compares the stored digest against a fresh analysis of the
    decoded program: a mismatch means the analyzer (and therefore the
    closure tables the scheduler replays with) changed since the snapshot
    was written, and replay would not be maintenance-equivalent.
    """
    return checksum(
        json.dumps(
            report.as_dict(), sort_keys=True, default=_jsonify, ensure_ascii=True
        ).encode("utf-8")
    )


def _jsonify(value: object) -> object:
    if isinstance(value, (frozenset, set)):
        return sorted(value, key=repr)
    if isinstance(value, tuple):
        return list(value)
    return str(value)


# ----------------------------------------------------------------------
# Stream payloads (WAL records)
# ----------------------------------------------------------------------
def _encode_constrained_atom(atom: ConstrainedAtom) -> object:
    return {
        "atom": encode_atom(atom.atom),
        "constraint": encode_constraint(atom.constraint),
    }


def _decode_constrained_atom(obj: object) -> ConstrainedAtom:
    if not isinstance(obj, dict) or set(obj) != {"atom", "constraint"}:
        raise CodecError(f"unknown constrained-atom encoding: {obj!r}")
    return ConstrainedAtom(
        decode_atom(obj["atom"]), decode_constraint(obj["constraint"])
    )


def encode_payload(payload: StreamPayload) -> object:
    """Encode one of the paper's three update kinds for the WAL."""
    if isinstance(payload, DeletionRequest):
        return {"kind": "del", "atom": _encode_constrained_atom(payload.atom)}
    if isinstance(payload, InsertionRequest):
        return {"kind": "ins", "atom": _encode_constrained_atom(payload.atom)}
    if isinstance(payload, ExternalChangeNotice):
        return {
            "kind": "ext",
            "source": payload.source,
            "added": [[encode_value(v) for v in row] for row in payload.added_rows],
            "removed": [[encode_value(v) for v in row] for row in payload.removed_rows],
            "version": payload.version,
        }
    raise CodecError(f"not a stream payload: {payload!r}")


def decode_payload(obj: object) -> StreamPayload:
    if not isinstance(obj, dict):
        raise CodecError(f"unknown payload encoding: {obj!r}")
    kind = obj.get("kind")
    if kind == "del":
        return DeletionRequest(_decode_constrained_atom(obj["atom"]))
    if kind == "ins":
        return InsertionRequest(_decode_constrained_atom(obj["atom"]))
    if kind == "ext":
        version = obj.get("version")
        if version is not None and not isinstance(version, int):
            raise CodecError(f"notice version must be an int or null: {version!r}")
        return ExternalChangeNotice(
            source=obj["source"],
            added_rows=tuple(
                tuple(decode_value(v) for v in row) for row in obj["added"]
            ),
            removed_rows=tuple(
                tuple(decode_value(v) for v in row) for row in obj["removed"]
            ),
            version=version,
        )
    raise CodecError(f"unknown payload kind: {kind!r}")


def encode_transactions(transactions: Sequence[Transaction]) -> object:
    """Encode one drained batch (the WAL's journaling unit)."""
    return {
        "format": FORMAT_VERSION,
        "txns": [
            {
                "id": txn.txn_id,
                "ts": txn.timestamp,
                "payload": encode_payload(txn.payload),
            }
            for txn in transactions
        ],
    }


def decode_transactions(obj: object) -> Tuple[Transaction, ...]:
    try:
        payload = _check_format(obj, "WAL record")
        txns = payload.get("txns")
        if not isinstance(txns, list):
            raise CodecError("WAL record missing txns")
        decoded: List[Transaction] = []
        for item in txns:
            if not isinstance(item, dict) or set(item) != {"id", "ts", "payload"}:
                raise CodecError(f"unknown transaction encoding: {item!r}")
            txn_id = item["id"]
            timestamp = item["ts"]
            if not isinstance(txn_id, int) or isinstance(txn_id, bool) or txn_id < 1:
                raise CodecError(f"transaction id must be a positive int: {txn_id!r}")
            if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
                raise CodecError(f"transaction timestamp must be a number: {timestamp!r}")
            decoded.append(
                Transaction(txn_id, float(timestamp), decode_payload(item["payload"]))
            )
        return tuple(decoded)
    except CodecError:
        raise
    except (ReproError, KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CodecError(f"malformed WAL record: {exc}") from exc
