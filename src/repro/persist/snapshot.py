"""Atomic, shard-granular snapshot checkpoints of a materialized view.

On-disk layout of a data directory::

    <data_dir>/
      CURRENT                  # name of the newest durable manifest
      snapshots/<n>.json       # manifests, monotonically numbered
      shards/<sha256>.json     # content-addressed shard payloads
      wal/wal-<n>.log          # write-ahead log segments (see wal.py)

A checkpoint writes every *dirty* shard as a new content-addressed file
(an unchanged shard -- same :class:`~repro.datalog.view.PredicateShard`
object as the previous checkpoint, courtesy of the copy-on-write
pointer-swap publish -- is referenced by checksum without rewriting a
byte), then the manifest, then atomically swings ``CURRENT``.  A crash at
any point leaves ``CURRENT`` pointing at the previous complete snapshot;
the WAL tail then carries everything since.

The manifest is self-contained: the base program (encoded), its hash, the
analyzer report digest, the scheduler's effective/deletion programs (the
composed rewrites -- without them, replayed insertions could re-derive
deleted instances), the shard table with checksums, the view's sequence
counter, and the transaction watermark/high-water mark.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.datalog.program import ConstrainedDatabase
from repro.datalog.view import MaterializedView, PredicateShard
from repro.errors import (
    CodecError,
    ProgramHashMismatchError,
    SnapshotIntegrityError,
)
from repro.persist import codec
from repro.persist.faults import fire


@dataclass(frozen=True)
class CheckpointInfo:
    """What one checkpoint did (the persist benchmark's raw numbers)."""

    manifest: str
    watermark: int
    shards_written: int
    shards_reused: int
    bytes_written: int


@dataclass
class RecoveredState:
    """Everything :func:`SnapshotStore.load_current` reconstructs."""

    view: MaterializedView
    program: ConstrainedDatabase
    effective_program: ConstrainedDatabase
    deletion_program: ConstrainedDatabase
    watermark: int
    txn_high: int
    program_hash: str
    report_digest: str


class SnapshotStore:
    """Reader/writer of the snapshot half of a data directory."""

    def __init__(self, root: Path) -> None:
        self._root = Path(root)
        self._snapshots = self._root / "snapshots"
        self._shard_dir = self._root / "shards"
        self._snapshots.mkdir(parents=True, exist_ok=True)
        self._shard_dir.mkdir(parents=True, exist_ok=True)
        #: predicate -> (shard object, checksum, byte size) as of the last
        #: checkpoint.  Identity of the *object* is the dirtiness test: the
        #: stream scheduler publishes by pointer swap, so an untouched
        #: predicate keeps the same shard object across commits.  Holding
        #: the reference (not ``id()``) makes the test immune to id reuse.
        self._last_shards: Dict[str, Tuple[PredicateShard, str, int]] = {}

    @property
    def root(self) -> Path:
        return self._root

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _next_manifest_number(self) -> int:
        highest = 0
        for path in self._snapshots.iterdir():
            stem = path.name
            if stem.endswith(".json"):
                try:
                    highest = max(highest, int(stem[:-5]))
                except ValueError:
                    continue
        return highest + 1

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def write_checkpoint(
        self,
        view: MaterializedView,
        *,
        program: ConstrainedDatabase,
        report_digest: str,
        effective_program: ConstrainedDatabase,
        deletion_program: ConstrainedDatabase,
        watermark: int,
        txn_high: int,
    ) -> CheckpointInfo:
        """Write one snapshot (dirty shards + manifest) and publish it."""
        fire("checkpoint.write")
        shard_table: Dict[str, Dict[str, object]] = {}
        next_last: Dict[str, Tuple[PredicateShard, str, int]] = {}
        shards_written = 0
        shards_reused = 0
        bytes_written = 0
        for predicate in sorted(view.predicates()):
            shard = view.shard_for(predicate)
            if shard is None or not len(shard):
                continue
            cached = self._last_shards.get(predicate)
            if cached is not None and cached[0] is shard:
                digest, size = cached[1], cached[2]
                shards_reused += 1
            else:
                payload = codec.encode_shard(
                    predicate, view.export_shard_rows(predicate)
                )
                digest = codec.checksum(payload)
                size = len(payload)
                target = self._shard_dir / f"{digest}.json"
                if not target.exists():
                    self._write_atomic(target, payload)
                    bytes_written += size
                shards_written += 1
            next_last[predicate] = (shard, digest, size)
            shard_table[predicate] = {
                "file": f"{digest}.json",
                "checksum": digest,
                "entries": len(shard),
            }
        program_bytes = codec.encode_program(program)
        manifest = {
            "format": codec.FORMAT_VERSION,
            "program": json.loads(program_bytes.decode("utf-8")),
            "program_hash": codec.checksum(program_bytes),
            "report_digest": report_digest,
            "effective_program": json.loads(
                codec.encode_program(effective_program).decode("utf-8")
            ),
            "deletion_program": json.loads(
                codec.encode_program(deletion_program).decode("utf-8")
            ),
            "shards": shard_table,
            "next_seq": view.next_sequence_number(),
            "txn_watermark": watermark,
            "txn_high": txn_high,
        }
        manifest_bytes = codec.canonical_bytes(manifest)
        fire("checkpoint.manifest")
        number = self._next_manifest_number()
        name = f"{number:08d}.json"
        self._write_atomic(self._snapshots / name, manifest_bytes)
        bytes_written += len(manifest_bytes)
        fire("checkpoint.rename")
        self._write_atomic(self._root / "CURRENT", (name + "\n").encode("ascii"))
        self._last_shards = next_last
        self._prune_snapshots(keep=2)
        return CheckpointInfo(
            manifest=name,
            watermark=watermark,
            shards_written=shards_written,
            shards_reused=shards_reused,
            bytes_written=bytes_written,
        )

    def _prune_snapshots(self, keep: int) -> None:
        """Drop manifests older than the newest *keep*, then orphan shards."""
        manifests = sorted(
            path for path in self._snapshots.iterdir() if path.name.endswith(".json")
        )
        current = self._current_name()
        doomed = manifests[:-keep] if keep > 0 else manifests
        survivors = [path for path in manifests if path not in doomed]
        referenced = set()
        for path in survivors:
            try:
                manifest = json.loads(path.read_text())
            except ValueError:
                continue
            for meta in manifest.get("shards", {}).values():
                referenced.add(meta.get("file"))
        for path in doomed:
            if path.name == current:
                continue
            path.unlink(missing_ok=True)
        for path in self._shard_dir.iterdir():
            if path.name.endswith(".tmp"):
                continue
            if path.name not in referenced:
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def current_name(self) -> Optional[str]:
        """The manifest name ``CURRENT`` points at (``None`` when fresh).

        The operator surface reports this as the active snapshot id."""
        return self._current_name()

    def _current_name(self) -> Optional[str]:
        try:
            name = (self._root / "CURRENT").read_text().strip()
        except FileNotFoundError:
            return None
        return name or None

    def load_current(
        self, expected_program: Optional[ConstrainedDatabase] = None
    ) -> Optional[RecoveredState]:
        """Load the snapshot ``CURRENT`` points at; ``None`` when fresh.

        Validation is strict and loud: a missing or checksum-mismatched
        shard file raises :class:`~repro.errors.SnapshotIntegrityError`;
        a program whose hash differs from *expected_program*'s raises
        :class:`~repro.errors.ProgramHashMismatchError`.  Silent fallback
        to recompute-on-start would mask exactly the corruption this layer
        exists to catch.
        """
        name = self._current_name()
        if name is None:
            return None
        path = self._snapshots / name
        if not path.exists():
            raise SnapshotIntegrityError(
                f"CURRENT points at missing manifest {name!r}"
            )
        try:
            manifest = json.loads(path.read_text())
        except ValueError as exc:
            raise SnapshotIntegrityError(f"manifest {name!r} is unreadable: {exc}") from exc
        if manifest.get("format") != codec.FORMAT_VERSION:
            raise CodecError(
                f"manifest {name!r} has format version "
                f"{manifest.get('format')!r}; this codec reads "
                f"{codec.FORMAT_VERSION}"
            )
        program = codec.decode_program(
            codec.canonical_bytes(manifest["program"])
        )
        stored_hash = manifest.get("program_hash")
        actual_hash = codec.program_hash(program)
        if stored_hash != actual_hash:
            raise SnapshotIntegrityError(
                f"manifest {name!r} program hash {stored_hash!r} does not "
                f"match its own program ({actual_hash!r})"
            )
        if expected_program is not None:
            expected_hash = codec.program_hash(expected_program)
            if expected_hash != stored_hash:
                raise ProgramHashMismatchError(
                    f"data directory was built from program {stored_hash!r} "
                    f"but was opened with program {expected_hash!r}; refusing "
                    "to replay a foreign WAL"
                )
        effective_program = codec.decode_program(
            codec.canonical_bytes(manifest["effective_program"])
        )
        deletion_program = codec.decode_program(
            codec.canonical_bytes(manifest["deletion_program"])
        )
        view = MaterializedView()
        shard_table = manifest.get("shards", {})
        if not isinstance(shard_table, dict):
            raise SnapshotIntegrityError(f"manifest {name!r} shard table is malformed")
        for predicate in sorted(shard_table):
            meta = shard_table[predicate]
            shard_path = self._shard_dir / meta["file"]
            try:
                data = shard_path.read_bytes()
            except FileNotFoundError as exc:
                raise SnapshotIntegrityError(
                    f"shard file {meta['file']!r} for {predicate!r} is missing"
                ) from exc
            if codec.checksum(data) != meta["checksum"]:
                raise SnapshotIntegrityError(
                    f"shard file {meta['file']!r} for {predicate!r} fails its "
                    "checksum; the snapshot is corrupt"
                )
            decoded_predicate, rows = codec.decode_shard(data)
            if decoded_predicate != predicate:
                raise SnapshotIntegrityError(
                    f"shard file {meta['file']!r} holds predicate "
                    f"{decoded_predicate!r}, manifest says {predicate!r}"
                )
            if len(rows) != meta.get("entries"):
                raise SnapshotIntegrityError(
                    f"shard {predicate!r} holds {len(rows)} entries, manifest "
                    f"says {meta.get('entries')!r}"
                )
            view.import_shard_rows(predicate, rows)
            cached = view.shard_for(predicate)
            if cached is not None:
                self._last_shards[predicate] = (
                    cached,
                    meta["checksum"],
                    len(data),
                )
        next_seq = manifest.get("next_seq")
        if isinstance(next_seq, int) and not isinstance(next_seq, bool):
            view.advance_sequence_number(next_seq)
        return RecoveredState(
            view=view,
            program=program,
            effective_program=effective_program,
            deletion_program=deletion_program,
            watermark=int(manifest.get("txn_watermark", 0)),
            txn_high=int(manifest.get("txn_high", 0)),
            program_hash=stored_hash,
            report_digest=str(manifest.get("report_digest", "")),
        )
