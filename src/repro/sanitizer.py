"""Opt-in shard-write sanitizer gate.

Setting ``REPRO_SHARD_SANITIZER=1`` arms instrumentation in the view layer
and the stream scheduler that turns three silent-corruption bug classes
into loud :class:`~repro.errors.ShardSanitizerError` /
:class:`~repro.errors.WriteScopeError` failures:

* mutating a shard that a published (shared) view still references,
* writing a predicate outside a stratum unit's declared write closure,
* publishing a unit whose result view leaked writes past its closure
  (a torn publish -- the adopting merge would silently drop them).

The gate reads the environment on every call so tests can toggle it with
``monkeypatch.setenv``; it is only consulted on shard-sharing events
(``copy`` / ``adopt_shards`` / publish), never on per-entry mutations --
those check a plain boolean flag the sharing events set.
"""

from __future__ import annotations

import os

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitizer_enabled() -> bool:
    """True when ``REPRO_SHARD_SANITIZER`` is set to a truthy value."""
    return os.environ.get("REPRO_SHARD_SANITIZER", "").strip().lower() in _TRUTHY
