"""A small text/document domain.

HERMES "integrates ... a text database" (paper Section 6); this domain
provides the minimal keyword-search functions a mediator rule would use over
one, backed by an in-memory corpus.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.domains.base import Domain
from repro.errors import EvaluationError

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


class TextDomain(Domain):
    """Keyword search over a named collection of documents."""

    def __init__(
        self, name: str = "textdb", documents: Optional[Mapping[str, str]] = None
    ) -> None:
        super().__init__(name, "keyword search over an in-memory document store")
        self._documents: Dict[str, str] = dict(documents or {})
        self._index: Dict[str, set] = {}
        self._reindex()
        self.register("search", self._search, "document ids containing a word", arity=1)
        self.register(
            "contains", self._contains, "true iff a document contains a word", arity=2
        )
        self.register("documents", self._document_ids, "all document ids", arity=0)
        self.register("words_of", self._words_of, "distinct words of a document", arity=1)

    # ------------------------------------------------------------------
    # Corpus management
    # ------------------------------------------------------------------
    def add_document(self, doc_id: str, text: str) -> None:
        """Add or replace a document and refresh the word index."""
        self._documents[doc_id] = text
        self._reindex()
        self._bump_source()

    def remove_document(self, doc_id: str) -> None:
        """Remove a document (no error when absent)."""
        self._documents.pop(doc_id, None)
        self._reindex()
        self._bump_source()

    def document_count(self) -> int:
        """Number of documents in the corpus."""
        return len(self._documents)

    def _reindex(self) -> None:
        self._index = {}
        for doc_id, text in self._documents.items():
            for word in _tokenize(text):
                self._index.setdefault(word, set()).add(doc_id)

    # ------------------------------------------------------------------
    # Domain functions
    # ------------------------------------------------------------------
    def _search(self, word: object) -> Tuple[str, ...]:
        return tuple(sorted(self._index.get(_normalize(word), ())))

    def _contains(self, doc_id: object, word: object) -> bool:
        if doc_id not in self._documents:
            return False
        return _normalize(word) in set(_tokenize(self._documents[str(doc_id)]))

    def _document_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._documents))

    def _words_of(self, doc_id: object) -> Tuple[str, ...]:
        if doc_id not in self._documents:
            return ()
        return tuple(sorted(set(_tokenize(self._documents[str(doc_id)]))))


def _normalize(word: object) -> str:
    if not isinstance(word, str) or not word:
        raise EvaluationError(f"expected a word, got {word!r}")
    return word.lower()


def _tokenize(text: str) -> Iterable[str]:
    return (match.group().lower() for match in _WORD_RE.finditer(text))
