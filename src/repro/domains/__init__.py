"""External-domain layer.

Domains abstract the heterogeneous sources the mediator integrates; each is
reachable only through ``in(X, domain:function(args))`` constraints.  This
subpackage provides the domain/registry machinery plus concrete domains:
arithmetic (constraint databases), relational sources, spatial reasoning,
face recognition, text search, and time-versioned domains for Section 4.
"""

from repro.domains.arithmetic import make_arithmetic_domain
from repro.domains.base import (
    Domain,
    DomainFunction,
    DomainRegistry,
    IntensionalResultSet,
    coerce_result,
)
from repro.domains.face import (
    FaceDbDomain,
    FaceExtractDomain,
    FaceScenario,
    make_face_scenario,
)
from repro.domains.relational import RelationalDomain, make_relational_domain
from repro.domains.spatial import MapRegion, SpatialDomain, make_spatial_domain
from repro.domains.text import TextDomain
from repro.domains.versioned import (
    DomainClock,
    FunctionDelta,
    VersionedDomain,
    VersionedFunction,
    add_rem_sets,
    function_delta,
)

__all__ = [
    "Domain",
    "DomainClock",
    "DomainFunction",
    "DomainRegistry",
    "FaceDbDomain",
    "FaceExtractDomain",
    "FaceScenario",
    "FunctionDelta",
    "IntensionalResultSet",
    "MapRegion",
    "RelationalDomain",
    "SpatialDomain",
    "TextDomain",
    "VersionedDomain",
    "VersionedFunction",
    "add_rem_sets",
    "coerce_result",
    "function_delta",
    "make_arithmetic_domain",
    "make_face_scenario",
    "make_relational_domain",
    "make_spatial_domain",
]
