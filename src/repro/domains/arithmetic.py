"""The arithmetic constraint domain (paper Example 2).

Kanellakis-style arithmetic constraints are modelled as domain calls:
``great(X)`` returns the (infinite) set of integers greater than ``X`` and
``plus(X, Y)`` returns the singleton ``{X + Y}``.  The infinite sets are
represented intensionally (membership predicate + bounded sample), exactly
as the paper suggests ("the entire -- infinite -- set need not be computed
all at once").
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.domains.base import Domain, IntensionalResultSet
from repro.errors import EvaluationError

#: How many sample values an intensional arithmetic set exposes when asked
#: to enumerate (used only by callers that explicitly sample).
DEFAULT_SAMPLE_WIDTH = 100


def _require_number(value: object, function: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"arith:{function} expects a number, got {value!r}")
    return value


def make_arithmetic_domain(
    name: str = "arith", sample_width: int = DEFAULT_SAMPLE_WIDTH
) -> Domain:
    """Build the ``arith`` domain with the paper's functions and friends.

    Functions
    ---------
    ``greater(x)`` / ``great(x)``
        all integers strictly greater than ``x`` (intensional).
    ``greater_eq(x)``, ``less(x)``, ``less_eq(x)``
        the corresponding half-open integer ranges (intensional).
    ``between(a, b)``
        the finite set of integers in ``[a, b]``.
    ``plus(x, y)``, ``minus(x, y)``, ``times(x, y)``
        singleton results of the arithmetic operation.
    ``abs(x)``, ``mod(x, y)``
        singleton results.
    """
    domain = Domain(name, "integer arithmetic (constraint domain of Example 2)")

    def greater(x: object) -> IntensionalResultSet:
        bound = _require_number(x, "greater")
        return IntensionalResultSet(
            membership=lambda value: isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value > bound,
            sample=lambda: range(int(bound) + 1, int(bound) + 1 + sample_width),
            description=f"integers > {bound}",
        )

    def greater_eq(x: object) -> IntensionalResultSet:
        bound = _require_number(x, "greater_eq")
        return IntensionalResultSet(
            membership=lambda value: isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value >= bound,
            sample=lambda: range(int(bound), int(bound) + sample_width),
            description=f"integers >= {bound}",
        )

    def less(x: object) -> IntensionalResultSet:
        bound = _require_number(x, "less")
        return IntensionalResultSet(
            membership=lambda value: isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value < bound,
            sample=lambda: range(int(bound) - sample_width, int(bound)),
            description=f"integers < {bound}",
        )

    def less_eq(x: object) -> IntensionalResultSet:
        bound = _require_number(x, "less_eq")
        return IntensionalResultSet(
            membership=lambda value: isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value <= bound,
            sample=lambda: range(int(bound) - sample_width + 1, int(bound) + 1),
            description=f"integers <= {bound}",
        )

    def between(low: object, high: object) -> Iterable[int]:
        low_value = int(_require_number(low, "between"))
        high_value = int(_require_number(high, "between"))
        return range(low_value, high_value + 1)

    def plus(x: object, y: object) -> set:
        return {_require_number(x, "plus") + _require_number(y, "plus")}

    def minus(x: object, y: object) -> set:
        return {_require_number(x, "minus") - _require_number(y, "minus")}

    def times(x: object, y: object) -> set:
        return {_require_number(x, "times") * _require_number(y, "times")}

    def absolute(x: object) -> set:
        return {abs(_require_number(x, "abs"))}

    def modulo(x: object, y: object) -> set:
        divisor = _require_number(y, "mod")
        if divisor == 0:
            raise EvaluationError("arith:mod division by zero")
        return {_require_number(x, "mod") % divisor}

    def _is_number(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    # Quick-reject hooks: True only when the value is *definitely* outside
    # the call's result set, decided arithmetically.  Arithmetic behaviour is
    # time-invariant, so these never go stale.  Non-numeric *arguments* make
    # the underlying call fail -- the solver then treats the DCA-atom as
    # unknown-satisfiable -- so the hooks venture no opinion there; a
    # non-numeric *value* against a well-formed call is a definite non-member.
    def reject_greater(args: Tuple[object, ...], value: object) -> bool:
        return _is_number(args[0]) and (not _is_number(value) or value <= args[0])

    def reject_greater_eq(args: Tuple[object, ...], value: object) -> bool:
        return _is_number(args[0]) and (not _is_number(value) or value < args[0])

    def reject_less(args: Tuple[object, ...], value: object) -> bool:
        return _is_number(args[0]) and (not _is_number(value) or value >= args[0])

    def reject_less_eq(args: Tuple[object, ...], value: object) -> bool:
        return _is_number(args[0]) and (not _is_number(value) or value > args[0])

    def reject_between(args: Tuple[object, ...], value: object) -> bool:
        if not all(_is_number(arg) for arg in args):
            return False
        if isinstance(value, bool):
            # between() returns a plain range, and bool is an int subclass:
            # True in range(0, 3) holds, so no opinion here.
            return False
        if not _is_number(value):
            return True
        # Mirror between()'s own int() truncation of the bounds: the result
        # set of between(2.5, 7.5) is range(2, 8), which contains 2.
        low, high = int(args[0]), int(args[1])
        return value < low or value > high or float(value) != int(value)

    # index_interval hooks: a time-invariant numeric interval containing
    # every member of the call's result set, feeding the argument index's
    # range postings.  Arithmetic behaviour never changes, so the bounds are
    # computed once from the (ground) arguments; non-numeric arguments make
    # the underlying call fail, so the hooks venture no bound there.
    INF = float("inf")

    def interval_greater(args: Tuple[object, ...]) -> Optional[Tuple[float, bool, float, bool]]:
        if not _is_number(args[0]):
            return None
        return (float(args[0]), True, INF, False)

    def interval_greater_eq(args: Tuple[object, ...]) -> Optional[Tuple[float, bool, float, bool]]:
        if not _is_number(args[0]):
            return None
        return (float(args[0]), False, INF, False)

    def interval_less(args: Tuple[object, ...]) -> Optional[Tuple[float, bool, float, bool]]:
        if not _is_number(args[0]):
            return None
        return (-INF, False, float(args[0]), True)

    def interval_less_eq(args: Tuple[object, ...]) -> Optional[Tuple[float, bool, float, bool]]:
        if not _is_number(args[0]):
            return None
        return (-INF, False, float(args[0]), False)

    def interval_between(args: Tuple[object, ...]) -> Optional[Tuple[float, bool, float, bool]]:
        if not all(_is_number(arg) for arg in args):
            return None
        # Mirror between()'s own int() truncation of the bounds (the result
        # set of between(2.5, 7.5) is range(2, 8), bounded by [2, 7]).
        return (float(int(args[0])), False, float(int(args[1])), False)

    domain.register(
        "greater", greater, "integers strictly greater than x", arity=1,
        quick_reject=reject_greater, index_interval=interval_greater,
    )
    domain.register(
        "great", greater, "alias used by the paper", arity=1,
        quick_reject=reject_greater, index_interval=interval_greater,
    )
    domain.register(
        "greater_eq", greater_eq, "integers >= x", arity=1,
        quick_reject=reject_greater_eq, index_interval=interval_greater_eq,
    )
    domain.register(
        "less", less, "integers strictly less than x", arity=1,
        quick_reject=reject_less, index_interval=interval_less,
    )
    domain.register(
        "less_eq", less_eq, "integers <= x", arity=1,
        quick_reject=reject_less_eq, index_interval=interval_less_eq,
    )
    domain.register(
        "between", between, "integers in [a, b]", arity=2,
        quick_reject=reject_between, index_interval=interval_between,
    )
    domain.register("plus", plus, "{x + y}", arity=2)
    domain.register("minus", minus, "{x - y}", arity=2)
    domain.register("times", times, "{x * y}", arity=2)
    domain.register("abs", absolute, "{|x|}", arity=1)
    domain.register("mod", modulo, "{x mod y}", arity=2)
    return domain
